"""Legacy setup shim.

The offline reproduction environment lacks the ``wheel`` package, so
``pip install -e .`` cannot take the PEP 517/660 path; this shim lets pip
fall back to ``setup.py develop``.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
