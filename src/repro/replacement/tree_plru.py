"""Tree-based Pseudo-LRU (Tree-PLRU).

The classic binary-tree approximation of LRU used by many commercial L1
caches.  For ``W`` ways (a power of two) the policy keeps ``W - 1`` bits
arranged as a complete binary tree; each access flips the bits on its
root-to-leaf path to point *away* from the touched way, and the victim is
found by following the bits from the root.

Tree-PLRU only approximates recency, which is why the paper's Table 2 shows
that a replacement set equal to the associativity does **not** guarantee
eviction of a previously-touched line (gem5 measured 94.3% for N = 8) while
N = 9 does.
"""

from __future__ import annotations

import random
from typing import List

from repro.common.errors import ConfigurationError
from repro.replacement.base import ReplacementPolicy


class TreePLRU(ReplacementPolicy):
    """Binary-tree PLRU over a power-of-two number of ways.

    Tree bits are stored in heap order: node 0 is the root, node ``i`` has
    children ``2i + 1`` and ``2i + 2``.  A bit value of 0 means "the LRU side
    is the left subtree" and 1 means "the LRU side is the right subtree";
    touching a way sets the bits along its path to point at the *other*
    subtree.
    """

    def __init__(self, ways: int, rng: random.Random) -> None:
        super().__init__(ways, rng)
        if ways & (ways - 1):
            raise ConfigurationError(f"TreePLRU requires power-of-two ways, got {ways}")
        self._levels = ways.bit_length() - 1
        self._bits: List[int] = [0] * (ways - 1)

    def _touch(self, way: int) -> None:
        """Update the path bits so the victim walk avoids ``way``."""
        node = 0
        for level in range(self._levels - 1, -1, -1):
            went_right = (way >> level) & 1
            # Point the LRU side away from where we went.
            self._bits[node] = 0 if went_right else 1
            node = 2 * node + 1 + went_right

    def on_fill(self, way: int) -> None:
        self._check_way(way)
        self._touch(way)

    def on_hit(self, way: int) -> None:
        self._check_way(way)
        self._touch(way)

    def victim(self) -> int:
        node = 0
        way = 0
        for _ in range(self._levels):
            direction = self._bits[node]
            way = (way << 1) | direction
            node = 2 * node + 1 + direction
        return way

    def randomize_state(self) -> None:
        self._bits = [self.rng.randrange(2) for _ in range(len(self._bits))]

    def tree_bits(self) -> List[int]:
        """Copy of the internal tree bits (exposed for tests)."""
        return list(self._bits)
