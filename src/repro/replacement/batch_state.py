"""Replica-stacked (batched) forms of the fast replacement states.

The fast engine's integer-coded policy states (:mod:`repro.replacement
.fast_state`) update one set at a time.  The batch engine
(:mod:`repro.engine.batch`) runs B independent replicas of one hierarchy
geometry side by side, so each policy here keeps its metadata for *every*
set of *every* replica in one NumPy array — shape ``(B, sets)`` or
``(B, sets, ways)`` — and applies one update to many (replica, set) pairs
per vectorized call.

Parity contract
---------------
A batched update on B replicas must equal B independent scalar updates:
for every lifted policy, feeding the same operation sequence through a
batch state and through per-replica :class:`~repro.replacement.fast_state
.FastPolicyState` instances must leave identical metadata and return
identical victims (``tests/test_batch_state.py`` fuzzes exactly this, and
the engine-level parity suite holds the whole kernel to it).

Call convention: ``rows``/``sets``/``ways`` are equal-length integer
arrays selecting one set per listed replica.  A single call must not
contain the same (replica, set) pair twice — the engine's staging
guarantees that, and the scatter updates below rely on it.

Policies not lifted here (NRU, the noisy/dirty-protecting surrogates,
the LFSR) fall back to per-replica fast-engine replay at the driver
level; there is deliberately no adapter state in the batched world.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.replacement.fast_state import (
    BitPLRUState,
    FIFOState,
    FastPolicyState,
    SRRIPState,
    TreePLRUState,
    TrueLRUState,
    UniformRandomState,
    _tree_masks,
    _tree_victims,
)

#: Largest way count tree-plru is lifted for: the shared state -> victim
#: table has 2**(ways-1) entries, so 16 ways (32k entries) is the knee.
_TREE_PLRU_MAX_WAYS = 16


class BatchPolicyState:
    """Interface of a batched policy state (duck-typed, like fast_state)."""

    def on_fill(self, rows: np.ndarray, sets: np.ndarray, ways: np.ndarray) -> None:
        raise NotImplementedError

    def on_hit(self, rows: np.ndarray, sets: np.ndarray, ways: np.ndarray) -> None:
        raise NotImplementedError

    def on_invalidate(
        self, rows: np.ndarray, sets: np.ndarray, ways: np.ndarray
    ) -> None:
        pass

    def victim(self, rows: np.ndarray, sets: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def snapshot(self, replica: int, set_index: int) -> Tuple[object, ...]:
        """Canonical metadata of one set, comparable to a scalar state."""
        raise NotImplementedError


class BatchRankOrder(BatchPolicyState):
    """Recency/insertion order as a rank permutation per set.

    ``rank[b, s, w]`` is way ``w``'s position in the scalar order list:
    rank 0 is the victim end (LRU / FIFO front), rank ``ways-1`` the most
    recently touched / inserted.  Moving a way to the back decrements
    every rank behind it; moving it to the front increments every rank
    ahead of it — exactly ``list.remove`` + ``append``/``insert(0)``.

    :class:`BatchTrueLRU` and :class:`BatchFIFO` differ only in whether a
    hit refreshes the order.
    """

    def __init__(self, replicas: int, sets: int, ways: int) -> None:
        self.ways = ways
        # Ranks live in [0, ways); int8 keeps the (B, sets, ways) block
        # an order of magnitude smaller than the tag arrays.
        self.rank = np.broadcast_to(
            np.arange(ways, dtype=np.int8), (replicas, sets, ways)
        ).copy()

    def _to_back(self, rows: np.ndarray, sets: np.ndarray, ways: np.ndarray) -> None:
        block = self.rank[rows, sets]
        current = block[np.arange(len(rows)), ways]
        block -= block > current[:, None]
        block[np.arange(len(rows)), ways] = self.ways - 1
        self.rank[rows, sets] = block

    def _to_front(self, rows: np.ndarray, sets: np.ndarray, ways: np.ndarray) -> None:
        block = self.rank[rows, sets]
        current = block[np.arange(len(rows)), ways]
        block += block < current[:, None]
        block[np.arange(len(rows)), ways] = 0
        self.rank[rows, sets] = block

    on_fill = _to_back
    on_invalidate = _to_front

    def victim(self, rows: np.ndarray, sets: np.ndarray) -> np.ndarray:
        return np.argmin(self.rank[rows, sets], axis=1)

    def snapshot(self, replica: int, set_index: int) -> Tuple[object, ...]:
        order = np.argsort(self.rank[replica, set_index])
        return ("order", tuple(int(way) for way in order))


class BatchTrueLRU(BatchRankOrder):
    """Exact LRU: hits refresh the order like fills."""

    on_hit = BatchRankOrder._to_back


class BatchFIFO(BatchRankOrder):
    """Insertion order only: hits do not refresh."""

    def on_hit(self, rows: np.ndarray, sets: np.ndarray, ways: np.ndarray) -> None:
        pass


class BatchTreePLRU(BatchPolicyState):
    """Tree-PLRU: one packed tree-bit int per set, shared lookup tables."""

    def __init__(self, replicas: int, sets: int, ways: int) -> None:
        clear, set_masks = _tree_masks(ways)
        self._clear = np.array(clear, dtype=np.int64)
        self._set = np.array(set_masks, dtype=np.int64)
        self._victims = np.array(_tree_victims(ways), dtype=np.int64)
        self.state = np.zeros((replicas, sets), dtype=np.int64)

    def _touch(self, rows: np.ndarray, sets: np.ndarray, ways: np.ndarray) -> None:
        self.state[rows, sets] = (self.state[rows, sets] & self._clear[ways]) | (
            self._set[ways]
        )

    on_fill = _touch
    on_hit = _touch

    def victim(self, rows: np.ndarray, sets: np.ndarray) -> np.ndarray:
        return self._victims[self.state[rows, sets]]

    def snapshot(self, replica: int, set_index: int) -> Tuple[object, ...]:
        return ("tree", int(self.state[replica, set_index]))


class BatchBitPLRU(BatchPolicyState):
    """MRU-bit pseudo-LRU: packed bit mask plus set-bit count per set."""

    def __init__(self, replicas: int, sets: int, ways: int) -> None:
        self.ways = ways
        self._full = (1 << ways) - 1
        self.mru = np.zeros((replicas, sets), dtype=np.int64)
        self.count = np.zeros((replicas, sets), dtype=np.int64)

    def _touch(self, rows: np.ndarray, sets: np.ndarray, ways: np.ndarray) -> None:
        mru = self.mru[rows, sets]
        count = self.count[rows, sets]
        bit = np.int64(1) << ways.astype(np.int64)
        fresh = (mru & bit) == 0
        wrap = fresh & (count == self.ways - 1)
        mru = np.where(wrap, 0, mru)
        count = np.where(wrap, 0, count)
        self.mru[rows, sets] = np.where(fresh, mru | bit, mru)
        self.count[rows, sets] = np.where(fresh, count + 1, count)

    on_fill = _touch
    on_hit = _touch

    def victim(self, rows: np.ndarray, sets: np.ndarray) -> np.ndarray:
        clear = ~self.mru[rows, sets] & self._full
        lowbit = clear & -clear
        # log2 of a power of two is exact in float64; clear == 0 falls back
        # to way 0 like the scalar state.
        return np.where(
            clear == 0,
            0,
            np.log2(np.maximum(lowbit, 1)).astype(np.int64),
        )

    def on_invalidate(
        self, rows: np.ndarray, sets: np.ndarray, ways: np.ndarray
    ) -> None:
        mru = self.mru[rows, sets]
        bit = np.int64(1) << ways.astype(np.int64)
        was_set = (mru & bit) != 0
        self.mru[rows, sets] = np.where(was_set, mru & ~bit, mru)
        self.count[rows, sets] = self.count[rows, sets] - was_set

    def snapshot(self, replica: int, set_index: int) -> Tuple[object, ...]:
        return (
            "bitplru",
            int(self.mru[replica, set_index]),
            int(self.count[replica, set_index]),
        )


class BatchSRRIP(BatchPolicyState):
    """Static RRIP: per-way re-reference prediction values."""

    def __init__(
        self, replicas: int, sets: int, ways: int, max_rrpv: int = 3
    ) -> None:
        self.max_rrpv = max_rrpv
        # RRPVs live in [0, max_rrpv]; int8 matters at LLC geometry
        # (e.g. 16384 sets x 20 ways x B replicas).
        self.rrpv = np.full((replicas, sets, ways), max_rrpv, dtype=np.int8)

    def on_fill(self, rows: np.ndarray, sets: np.ndarray, ways: np.ndarray) -> None:
        self.rrpv[rows, sets, ways] = self.max_rrpv - 1

    def on_hit(self, rows: np.ndarray, sets: np.ndarray, ways: np.ndarray) -> None:
        self.rrpv[rows, sets, ways] = 0

    def victim(self, rows: np.ndarray, sets: np.ndarray) -> np.ndarray:
        # The scalar loop ages every way by +1 until one reaches max_rrpv;
        # one uniform bump by the row's deficit lands the identical state.
        block = self.rrpv[rows, sets]
        deficit = self.max_rrpv - block.max(axis=1)
        block += deficit[:, None]
        self.rrpv[rows, sets] = block
        return np.argmax(block == self.max_rrpv, axis=1)

    def on_invalidate(
        self, rows: np.ndarray, sets: np.ndarray, ways: np.ndarray
    ) -> None:
        self.rrpv[rows, sets, ways] = self.max_rrpv

    def snapshot(self, replica: int, set_index: int) -> Tuple[object, ...]:
        return ("rrpv", tuple(int(v) for v in self.rrpv[replica, set_index]))


class BatchUniformRandom(BatchPolicyState):
    """Uniform random victims drawn from per-(replica, set) generators.

    Victim draws must replicate the scalar engine's private per-set
    ``random.Random`` streams bit-for-bit, so they stay scalar: one
    ``randrange`` per requesting (replica, set) pair, with generators
    materialised lazily from the seed grid the engine derived.  Touch
    hooks are free, so random-policy levels still batch everything but
    the draw itself.
    """

    def __init__(
        self,
        replicas: int,
        sets: int,
        ways: int,
        seed_grid: Optional[Sequence[Sequence[int]]] = None,
    ) -> None:
        if seed_grid is None:
            raise ValueError("BatchUniformRandom needs the per-set seed grid")
        self.ways = ways
        self.seed_grid = seed_grid
        self._rngs: Dict[Tuple[int, int], random.Random] = {}

    def on_fill(self, rows: np.ndarray, sets: np.ndarray, ways: np.ndarray) -> None:
        pass

    on_hit = on_fill
    on_invalidate = on_fill

    def victim(self, rows: np.ndarray, sets: np.ndarray) -> np.ndarray:
        out = np.empty(len(rows), dtype=np.int64)
        rngs = self._rngs
        for position, (row, set_index) in enumerate(
            zip(rows.tolist(), sets.tolist())
        ):
            rng = rngs.get((row, set_index))
            if rng is None:
                rng = rngs[(row, set_index)] = random.Random(
                    self.seed_grid[row][set_index]
                )
            out[position] = rng.randrange(self.ways)
        return out

    def snapshot(self, replica: int, set_index: int) -> Tuple[object, ...]:
        return ("random",)


#: Batch constructors by registry policy name.  ``random`` additionally
#: needs the engine to thread its per-set seed grid through.
_BATCH_STATES = {
    "lru": BatchTrueLRU,
    "fifo": BatchFIFO,
    "tree-plru": BatchTreePLRU,
    "bit-plru": BatchBitPLRU,
    "srrip": BatchSRRIP,
    "random": BatchUniformRandom,
}


def lifted_policies() -> List[str]:
    """Policy names with a batched state, in canonical order."""
    return sorted(_BATCH_STATES)


def is_lifted(policy_name: str, ways: int) -> bool:
    """Whether ``policy_name`` at ``ways`` associativity batches."""
    if policy_name not in _BATCH_STATES:
        return False
    if policy_name == "tree-plru":
        return ways > 1 and ways & (ways - 1) == 0 and ways <= _TREE_PLRU_MAX_WAYS
    return True


def make_batch_state(
    policy_name: str,
    replicas: int,
    sets: int,
    ways: int,
    seed_grid: Optional[Sequence[Sequence[int]]] = None,
) -> BatchPolicyState:
    """Build the batched state for one cache level's policy."""
    if not is_lifted(policy_name, ways):
        raise ValueError(
            f"policy {policy_name!r} with {ways} ways has no batched state"
        )
    if policy_name == "random":
        return BatchUniformRandom(replicas, sets, ways, seed_grid)
    return _BATCH_STATES[policy_name](replicas, sets, ways)


def scalar_snapshot(state: FastPolicyState) -> Tuple[object, ...]:
    """Canonical metadata of a scalar fast state, for batched-vs-scalar
    comparisons (same tagged shape as :meth:`BatchPolicyState.snapshot`).

    Exact-type dispatch, like ``fast_state._FAST_STATES``: subclasses
    (noisy/dirty-protecting variants) are not lifted and must not match.
    """
    state_type = type(state)
    if state_type is TrueLRUState:
        return ("order", tuple(state.order))
    if state_type is FIFOState:
        return ("order", tuple(state.queue))
    if state_type is TreePLRUState:
        return ("tree", state.state)
    if state_type is BitPLRUState:
        return ("bitplru", state.mru, state.count)
    if state_type is SRRIPState:
        return ("rrpv", tuple(state.rrpv))
    if state_type is UniformRandomState:
        return ("random",)
    raise TypeError(f"no canonical snapshot for {state_type.__name__}")
