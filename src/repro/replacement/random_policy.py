"""Random replacement policies.

Section 6.1 of the paper shows the WB channel surviving random replacement:
with a replacement set of L lines over a W-way set holding d dirty lines, at
least one dirty line is evicted with probability ``1 - ((W - d) / W)^L``
(99.1% at W=8, d=3, L=10).  Two variants are provided:

* :class:`UniformRandom` — each eviction picks a victim uniformly; matches
  the analytic formula exactly and is what the probability experiments use.
* :class:`LFSRPseudoRandom` — a free-running linear-feedback shift register
  shared across requests, like ARM's documented pseudo-random replacement.
  Its short-term victim sequence is a permutation-ish walk, which changes
  the small-L probabilities noticeably — a good illustration of why the
  paper's gem5 "pseudo-random" percentages (Table 5) sit below the uniform
  formula.
"""

from __future__ import annotations

import random

from repro.common.errors import ConfigurationError
from repro.replacement.base import ReplacementPolicy


class UniformRandom(ReplacementPolicy):
    """Victim chosen independently and uniformly on every eviction."""

    def on_fill(self, way: int) -> None:
        self._check_way(way)

    def on_hit(self, way: int) -> None:
        self._check_way(way)

    def victim(self) -> int:
        return self.rng.randrange(self.ways)

    def randomize_state(self) -> None:
        # Stateless: nothing to randomize.
        pass


class LFSRPseudoRandom(ReplacementPolicy):
    """Victim taken from a free-running Galois LFSR (ARM-style).

    The LFSR steps once per victim request.  Consecutive victims therefore
    never repeat immediately and walk a fixed pseudo-random cycle, which is
    cheaper in hardware than true randomness but slightly more predictable —
    the distinction Section 6.1 glosses as "pseudo-random replacement".
    """

    #: Taps for a maximal-length 8-bit Galois LFSR (x^8+x^6+x^5+x^4+1).
    _TAPS = 0xB8

    def __init__(self, ways: int, rng: random.Random) -> None:
        super().__init__(ways, rng)
        if ways & (ways - 1):
            raise ConfigurationError(
                f"LFSRPseudoRandom requires power-of-two ways, got {ways}"
            )
        self._state = rng.randrange(1, 256)

    def _step(self) -> int:
        lsb = self._state & 1
        self._state >>= 1
        if lsb:
            self._state ^= self._TAPS
        return self._state

    def on_fill(self, way: int) -> None:
        self._check_way(way)

    def on_hit(self, way: int) -> None:
        self._check_way(way)

    def victim(self) -> int:
        return self._step() & (self.ways - 1)

    def randomize_state(self) -> None:
        self._state = self.rng.randrange(1, 256)

    @property
    def lfsr_state(self) -> int:
        """Current shift-register contents (exposed for the fast engine)."""
        return self._state
