"""True Least-Recently-Used replacement.

Keeps an exact recency ordering of the ways.  With an 8-way set, accessing
eight fresh lines is guaranteed to evict any line that was resident before —
the ``N = 8 -> 100%`` column of the paper's Table 2.
"""

from __future__ import annotations

import random
from typing import List

from repro.replacement.base import ReplacementPolicy


class TrueLRU(ReplacementPolicy):
    """Exact LRU: evicts the way whose last touch is oldest."""

    def __init__(self, ways: int, rng: random.Random) -> None:
        super().__init__(ways, rng)
        # Recency order, least-recently-used first.
        self._order: List[int] = list(range(ways))

    def _touch(self, way: int) -> None:
        self._order.remove(way)
        self._order.append(way)

    def on_fill(self, way: int) -> None:
        self._check_way(way)
        self._touch(way)

    def on_hit(self, way: int) -> None:
        self._check_way(way)
        self._touch(way)

    def victim(self) -> int:
        return self._order[0]

    def on_invalidate(self, way: int) -> None:
        # An invalidated way becomes the immediate eviction candidate.
        self._check_way(way)
        self._order.remove(way)
        self._order.insert(0, way)

    def randomize_state(self) -> None:
        self.rng.shuffle(self._order)

    def recency_order(self) -> List[int]:
        """Current LRU-first ordering (exposed for tests and experiments)."""
        return list(self._order)
