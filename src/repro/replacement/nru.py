"""Not-Recently-Used (NRU) replacement.

Like Bit-PLRU but with the reset rule used by several x86 LLC designs: when
every way's reference bit is set, all bits are cleared *including* the one
being touched, and the victim scan starts from a rotating pointer rather
than way 0 (avoiding pathological way-0 churn).
"""

from __future__ import annotations

import random
from typing import List

from repro.replacement.base import ReplacementPolicy


class NRU(ReplacementPolicy):
    """NRU with a rotating scan pointer."""

    def __init__(self, ways: int, rng: random.Random) -> None:
        super().__init__(ways, rng)
        self._referenced: List[bool] = [False] * ways
        self._scan_start = 0

    def _touch(self, way: int) -> None:
        self._referenced[way] = True
        if all(self._referenced):
            self._referenced = [False] * self.ways
            self._referenced[way] = True

    def on_fill(self, way: int) -> None:
        self._check_way(way)
        self._touch(way)

    def on_hit(self, way: int) -> None:
        self._check_way(way)
        self._touch(way)

    def victim(self) -> int:
        for offset in range(self.ways):
            way = (self._scan_start + offset) % self.ways
            if not self._referenced[way]:
                self._scan_start = (way + 1) % self.ways
                return way
        # All referenced (possible right after randomize): clear and restart.
        self._referenced = [False] * self.ways
        way = self._scan_start
        self._scan_start = (way + 1) % self.ways
        return way

    def on_invalidate(self, way: int) -> None:
        self._check_way(way)
        self._referenced[way] = False

    def randomize_state(self) -> None:
        self._referenced = [self.rng.random() < 0.5 for _ in range(self.ways)]
        self._scan_start = self.rng.randrange(self.ways)

    def referenced_bits(self) -> List[bool]:
        """Copy of the reference bits (exposed for the fast engine/tests)."""
        return list(self._referenced)

    @property
    def scan_start(self) -> int:
        """Current rotating scan pointer."""
        return self._scan_start
