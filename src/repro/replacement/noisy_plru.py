"""Behavioural surrogate for the Intel E5-2650's undocumented L1 policy.

The paper measured (Table 2) that on the Xeon E5-2650 a replacement set of
8 lines evicts a just-written line only 68.8% of the time, 9 lines 81.7%,
and 10 lines always.  That is *worse* than ideal Tree-PLRU (94.3% / 100%),
meaning the real policy's metadata update is weaker than a full path update
on every access.

Sandy Bridge's actual L1D policy is undocumented.  We model the observed
behaviour with ``NoisyTreePLRU``: a Tree-PLRU whose per-node path update is
applied only with probability ``update_prob`` on *fills* (hits update fully).
Skipped updates leave stale victim pointers behind, so a freshly-filled
replacement-set line can itself be chosen as the next victim, wasting one
eviction — exactly the effect that pushes the guaranteed-eviction threshold
from 9 to 10.

The default ``update_prob`` is calibrated so the three Table 2 probabilities
land near the paper's measurements; EXPERIMENTS.md flags this column as a
calibrated surrogate rather than a mechanistic model.
"""

from __future__ import annotations

import random

from repro.common.errors import ConfigurationError
from repro.replacement.tree_plru import TreePLRU


class NoisyTreePLRU(TreePLRU):
    """Tree-PLRU with probabilistic path updates on fills.

    ``update_prob`` is the per-tree-node probability that a fill updates the
    node; 1.0 degenerates to exact Tree-PLRU, 0.0 to a static (FIFO-like
    given the victim walk) pointer.
    """

    #: Calibrated against the paper's measured E5-2650 column of Table 2.
    DEFAULT_UPDATE_PROB = 0.55

    def __init__(
        self,
        ways: int,
        rng: random.Random,
        update_prob: float = DEFAULT_UPDATE_PROB,
    ) -> None:
        super().__init__(ways, rng)
        if not 0.0 <= update_prob <= 1.0:
            raise ConfigurationError(
                f"update_prob must be within [0, 1], got {update_prob}"
            )
        self.update_prob = update_prob

    def _touch_noisy(self, way: int) -> None:
        node = 0
        for level in range(self._levels - 1, -1, -1):
            went_right = (way >> level) & 1
            if self.rng.random() < self.update_prob:
                self._bits[node] = 0 if went_right else 1
            node = 2 * node + 1 + went_right

    def on_fill(self, way: int) -> None:
        self._check_way(way)
        self._touch_noisy(way)

    # Hits keep the exact TreePLRU update (inherited on_hit), matching the
    # intuition that demand hits maintain recency more aggressively than
    # fills on the real part.
