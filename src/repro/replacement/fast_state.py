"""Integer-encoded fast paths for the replacement policies.

The reference policies (:mod:`repro.replacement`) are written for clarity:
per-way Python lists, defensive ``_check_way`` validation, small helper
methods.  On the simulation hot path those costs dominate — every cache
access funnels through ``on_hit``/``on_fill``/``victim`` — so the fast
engine (:mod:`repro.engine`) swaps each policy object for one of the state
machines below: bit-packed integer state, precomputed touch masks, shared
victim lookup tables, and no per-call validation.

Parity contract
---------------
Every fast state must be *bit-identical* to its reference policy: the same
victim sequence, the same metadata transitions, and — critically — the same
draws from the same ``random.Random`` instance in the same order (the
reference engine stays the semantic oracle; ``tests/test_engine_parity.py``
fuzzes this equivalence for every registered policy).  States are built
*from* a live policy instance and copy its current metadata, so conversion
is valid at any point, not just on a fresh set.

Policies without a registered fast path fall back to
:class:`AdapterState`, which simply forwards to the reference object — the
fast engine still wins on its struct-of-arrays set layout, just not on
policy dispatch.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Dict, List, Tuple, Type

from repro.replacement.base import ReplacementPolicy
from repro.replacement.bit_plru import BitPLRU
from repro.replacement.dirty_protect import DirtyProtectingLRU
from repro.replacement.fifo import FIFO
from repro.replacement.noisy_plru import NoisyTreePLRU
from repro.replacement.nru import NRU
from repro.replacement.random_policy import LFSRPseudoRandom, UniformRandom
from repro.replacement.srrip import SRRIP
from repro.replacement.tree_plru import TreePLRU
from repro.replacement.true_lru import TrueLRU


class FastPolicyState:
    """Interface of a fast policy state (duck-typed, no abc overhead).

    Mirrors the :class:`~repro.replacement.base.ReplacementPolicy` hooks
    minus argument validation; the hosting set only ever passes in-range
    ways.
    """

    __slots__ = ()

    wants_dirty_hint = False

    def on_fill(self, way: int) -> None:
        raise NotImplementedError

    def on_hit(self, way: int) -> None:
        raise NotImplementedError

    def on_invalidate(self, way: int) -> None:
        pass

    def victim(self) -> int:
        raise NotImplementedError

    def notify_dirty_ways(self, dirty_mask: Tuple[bool, ...]) -> None:
        pass

    def randomize(self) -> None:
        """Mirror of the reference policy's ``randomize_state``."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# Tree-PLRU: W-1 tree bits packed into one int, O(1) touch via masks.
# ----------------------------------------------------------------------

#: (clear_masks, set_masks) per way, keyed by way count; shared across sets.
_TREE_MASKS: Dict[int, Tuple[List[int], List[int]]] = {}

#: state -> victim lookup tables, keyed by way count; shared across sets.
_TREE_VICTIMS: Dict[int, List[int]] = {}


def _tree_masks(ways: int) -> Tuple[List[int], List[int]]:
    try:
        return _TREE_MASKS[ways]
    except KeyError:
        pass
    levels = ways.bit_length() - 1
    clear_masks: List[int] = []
    set_masks: List[int] = []
    all_bits = (1 << (ways - 1)) - 1
    for way in range(ways):
        node = 0
        touched = 0
        ones = 0
        for level in range(levels - 1, -1, -1):
            went_right = (way >> level) & 1
            touched |= 1 << node
            if not went_right:  # bit becomes 1: LRU side is the right subtree
                ones |= 1 << node
            node = 2 * node + 1 + went_right
        clear_masks.append(all_bits & ~touched)
        set_masks.append(ones)
    _TREE_MASKS[ways] = (clear_masks, set_masks)
    return clear_masks, set_masks


def _tree_victims(ways: int) -> List[int]:
    try:
        return _TREE_VICTIMS[ways]
    except KeyError:
        pass
    levels = ways.bit_length() - 1
    table: List[int] = []
    for state in range(1 << (ways - 1)):
        node = 0
        way = 0
        for _ in range(levels):
            direction = (state >> node) & 1
            way = (way << 1) | direction
            node = 2 * node + 1 + direction
        table.append(way)
    _TREE_VICTIMS[ways] = table
    return table


class TreePLRUState(FastPolicyState):
    """Tree-PLRU with packed bits and a shared state->victim table."""

    __slots__ = ("ways", "rng", "state", "_clear", "_set", "_victims")

    def __init__(self, policy: TreePLRU) -> None:
        self.ways = policy.ways
        self.rng = policy.rng
        bits = policy.tree_bits()
        self.state = 0
        for node, bit in enumerate(bits):
            if bit:
                self.state |= 1 << node
        self._clear, self._set = _tree_masks(self.ways)
        self._victims = _tree_victims(self.ways)

    def on_fill(self, way: int) -> None:
        self.state = (self.state & self._clear[way]) | self._set[way]

    on_hit = on_fill

    def victim(self) -> int:
        return self._victims[self.state]

    def randomize(self) -> None:
        # Reference: self._bits = [rng.randrange(2) for each node].
        rng = self.rng
        state = 0
        for node in range(self.ways - 1):
            if rng.randrange(2):
                state |= 1 << node
        self.state = state


class NoisyTreePLRUState(TreePLRUState):
    """Tree-PLRU whose fills update each path node only probabilistically."""

    __slots__ = ("update_prob", "_levels")

    def __init__(self, policy: NoisyTreePLRU) -> None:
        super().__init__(policy)
        self.update_prob = policy.update_prob
        self._levels = self.ways.bit_length() - 1

    def on_fill(self, way: int) -> None:
        # Mirrors NoisyTreePLRU._touch_noisy: one rng.random() per level.
        rng_random = self.rng.random
        prob = self.update_prob
        node = 0
        state = self.state
        for level in range(self._levels - 1, -1, -1):
            went_right = (way >> level) & 1
            if rng_random() < prob:
                if went_right:
                    state &= ~(1 << node)
                else:
                    state |= 1 << node
            node = 2 * node + 1 + went_right
        self.state = state

    def on_hit(self, way: int) -> None:
        self.state = (self.state & self._clear[way]) | self._set[way]


# ----------------------------------------------------------------------
# Bit-PLRU / NRU: one reference bit per way, packed.
# ----------------------------------------------------------------------


class BitPLRUState(FastPolicyState):
    """MRU-bit pseudo-LRU on a packed bit mask."""

    __slots__ = ("ways", "rng", "mru", "count", "_full")

    def __init__(self, policy: BitPLRU) -> None:
        self.ways = policy.ways
        self.rng = policy.rng
        self.mru = 0
        self.count = 0
        for way, used in enumerate(policy.mru_bits()):
            if used:
                self.mru |= 1 << way
                self.count += 1
        self._full = (1 << self.ways) - 1

    def _touch(self, way: int) -> None:
        bit = 1 << way
        if not self.mru & bit:
            if self.count == self.ways - 1:
                self.mru = 0
                self.count = 0
            self.mru |= bit
            self.count += 1

    on_fill = _touch
    on_hit = _touch

    def victim(self) -> int:
        clear = ~self.mru & self._full
        if not clear:
            return 0  # reference fallback, unreachable via the touch rule
        return (clear & -clear).bit_length() - 1

    def on_invalidate(self, way: int) -> None:
        bit = 1 << way
        if self.mru & bit:
            self.mru &= ~bit
            self.count -= 1

    def randomize(self) -> None:
        rng = self.rng
        mru = 0
        count = 0
        for way in range(self.ways):
            if rng.random() < 0.5:
                mru |= 1 << way
                count += 1
        if count == self.ways:
            mru &= ~(1 << rng.randrange(self.ways))
            count -= 1
        self.mru = mru
        self.count = count


class NRUState(FastPolicyState):
    """NRU reference bits packed into an int, plus the rotating pointer."""

    __slots__ = ("ways", "rng", "ref", "scan", "_full")

    def __init__(self, policy: NRU) -> None:
        self.ways = policy.ways
        self.rng = policy.rng
        self.ref = 0
        for way, used in enumerate(policy.referenced_bits()):
            if used:
                self.ref |= 1 << way
        self.scan = policy.scan_start
        self._full = (1 << self.ways) - 1

    def _touch(self, way: int) -> None:
        self.ref |= 1 << way
        if self.ref == self._full:
            self.ref = 1 << way

    on_fill = _touch
    on_hit = _touch

    def victim(self) -> int:
        ways = self.ways
        ref = self.ref
        scan = self.scan
        for offset in range(ways):
            way = scan + offset
            if way >= ways:
                way -= ways
            if not (ref >> way) & 1:
                self.scan = (way + 1) % ways
                return way
        self.ref = 0
        way = scan
        self.scan = (way + 1) % ways
        return way

    def on_invalidate(self, way: int) -> None:
        self.ref &= ~(1 << way)

    def randomize(self) -> None:
        rng = self.rng
        ref = 0
        for way in range(self.ways):
            if rng.random() < 0.5:
                ref |= 1 << way
        self.ref = ref
        self.scan = rng.randrange(self.ways)


# ----------------------------------------------------------------------
# Random policies.
# ----------------------------------------------------------------------


class UniformRandomState(FastPolicyState):
    """Stateless uniform victim; one rng draw per victim request."""

    __slots__ = ("ways", "rng")

    def __init__(self, policy: UniformRandom) -> None:
        self.ways = policy.ways
        self.rng = policy.rng

    def on_fill(self, way: int) -> None:
        pass

    on_hit = on_fill

    def victim(self) -> int:
        return self.rng.randrange(self.ways)

    def randomize(self) -> None:
        pass


class LFSRState(FastPolicyState):
    """Free-running 8-bit Galois LFSR (matches LFSRPseudoRandom)."""

    __slots__ = ("rng", "state", "_mask")

    _TAPS = LFSRPseudoRandom._TAPS

    def __init__(self, policy: LFSRPseudoRandom) -> None:
        self.rng = policy.rng
        self.state = policy.lfsr_state
        self._mask = policy.ways - 1

    def on_fill(self, way: int) -> None:
        pass

    on_hit = on_fill

    def victim(self) -> int:
        state = self.state
        lsb = state & 1
        state >>= 1
        if lsb:
            state ^= self._TAPS
        self.state = state
        return state & self._mask

    def randomize(self) -> None:
        self.state = self.rng.randrange(1, 256)


# ----------------------------------------------------------------------
# Ordered policies: LRU family, FIFO, SRRIP.
# ----------------------------------------------------------------------


class TrueLRUState(FastPolicyState):
    """Exact LRU order, least-recently-used first."""

    __slots__ = ("rng", "order")

    def __init__(self, policy: TrueLRU) -> None:
        self.rng = policy.rng
        self.order = policy.recency_order()

    def _touch(self, way: int) -> None:
        order = self.order
        order.remove(way)
        order.append(way)

    on_fill = _touch
    on_hit = _touch

    def victim(self) -> int:
        return self.order[0]

    def on_invalidate(self, way: int) -> None:
        order = self.order
        order.remove(way)
        order.insert(0, way)

    def randomize(self) -> None:
        self.rng.shuffle(self.order)


class DirtyProtectState(TrueLRUState):
    """LRU with bounded probabilistic dirty-victim protection."""

    __slots__ = ("probs", "max_protections", "dirty_mask", "used")

    wants_dirty_hint = True

    def __init__(self, policy: DirtyProtectingLRU) -> None:
        super().__init__(policy)
        self.probs = policy.protect_probs
        self.max_protections = policy.max_protections
        self.dirty_mask = policy.dirty_mask
        self.used = policy.protections_used()

    def on_fill(self, way: int) -> None:
        self._touch(way)
        self.used[way] = 0

    def notify_dirty_ways(self, dirty_mask: Tuple[bool, ...]) -> None:
        self.dirty_mask = dirty_mask

    def victim(self) -> int:
        # Mirrors DirtyProtectingLRU.victim, including the rng.random()
        # draw per protected dirty candidate.
        rng_random = self.rng.random
        dirty = self.dirty_mask
        used = self.used
        for way in self.order:
            count = used[way]
            if (
                dirty[way]
                and count < self.max_protections
                and rng_random() < self.probs[count]
            ):
                used[way] = count + 1
                continue
            return way
        return self.order[0]


class FIFOState(FastPolicyState):
    """Round-robin insertion order; hits do not refresh."""

    __slots__ = ("rng", "queue")

    def __init__(self, policy: FIFO) -> None:
        self.rng = policy.rng
        self.queue = deque(policy.queue_order())

    def on_fill(self, way: int) -> None:
        queue = self.queue
        if way in queue:
            queue.remove(way)
        queue.append(way)

    def on_hit(self, way: int) -> None:
        pass

    def victim(self) -> int:
        return self.queue[0]

    def on_invalidate(self, way: int) -> None:
        queue = self.queue
        if way in queue:
            queue.remove(way)
            queue.appendleft(way)

    def randomize(self) -> None:
        order = list(self.queue)
        self.rng.shuffle(order)
        self.queue = deque(order)


class SRRIPState(FastPolicyState):
    """2-bit (configurable) RRPV values in a plain list."""

    __slots__ = ("ways", "rng", "rrpv", "max_rrpv")

    def __init__(self, policy: SRRIP) -> None:
        self.ways = policy.ways
        self.rng = policy.rng
        self.rrpv = policy.rrpv_values()
        self.max_rrpv = policy.max_rrpv

    def on_fill(self, way: int) -> None:
        self.rrpv[way] = self.max_rrpv - 1

    def on_hit(self, way: int) -> None:
        self.rrpv[way] = 0

    def victim(self) -> int:
        rrpv = self.rrpv
        max_rrpv = self.max_rrpv
        while True:
            try:
                return rrpv.index(max_rrpv)
            except ValueError:
                for way in range(self.ways):
                    rrpv[way] += 1

    def on_invalidate(self, way: int) -> None:
        self.rrpv[way] = self.max_rrpv

    def randomize(self) -> None:
        rng = self.rng
        self.rrpv = [rng.randrange(self.max_rrpv + 1) for _ in range(self.ways)]


# ----------------------------------------------------------------------
# Fallback adapter and the registry.
# ----------------------------------------------------------------------


class AdapterState(FastPolicyState):
    """Forwarder for policies without a registered fast path.

    Keeps the reference policy object as the single source of truth, so any
    subclass (including ones defined outside this repo) runs unmodified on
    the fast engine.
    """

    __slots__ = ("policy",)

    def __init__(self, policy: ReplacementPolicy) -> None:
        self.policy = policy

    @property  # type: ignore[misc]
    def wants_dirty_hint(self) -> bool:  # type: ignore[override]
        return self.policy.wants_dirty_hint

    def on_fill(self, way: int) -> None:
        self.policy.on_fill(way)

    def on_hit(self, way: int) -> None:
        self.policy.on_hit(way)

    def on_invalidate(self, way: int) -> None:
        self.policy.on_invalidate(way)

    def victim(self) -> int:
        return self.policy.victim()

    def notify_dirty_ways(self, dirty_mask: Tuple[bool, ...]) -> None:
        self.policy.notify_dirty_ways(dirty_mask)

    def randomize(self) -> None:
        self.policy.randomize_state()


#: Exact-type dispatch: subclasses must NOT inherit a parent's fast path
#: (NoisyTreePLRU subclasses TreePLRU but consumes extra rng draws), so
#: lookups match ``type(policy)`` exactly and fall back to AdapterState.
_FAST_STATES: Dict[Type[ReplacementPolicy], Callable[..., FastPolicyState]] = {
    TreePLRU: TreePLRUState,
    NoisyTreePLRU: NoisyTreePLRUState,
    BitPLRU: BitPLRUState,
    NRU: NRUState,
    UniformRandom: UniformRandomState,
    LFSRPseudoRandom: LFSRState,
    TrueLRU: TrueLRUState,
    DirtyProtectingLRU: DirtyProtectState,
    FIFO: FIFOState,
    SRRIP: SRRIPState,
}


def fast_state_for(policy: ReplacementPolicy) -> FastPolicyState:
    """The fast state machine for ``policy`` (adapter if unregistered)."""
    maker = _FAST_STATES.get(type(policy))
    if maker is None:
        return AdapterState(policy)
    return maker(policy)


def has_fast_state(policy_cls: Type[ReplacementPolicy]) -> bool:
    """Whether ``policy_cls`` has a dedicated (non-adapter) fast path."""
    return policy_cls in _FAST_STATES
