"""Static Re-Reference Interval Prediction (SRRIP).

Jaleel et al.'s 2-bit RRPV policy, deployed in Intel LLCs.  Each way has a
re-reference prediction value (RRPV); fills insert with a "long" prediction,
hits promote to "near-immediate", and the victim is any way at the maximum
RRPV (aging every way when none is).  Included because the paper's taxonomy
discussion contrasts L1 PLRU behaviour with LLC policies, and because it
gives the test suite a policy whose protection is *weaker* than LRU for
streaming patterns.
"""

from __future__ import annotations

import random
from typing import List

from repro.common.errors import ConfigurationError
from repro.replacement.base import ReplacementPolicy


class SRRIP(ReplacementPolicy):
    """2-bit (configurable) SRRIP with hit-promotion to RRPV 0."""

    def __init__(self, ways: int, rng: random.Random, rrpv_bits: int = 2) -> None:
        super().__init__(ways, rng)
        if rrpv_bits <= 0:
            raise ConfigurationError(f"rrpv_bits must be positive, got {rrpv_bits}")
        self.max_rrpv = (1 << rrpv_bits) - 1
        # Start everything at "distant" so cold sets behave like fills.
        self._rrpv: List[int] = [self.max_rrpv] * ways

    def on_fill(self, way: int) -> None:
        self._check_way(way)
        self._rrpv[way] = self.max_rrpv - 1

    def on_hit(self, way: int) -> None:
        self._check_way(way)
        self._rrpv[way] = 0

    def victim(self) -> int:
        while True:
            for way in range(self.ways):
                if self._rrpv[way] == self.max_rrpv:
                    return way
            for way in range(self.ways):
                self._rrpv[way] += 1

    def on_invalidate(self, way: int) -> None:
        self._check_way(way)
        self._rrpv[way] = self.max_rrpv

    def randomize_state(self) -> None:
        self._rrpv = [self.rng.randrange(self.max_rrpv + 1) for _ in range(self.ways)]

    def rrpv_values(self) -> List[int]:
        """Copy of per-way RRPVs (exposed for tests)."""
        return list(self._rrpv)
