"""Replacement-policy interface.

A policy instance tracks replacement metadata for one cache set of ``ways``
ways.  The hosting :class:`~repro.cache.CacheSet` is responsible for filling
invalid ways first; :meth:`victim` is only consulted when the set is full, so
policies may assume every way is valid when choosing.
"""

from __future__ import annotations

import abc
import random
from typing import Callable

from repro.common.errors import ConfigurationError

#: Signature of per-set policy constructors: ``factory(ways, rng) -> policy``.
PolicyFactory = Callable[[int, random.Random], "ReplacementPolicy"]


class ReplacementPolicy(abc.ABC):
    """Replacement metadata for a single cache set.

    Subclasses implement the three state-transition hooks plus victim
    selection.  ``rng`` is the only source of randomness a policy may use;
    deterministic policies simply ignore it.
    """

    #: Set True by policies whose :meth:`notify_dirty_ways` actually
    #: consumes the hint.  The hosting cache set skips building the
    #: per-miss dirty-ways tuple for everyone else (the common path).
    wants_dirty_hint: bool = False

    def __init__(self, ways: int, rng: random.Random) -> None:
        if ways <= 0:
            raise ConfigurationError(f"ways must be positive, got {ways}")
        self.ways = ways
        self.rng = rng

    @abc.abstractmethod
    def on_fill(self, way: int) -> None:
        """A new line was installed into ``way`` (after a miss)."""

    @abc.abstractmethod
    def on_hit(self, way: int) -> None:
        """The line in ``way`` was accessed and hit."""

    @abc.abstractmethod
    def victim(self) -> int:
        """Choose the way to evict; the set is guaranteed full."""

    def on_invalidate(self, way: int) -> None:
        """The line in ``way`` was invalidated (flush). Optional hook."""

    def notify_dirty_ways(self, dirty_mask: "tuple[bool, ...]") -> None:
        """Hint from the cache set: which ways are currently dirty.

        Called immediately before :meth:`victim`, but only for policies
        that declare ``wants_dirty_hint = True`` — building the mask tuple
        on every miss is measurable overhead, so consumers must opt in.
        The E5-2650 behavioural surrogate
        (:class:`~repro.replacement.dirty_protect.DirtyProtectingPLRU`)
        uses it to model the measured reluctance to evict dirty victims.
        """

    def randomize_state(self) -> None:
        """Scramble internal metadata as if arbitrary prior traffic ran.

        Used by the Table 2 experiment, where the probability of evicting a
        known line depends on the (unknown) pre-existing PLRU state of the
        set.  The default performs a plausible scramble by replaying random
        hits; subclasses with richer state override it.
        """
        for _ in range(self.ways * 4):
            self.on_hit(self.rng.randrange(self.ways))

    def _check_way(self, way: int) -> None:
        if not 0 <= way < self.ways:
            raise ConfigurationError(f"way {way} out of range [0, {self.ways})")

    @property
    def name(self) -> str:
        """Human-readable policy name (class name by default)."""
        return type(self).__name__
