"""Bit-PLRU (MRU-bit) replacement.

One bit per way marks it "recently used"; the victim is the lowest-numbered
way whose bit is clear.  When setting a bit would make all bits set, the
others are cleared first (the classic MRU-bit reset rule).  Used by several
commercial cores and a useful mid-point between FIFO and Tree-PLRU in the
policy comparison experiments.
"""

from __future__ import annotations

import random
from typing import List

from repro.replacement.base import ReplacementPolicy


class BitPLRU(ReplacementPolicy):
    """MRU-bit pseudo-LRU."""

    def __init__(self, ways: int, rng: random.Random) -> None:
        super().__init__(ways, rng)
        self._mru: List[bool] = [False] * ways

    def _touch(self, way: int) -> None:
        if not self._mru[way] and sum(self._mru) == self.ways - 1:
            # Setting this bit would saturate: reset the epoch.
            self._mru = [False] * self.ways
        self._mru[way] = True

    def on_fill(self, way: int) -> None:
        self._check_way(way)
        self._touch(way)

    def on_hit(self, way: int) -> None:
        self._check_way(way)
        self._touch(way)

    def victim(self) -> int:
        for way, used in enumerate(self._mru):
            if not used:
                return way
        # Unreachable given the saturation rule, but keep a sane fallback.
        return 0

    def on_invalidate(self, way: int) -> None:
        self._check_way(way)
        self._mru[way] = False

    def randomize_state(self) -> None:
        self._mru = [self.rng.random() < 0.5 for _ in range(self.ways)]
        if all(self._mru):
            self._mru[self.rng.randrange(self.ways)] = False

    def mru_bits(self) -> List[bool]:
        """Copy of the MRU bits (exposed for tests)."""
        return list(self._mru)
