"""Name-based registry of replacement-policy factories.

Experiments and cache presets refer to policies by short stable names
(``"lru"``, ``"tree-plru"``, ...) so that configurations stay serialisable
and CLI-selectable.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.common.errors import ConfigurationError
from repro.replacement.base import PolicyFactory, ReplacementPolicy
from repro.replacement.bit_plru import BitPLRU
from repro.replacement.fifo import FIFO
from repro.replacement.dirty_protect import DirtyProtectingPLRU
from repro.replacement.noisy_plru import NoisyTreePLRU
from repro.replacement.nru import NRU
from repro.replacement.random_policy import LFSRPseudoRandom, UniformRandom
from repro.replacement.srrip import SRRIP
from repro.replacement.tree_plru import TreePLRU
from repro.replacement.true_lru import TrueLRU

_REGISTRY: Dict[str, type] = {
    "lru": TrueLRU,
    "fifo": FIFO,
    "tree-plru": TreePLRU,
    "noisy-plru": NoisyTreePLRU,
    "dirty-protect-plru": DirtyProtectingPLRU,
    "e5-2650": DirtyProtectingPLRU,  # behavioural surrogate, see DESIGN.md
    "bit-plru": BitPLRU,
    "nru": NRU,
    "srrip": SRRIP,
    "random": UniformRandom,
    "lfsr-random": LFSRPseudoRandom,
}


def available_policies() -> List[str]:
    """Sorted list of registered policy names."""
    return sorted(_REGISTRY)


def make_policy_factory(name: str, **kwargs: object) -> PolicyFactory:
    """Return a ``factory(ways, rng)`` for the policy called ``name``.

    Extra keyword arguments are forwarded to the policy constructor, e.g.
    ``make_policy_factory("noisy-plru", update_prob=0.5)``.
    """
    try:
        policy_cls = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown replacement policy {name!r}; "
            f"available: {', '.join(available_policies())}"
        )

    def factory(ways: int, rng: random.Random) -> ReplacementPolicy:
        return policy_cls(ways, rng, **kwargs)

    return factory
