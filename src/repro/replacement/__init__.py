"""Cache replacement policies.

Each policy manages the metadata of a *single cache set*; a cache creates one
policy instance per set through a factory.  The paper's Table 2 and Table 5
are pure properties of these policies (how reliably does a replacement set of
size N evict a previously-touched line?), so they are implemented carefully
and tested independently of the cache that hosts them.
"""

from repro.replacement.base import ReplacementPolicy, PolicyFactory
from repro.replacement.true_lru import TrueLRU
from repro.replacement.fifo import FIFO
from repro.replacement.tree_plru import TreePLRU
from repro.replacement.noisy_plru import NoisyTreePLRU
from repro.replacement.dirty_protect import DirtyProtectingLRU, DirtyProtectingPLRU
from repro.replacement.bit_plru import BitPLRU
from repro.replacement.nru import NRU
from repro.replacement.srrip import SRRIP
from repro.replacement.random_policy import LFSRPseudoRandom, UniformRandom
from repro.replacement.registry import available_policies, make_policy_factory

__all__ = [
    "BitPLRU",
    "DirtyProtectingLRU",
    "DirtyProtectingPLRU",
    "FIFO",
    "LFSRPseudoRandom",
    "NRU",
    "NoisyTreePLRU",
    "PolicyFactory",
    "ReplacementPolicy",
    "SRRIP",
    "TreePLRU",
    "TrueLRU",
    "UniformRandom",
    "available_policies",
    "make_policy_factory",
]
