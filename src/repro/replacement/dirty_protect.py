"""Behavioural surrogate for the Xeon E5-2650's measured L1 behaviour.

The paper's Table 2 measures that on the E5-2650 a freshly *written*
(dirty) line survives a replacement set of 8 lines 31.2% of the time and
a set of 9 lines 18.3% of the time, but never survives 10 lines.  Plain
(Tree-)PLRU cannot produce that pattern: its miss-victim selection covers
all ways, so 8 fills always evict the line.

A mechanism that reproduces the measurements — and is microarchitecturally
plausible, since evicting a dirty victim stalls the fill on the write-back
(the very effect the WB channel exploits) — is *bounded dirty-victim
protection*: when victim selection lands on a dirty line, the cache may
divert to the next (clean) candidate instead, at most ``max_protections``
times per residency.  The protected line keeps its age, so the very next
fill designates it again.  With diversion probabilities ``p1 = 0.312``
and ``p2 = 0.587`` the eviction probabilities are ``1 - p1 = 68.8%`` at
N = 8, ``1 - p1*p2 = 81.7%`` at N = 9 and, the budget exhausted, ``100%``
at N = 10 — the paper's measured column.

This is a calibrated surrogate, not reverse engineering; DESIGN.md and
EXPERIMENTS.md flag it as such.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.common.errors import ConfigurationError
from repro.replacement.true_lru import TrueLRU


class DirtyProtectingLRU(TrueLRU):
    """LRU with bounded probabilistic protection of dirty victims."""

    #: Calibrated per-attempt diversion probabilities (see module doc).
    DEFAULT_PROTECT_PROBS = (0.312, 0.587)

    wants_dirty_hint = True

    def __init__(
        self,
        ways: int,
        rng: random.Random,
        protect_probs: Tuple[float, ...] = DEFAULT_PROTECT_PROBS,
    ) -> None:
        super().__init__(ways, rng)
        if any(not 0.0 <= p <= 1.0 for p in protect_probs):
            raise ConfigurationError(
                f"protect_probs must be within [0, 1], got {protect_probs}"
            )
        self.protect_probs = tuple(protect_probs)
        self._dirty_mask: Tuple[bool, ...] = tuple([False] * ways)
        #: Diversions used so far, per way; reset when the way is refilled.
        self._protections_used: List[int] = [0] * ways

    @property
    def max_protections(self) -> int:
        """Protection budget per residency."""
        return len(self.protect_probs)

    def notify_dirty_ways(self, dirty_mask: Tuple[bool, ...]) -> None:
        if len(dirty_mask) != self.ways:
            raise ConfigurationError(
                f"dirty mask has {len(dirty_mask)} entries for {self.ways} ways"
            )
        self._dirty_mask = tuple(dirty_mask)

    def on_fill(self, way: int) -> None:
        super().on_fill(way)
        self._protections_used[way] = 0

    def victim(self) -> int:
        # Scan candidates oldest-first; a dirty candidate with remaining
        # budget may divert the eviction to the next-oldest line.  The
        # diverted line keeps its age, so it is the designated victim
        # again on the very next miss.
        for way in self.recency_order():
            used = self._protections_used[way]
            if (
                self._dirty_mask[way]
                and used < self.max_protections
                and self.rng.random() < self.protect_probs[used]
            ):
                self._protections_used[way] = used + 1
                continue
            return way
        # Every way protected this round (possible when all are dirty):
        # fall back to plain LRU.
        return super().victim()

    def protections_used(self) -> List[int]:
        """Per-way diversion counts (exposed for the fast engine/tests)."""
        return list(self._protections_used)

    @property
    def dirty_mask(self) -> Tuple[bool, ...]:
        """Most recent dirty-ways hint received from the cache set."""
        return self._dirty_mask


#: Backwards-compatible alias used before the surrogate moved to an
#: LRU base (the PLRU-based variant could not re-designate a protected
#: line quickly enough to reproduce the paper's N = 9 column).
DirtyProtectingPLRU = DirtyProtectingLRU
