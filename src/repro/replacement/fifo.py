"""FIFO (round-robin) replacement.

Evicts ways in insertion order regardless of hits.  Included as a baseline
policy: several embedded cores use it, and it is a useful contrast case in
the replacement-policy property tests (hits must *not* protect a line).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque

from repro.replacement.base import ReplacementPolicy


class FIFO(ReplacementPolicy):
    """First-in first-out eviction; hits do not refresh a line's position."""

    def __init__(self, ways: int, rng: random.Random) -> None:
        super().__init__(ways, rng)
        self._queue: Deque[int] = deque(range(ways))

    def on_fill(self, way: int) -> None:
        self._check_way(way)
        if way in self._queue:
            self._queue.remove(way)
        self._queue.append(way)

    def on_hit(self, way: int) -> None:
        self._check_way(way)
        # FIFO ignores hits by definition.

    def victim(self) -> int:
        return self._queue[0]

    def on_invalidate(self, way: int) -> None:
        self._check_way(way)
        if way in self._queue:
            self._queue.remove(way)
            self._queue.appendleft(way)

    def randomize_state(self) -> None:
        order = list(self._queue)
        self.rng.shuffle(order)
        self._queue = deque(order)

    def queue_order(self) -> list:
        """Eviction order, next victim first (exposed for the fast engine)."""
        return list(self._queue)
