"""Side-channel attacks built on the WB primitive (Section 9).

When a victim's memory behaviour depends on a secret, the covert-channel
receiver machinery turns into a side channel.  The paper gives two victim
gadgets (Listing 2) and three attack scenarios; this package implements
all of them against the simulated hierarchy:

1. dirty-state attack — victim gadget (a) stores on ``secret == 1``; the
   attacker reads the secret from the target set's replacement latency;
2. dirty-eviction attack — victim gadget (b) only *loads*; the attacker
   pre-fills the set with dirty lines and detects the victim's eviction
   by the drop in replacement latency;
3. execution-time attack — the attacker times the victim call itself,
   which is slower when it must replace one of the attacker's dirty lines.
"""

from repro.sidechannel.victim import VictimGadgetA, VictimGadgetB, VictimContext
from repro.sidechannel.attacks import (
    AttackResult,
    dirty_eviction_attack,
    dirty_state_attack,
    execution_time_attack,
)
from repro.sidechannel.rsa_victim import (
    KeyRecoveryResult,
    SquareAndMultiplyVictim,
    recover_exponent,
)

__all__ = [
    "AttackResult",
    "KeyRecoveryResult",
    "SquareAndMultiplyVictim",
    "recover_exponent",
    "VictimContext",
    "VictimGadgetA",
    "VictimGadgetB",
    "dirty_eviction_attack",
    "dirty_state_attack",
    "execution_time_attack",
]
