"""A realistic Section 9 victim: square-and-multiply modular exponentiation.

The paper's Listing 2 gadgets are abstractions of real secret-dependent
code.  The classic concrete instance is left-to-right square-and-multiply
RSA: for each private-exponent bit the loop always squares, and
*multiplies only when the bit is 1*.  The multiply touches (and in real
bignum code, writes) its own working buffer — which is exactly gadget (a):

.. code-block:: python

    for bit in exponent_bits:
        result = (result * result) % modulus        # touches square buffer
        if bit:
            result = (result * base) % modulus      # WRITES multiply buffer

The attacker interleaves with the victim: fill the multiply buffer's
cache set with clean lines, let the victim process one exponent bit,
measure the set's replacement latency.  A dirty line means the multiply
ran, i.e. the bit was 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.common.bits import int_to_bits
from repro.common.errors import ConfigurationError
from repro.common.rng import derive_rng, ensure_rng
from repro.cache.configs import make_xeon_hierarchy
from repro.cache.hierarchy import CacheHierarchy
from repro.mem.address_space import AddressSpace, FrameAllocator
from repro.mem.sets import build_replacement_set

VICTIM_TID = 2
ATTACKER_TID = 1


@dataclass
class SquareAndMultiplyVictim:
    """Models the memory behaviour of one RSA exponentiation step.

    Arithmetic is performed for real (the result is checkable); the cache
    side effects model a bignum implementation whose square and multiply
    routines each keep a working buffer: squaring *reads* its buffer,
    multiplying *writes* its own (limb store), which is the dirty-state
    leak.
    """

    hierarchy: CacheHierarchy
    space: AddressSpace
    base: int
    modulus: int
    exponent_bits: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.modulus <= 1:
            raise ConfigurationError("modulus must be > 1")
        if any(bit not in (0, 1) for bit in self.exponent_bits):
            raise ConfigurationError("exponent bits must be 0/1")
        layout = self.hierarchy.l1.layout
        stride = layout.stride_between_conflicts()
        buffers = self.space.allocate_buffer(2 * stride)
        #: Working buffer of the squaring routine.
        self.square_buffer = buffers
        #: Working buffer of the multiply routine — the leaky line.
        self.multiply_buffer = buffers + stride + layout.line_size
        self.space.translate(self.square_buffer)
        self.space.translate(self.multiply_buffer)
        self._result = 1
        self._step = 0

    @property
    def multiply_set(self) -> int:
        """L1 set index the multiply buffer maps to (the attack target)."""
        return self.hierarchy.l1.set_index(self.space.translate(self.multiply_buffer))

    @property
    def finished(self) -> bool:
        """Whether every exponent bit has been processed."""
        return self._step >= len(self.exponent_bits)

    def step(self) -> None:
        """Process one exponent bit (one iteration of the S&M loop)."""
        if self.finished:
            raise ConfigurationError("exponentiation already finished")
        bit = self.exponent_bits[self._step]
        self._step += 1
        # Square: always executes, reads its working buffer.
        self._result = (self._result * self._result) % self.modulus
        self.hierarchy.load(self.space.translate(self.square_buffer), owner=VICTIM_TID)
        if bit:
            # Multiply: executes only for 1-bits, writes its buffer.
            self._result = (self._result * self.base) % self.modulus
            self.hierarchy.store(
                self.space.translate(self.multiply_buffer), owner=VICTIM_TID
            )

    def result(self) -> int:
        """The computed ``base ** exponent % modulus`` (ground truth)."""
        if not self.finished:
            raise ConfigurationError("exponentiation not finished yet")
        return self._result


@dataclass(frozen=True)
class KeyRecoveryResult:
    """Outcome of the exponent-recovery attack."""

    true_exponent_bits: Tuple[int, ...]
    recovered_bits: Tuple[int, ...]
    accuracy: float
    #: The victim's arithmetic result, proving the victim really computed
    #: the exponentiation the attacker was spying on.
    modexp_result: int

    @property
    def fully_recovered(self) -> bool:
        """True when every exponent bit was read correctly."""
        return self.accuracy == 1.0


def recover_exponent(
    exponent: int,
    bit_width: int = 64,
    base: int = 0x10001,
    modulus: int = (1 << 61) - 1,
    seed: int = 0,
    calibration_rounds: int = 16,
) -> KeyRecoveryResult:
    """Run the full attack: spy on one exponentiation, read out the key.

    The attacker primes the multiply buffer's set with clean lines before
    each victim step and measures the replacement latency afterwards; a
    write-back penalty marks a 1-bit.
    """
    if exponent < 0:
        raise ConfigurationError("exponent must be non-negative")
    rng = ensure_rng(seed)
    hierarchy = make_xeon_hierarchy(rng=derive_rng(rng, "hierarchy"))
    allocator = FrameAllocator()
    victim_space = AddressSpace(pid=VICTIM_TID, allocator=allocator)
    attacker_space = AddressSpace(pid=ATTACKER_TID, allocator=allocator)

    bits = tuple(int_to_bits(exponent, bit_width))
    victim = SquareAndMultiplyVictim(
        hierarchy=hierarchy,
        space=victim_space,
        base=base,
        modulus=modulus,
        exponent_bits=bits,
    )
    target_set = victim.multiply_set
    layout = hierarchy.l1.layout
    set_rng = derive_rng(rng, "sets")
    replacement_sets = [
        build_replacement_set(attacker_space, layout, target_set, 10, set_rng)
        for _ in range(2)
    ]
    for lines in replacement_sets:
        for line in lines:
            hierarchy.load(attacker_space.translate(line), owner=ATTACKER_TID)

    measure_count = 0

    def measure() -> int:
        nonlocal measure_count
        lines = replacement_sets[measure_count % 2]
        measure_count += 1
        return sum(
            hierarchy.load(attacker_space.translate(line), owner=ATTACKER_TID).latency
            for line in lines
        )

    # Calibrate the clean-set baseline (the attacker controls the machine
    # between victim invocations, so this needs no victim cooperation).
    baseline = sorted(measure() for _ in range(calibration_rounds))
    threshold = baseline[len(baseline) // 2] + hierarchy.latency.l1_writeback_penalty / 2

    recovered: List[int] = []
    for _ in bits:
        victim.step()
        recovered.append(1 if measure() > threshold else 0)

    matches = sum(1 for a, b in zip(bits, recovered) if a == b)
    return KeyRecoveryResult(
        true_exponent_bits=bits,
        recovered_bits=tuple(recovered),
        accuracy=matches / len(bits),
        modexp_result=victim.result(),
    )
