"""The three WB side-channel scenarios of Section 9.

All attacks share a structure: *prepare* the target set(s), *invoke* the
victim gadget, *measure*, and threshold the measurement into a secret
guess.  Calibration runs the same loop with known secrets — the paper's
attacker profiles the victim binary offline the same way.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_rng, ensure_rng
from repro.cache.configs import make_xeon_hierarchy
from repro.mem.address_space import AddressSpace, FrameAllocator
from repro.mem.sets import build_replacement_set, build_set_conflicting_lines
from repro.sidechannel.victim import (
    VictimContext,
    VictimGadgetA,
    VictimGadgetB,
    make_victim,
)

ATTACKER_TID = 1


@dataclass(frozen=True)
class AttackResult:
    """Outcome of recovering a secret bit-string."""

    scenario: str
    secret: Tuple[int, ...]
    recovered: Tuple[int, ...]
    accuracy: float
    threshold: float
    #: Median measurement per secret value during calibration, diagnostic.
    calibration_means: Tuple[float, float]

    def __str__(self) -> str:
        return (
            f"{self.scenario}: recovered {self.accuracy:.1%} of "
            f"{len(self.secret)} secret bits"
        )


class _AttackRig:
    """Shared machinery: hierarchy, spaces, replacement sets, thresholds."""

    def __init__(self, seed: int = 0, target_set: int = 13, other_set: int = 37):
        self.rng = ensure_rng(seed)
        self.hierarchy = make_xeon_hierarchy(rng=derive_rng(self.rng, "hierarchy"))
        self.allocator = FrameAllocator()
        self.attacker = AddressSpace(pid=ATTACKER_TID, allocator=self.allocator)
        self.victim_space = AddressSpace(pid=2, allocator=self.allocator)
        self.target_set = target_set
        self.other_set = other_set
        layout = self.hierarchy.l1.layout
        set_rng = derive_rng(self.rng, "sets")
        self.replacement_sets = [
            build_replacement_set(self.attacker, layout, target_set, 10, set_rng)
            for _ in range(2)
        ]
        self.dirty_lines = build_set_conflicting_lines(
            self.attacker, layout, target_set, self.hierarchy.l1.associativity
        )
        self.clean_lines_other = build_set_conflicting_lines(
            self.attacker, layout, other_set, self.hierarchy.l1.associativity
        )
        self._measure_count = 0
        # Warm the replacement sets so measurements alternate L2 hits.
        for lines in self.replacement_sets:
            for line in lines:
                self.hierarchy.load(self.attacker.translate(line), owner=ATTACKER_TID)

    def fill_target_clean(self) -> None:
        """Leave the target set full of clean attacker lines."""
        for line in self.replacement_sets[self._measure_count % 2]:
            self.hierarchy.load(self.attacker.translate(line), owner=ATTACKER_TID)
        self._measure_count += 1

    def fill_target_dirty(self, passes: int = 2) -> None:
        """Fill the target set with W dirty attacker lines.

        Two passes: with a pseudo-LRU policy a single pass can leave one
        foreign (victim) line resident because the miss-fill victimises an
        attacker way instead; the second pass re-stores whichever line
        that eviction displaced.
        """
        for _ in range(passes):
            for line in self.dirty_lines:
                self.hierarchy.store(self.attacker.translate(line), owner=ATTACKER_TID)

    def fill_other_clean(self, passes: int = 2) -> None:
        """Fill the second set with clean attacker lines (two passes)."""
        for _ in range(passes):
            for line in self.clean_lines_other:
                self.hierarchy.load(self.attacker.translate(line), owner=ATTACKER_TID)

    def measure_target(self) -> int:
        """Replacement latency of the target set (one traversal)."""
        lines = self.replacement_sets[self._measure_count % 2]
        self._measure_count += 1
        return sum(
            self.hierarchy.load(self.attacker.translate(line), owner=ATTACKER_TID).latency
            for line in lines
        )

    def make_victim_context(self, same_set: bool) -> VictimContext:
        """Victim gadget lines in the target set (and optionally another)."""
        return make_victim(
            self.hierarchy,
            self.victim_space,
            set0=self.target_set,
            set1=self.target_set if same_set else self.other_set,
        )


def _threshold_attack(
    scenario: str,
    secret: Sequence[int],
    prepare: Callable[[], None],
    invoke: Callable[[int], None],
    measure: Callable[[], float],
    calibration_rounds: int = 24,
    one_is_higher: bool = True,
) -> AttackResult:
    """Generic prepare/invoke/measure attack with calibrated threshold."""
    for bit in secret:
        if bit not in (0, 1):
            raise ConfigurationError(f"secret bits must be 0/1, got {bit!r}")

    def one_round(bit: int) -> float:
        prepare()
        invoke(bit)
        return measure()

    zeros = [one_round(0) for _ in range(calibration_rounds)]
    ones = [one_round(1) for _ in range(calibration_rounds)]
    # Medians, not means: the first calibration rounds include cold DRAM
    # fills whose latency would drag a mean-based threshold far away from
    # the steady-state clusters.
    mean_zero = statistics.median(zeros)
    mean_one = statistics.median(ones)
    threshold = (mean_zero + mean_one) / 2.0
    recovered: List[int] = []
    for bit in secret:
        value = one_round(bit)
        if one_is_higher:
            recovered.append(1 if value > threshold else 0)
        else:
            recovered.append(1 if value < threshold else 0)
    matches = sum(1 for s, r in zip(secret, recovered) if s == r)
    return AttackResult(
        scenario=scenario,
        secret=tuple(secret),
        recovered=tuple(recovered),
        accuracy=matches / len(secret) if secret else 1.0,
        threshold=threshold,
        calibration_means=(mean_zero, mean_one),
    )


def dirty_state_attack(
    secret: Sequence[int],
    seed: int = 0,
    same_set: bool = True,
) -> AttackResult:
    """Scenario 1: gadget (a), secret read from the set's dirty state.

    The attacker fills the set with clean lines, calls the victim, and
    measures the replacement latency: one extra dirty line means the
    victim took the ``secret == 1`` branch.  Works even when both gadget
    lines live in the *same* set (``same_set=True``) — the case the paper
    stresses because Prime+Probe and the LRU channel cannot decode it.
    """
    rig = _AttackRig(seed=seed)
    victim = VictimGadgetA(rig.make_victim_context(same_set=same_set))
    return _threshold_attack(
        scenario="dirty-state (gadget a)",
        secret=secret,
        prepare=rig.fill_target_clean,
        invoke=lambda bit: victim.call(bit),
        measure=rig.measure_target,
    )


def dirty_eviction_attack(secret: Sequence[int], seed: int = 0) -> AttackResult:
    """Scenario 2: gadget (b), secret read from a *missing* dirty line.

    The attacker pre-fills the set with W dirty lines; the victim's load
    on the ``secret == 1`` branch replaces one of them, so the attacker's
    subsequent measurement sees one dirty write-back *fewer*.  Gadget
    lines must be in different sets for this scenario.
    """
    rig = _AttackRig(seed=seed)
    victim = VictimGadgetB(rig.make_victim_context(same_set=False))
    return _threshold_attack(
        scenario="dirty-eviction (gadget b)",
        secret=secret,
        prepare=rig.fill_target_dirty,
        invoke=lambda bit: victim.call(bit),
        measure=rig.measure_target,
        one_is_higher=False,
    )


def execution_time_attack(
    secret: Sequence[int],
    seed: int = 0,
    gadget: str = "b",
) -> AttackResult:
    """Scenario 3: secret read from the *victim's* execution time.

    The attacker fills set i with dirty lines and set j with clean lines;
    the victim call is slower when its access lands in set i (a dirty
    victim must be written back before the fill).  The paper notes this
    variant is the noisiest on real hardware — the difference is a single
    write-back penalty inside a whole function call.
    """
    rig = _AttackRig(seed=seed)
    context = rig.make_victim_context(same_set=False)
    if gadget == "a":
        victim: object = VictimGadgetA(context)
    elif gadget == "b":
        victim = VictimGadgetB(context)
    else:
        raise ConfigurationError(f"gadget must be 'a' or 'b', got {gadget!r}")

    last_latency: List[float] = [0.0]

    def prepare() -> None:
        rig.fill_target_dirty()
        rig.fill_other_clean()

    def invoke(bit: int) -> None:
        last_latency[0] = float(victim.call(bit))  # type: ignore[attr-defined]

    return _threshold_attack(
        scenario=f"execution-time (gadget {gadget})",
        secret=secret,
        prepare=prepare,
        invoke=invoke,
        measure=lambda: last_latency[0],
    )
