"""Victim gadgets from Listing 2 of the paper.

Both gadgets branch on a secret bit; they differ in whether the taken
branch *modifies* data (gadget a) or only reads it (gadget b).  The
gadgets execute synchronously against the shared hierarchy — modelling an
attacker that can invoke the victim (a service call, an enclave ecall, a
crypto routine) and observe cache state before and after.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.cache.hierarchy import CacheHierarchy
from repro.mem.address_space import AddressSpace


@dataclass
class VictimContext:
    """The victim process: its address space and two gadget lines.

    ``line0`` is touched on ``secret == 1`` and ``line1`` on
    ``secret == 0``.  Scenario 1 allows both lines in the same set (or
    even the same line); scenarios 2 and 3 need them in different sets.
    """

    hierarchy: CacheHierarchy
    space: AddressSpace
    line0: int
    line1: int
    tid: int = 2

    def __post_init__(self) -> None:
        if self.line0 == self.line1:
            # Legal for gadget (a) scenario 1, but worth validating shape.
            pass
        for name in ("line0", "line1"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")

    def set_of_line0(self) -> int:
        """L1 set index of line 0 (where the attacker aims)."""
        return self.hierarchy.l1.set_index(self.space.translate(self.line0))

    def set_of_line1(self) -> int:
        """L1 set index of line 1."""
        return self.hierarchy.l1.set_index(self.space.translate(self.line1))


class VictimGadgetA:
    """Listing 2(a): ``if secret: modify line0 else: access line1``."""

    def __init__(self, context: VictimContext) -> None:
        self.context = context

    def call(self, secret: int) -> int:
        """Execute the gadget; returns the victim's execution cycles."""
        if secret not in (0, 1):
            raise ConfigurationError(f"secret must be 0 or 1, got {secret}")
        ctx = self.context
        if secret:
            trace = ctx.hierarchy.store(
                ctx.space.translate(ctx.line0), owner=ctx.tid
            )
        else:
            trace = ctx.hierarchy.load(
                ctx.space.translate(ctx.line1), owner=ctx.tid
            )
        return trace.latency


class VictimGadgetB:
    """Listing 2(b): ``if secret: access line0 else: access line1``.

    Neither branch modifies data, so the dirty-state attack of scenario 1
    cannot see it; scenarios 2 and 3 can.
    """

    def __init__(self, context: VictimContext) -> None:
        self.context = context

    def call(self, secret: int) -> int:
        """Execute the gadget; returns the victim's execution cycles."""
        if secret not in (0, 1):
            raise ConfigurationError(f"secret must be 0 or 1, got {secret}")
        ctx = self.context
        line = ctx.line0 if secret else ctx.line1
        return ctx.hierarchy.load(ctx.space.translate(line), owner=ctx.tid).latency


def make_victim(
    hierarchy: CacheHierarchy,
    space: AddressSpace,
    set0: int,
    set1: Optional[int] = None,
) -> VictimContext:
    """Allocate victim gadget lines mapping to the requested sets.

    ``set1=None`` places line 1 in the same set as line 0 (the case the
    paper highlights because Prime+Probe and the LRU channel cannot
    distinguish it).
    """
    layout = hierarchy.l1.layout
    if set1 is None:
        set1 = set0
    stride = layout.stride_between_conflicts()
    base = space.allocate_buffer(2 * stride)
    line0 = base + set0 * layout.line_size
    line1 = base + stride + set1 * layout.line_size
    space.translate(line0)
    space.translate(line1)
    return VictimContext(hierarchy=hierarchy, space=space, line0=line0, line1=line1)
