"""Helpers for bit sequences used by the covert-channel protocols.

Bit sequences are represented as ``list[int]`` whose elements are 0 or 1.
This is deliberately the simplest representation that works: messages in the
paper are at most a few hundred bits, and clarity beats packing here.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Sequence

from repro.common.errors import ProtocolError


def random_bits(length: int, rng: random.Random) -> List[int]:
    """Return ``length`` uniformly random bits drawn from ``rng``."""
    if length < 0:
        raise ProtocolError(f"length must be non-negative, got {length}")
    return [rng.randrange(2) for _ in range(length)]


def validate_bits(bits: Sequence[int]) -> None:
    """Raise :class:`ProtocolError` unless every element is 0 or 1."""
    for index, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ProtocolError(f"bit {index} is {bit!r}, expected 0 or 1")


def bits_to_string(bits: Sequence[int]) -> str:
    """Render a bit sequence as a compact ``'0101...'`` string."""
    validate_bits(bits)
    return "".join(str(bit) for bit in bits)


def string_to_bits(text: str) -> List[int]:
    """Parse a ``'0101...'`` string into a bit list."""
    bits: List[int] = []
    for index, char in enumerate(text):
        if char not in "01":
            raise ProtocolError(f"character {index} is {char!r}, expected '0' or '1'")
        bits.append(int(char))
    return bits


def bits_to_int(bits: Sequence[int]) -> int:
    """Interpret a bit sequence as a big-endian unsigned integer.

    >>> bits_to_int([1, 0, 1])
    5
    """
    validate_bits(bits)
    value = 0
    for bit in bits:
        value = (value << 1) | bit
    return value


def int_to_bits(value: int, width: int) -> List[int]:
    """Big-endian fixed-width bit expansion of ``value``.

    >>> int_to_bits(5, 4)
    [0, 1, 0, 1]
    """
    if value < 0:
        raise ProtocolError(f"value must be non-negative, got {value}")
    if width < 0:
        raise ProtocolError(f"width must be non-negative, got {width}")
    if value >= (1 << width):
        raise ProtocolError(f"value {value} does not fit in {width} bits")
    return [(value >> shift) & 1 for shift in range(width - 1, -1, -1)]


def chunk_bits(bits: Sequence[int], chunk_size: int) -> Iterator[List[int]]:
    """Yield consecutive ``chunk_size``-wide slices of ``bits``.

    The message length must be a multiple of the chunk size; multi-bit
    encodings in the paper always send whole symbols.
    """
    if chunk_size <= 0:
        raise ProtocolError(f"chunk_size must be positive, got {chunk_size}")
    if len(bits) % chunk_size != 0:
        raise ProtocolError(
            f"message of {len(bits)} bits is not a whole number of "
            f"{chunk_size}-bit symbols"
        )
    for start in range(0, len(bits), chunk_size):
        yield list(bits[start : start + chunk_size])


def hamming_distance(first: Sequence[int], second: Sequence[int]) -> int:
    """Number of positions where two equal-length bit sequences differ."""
    if len(first) != len(second):
        raise ProtocolError(
            f"sequences differ in length ({len(first)} vs {len(second)}); "
            "use edit distance for unequal lengths"
        )
    return sum(1 for a, b in zip(first, second) if a != b)


def flatten(groups: Iterable[Sequence[int]]) -> List[int]:
    """Concatenate an iterable of bit groups into one bit list."""
    result: List[int] = []
    for group in groups:
        result.extend(group)
    return result
