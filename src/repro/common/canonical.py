"""Canonical JSON: one stable byte representation per JSON value.

Content-addressed storage (:mod:`repro.service.store`) and manifest
equality checks (:meth:`repro.runner.RunManifest.canonical_json`) both
need the property that *equal data serialises to equal bytes* — across
processes, Python versions and insertion orders.  ``json.dumps`` alone
does not guarantee that: key order follows insertion order, whitespace
depends on ``indent``, and ``NaN`` serialises to a token that is not
even JSON.

:func:`canonical_json` pins all three down:

* keys are sorted at every nesting level;
* separators are compact and fixed (``","`` / ``":"``);
* ``NaN`` / ``Infinity`` are rejected loudly (``allow_nan=False``) —
  a hash key containing NaN would never round-trip, because
  ``NaN != NaN``;
* optionally (``require_version=True``) the top-level object must carry
  an explicit schema-version field, so hashed/compared payloads are
  versioned by construction and old blobs fail loudly instead of
  silently colliding across layout changes.

:func:`canonical_digest` is the companion content address: the SHA-256
hex digest of the canonical bytes.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict

from repro.common.errors import ConfigurationError

#: Top-level keys accepted as the explicit version stamp when
#: ``require_version=True``.  ``schema_version`` is what result and
#: manifest dicts already carry; ``key_schema_version`` is the service
#: store's key-material stamp.
VERSION_KEYS = ("schema_version", "key_schema_version")


def canonical_json(data: object, *, require_version: bool = False) -> str:
    """Serialise ``data`` to its one canonical JSON string.

    Raises :class:`~repro.common.errors.ConfigurationError` when the
    value is not canonicalisable: non-JSON types, NaN/Infinity floats,
    or (with ``require_version``) a top level that is not an object
    carrying one of :data:`VERSION_KEYS`.
    """
    if require_version:
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"versioned canonical JSON requires a top-level object, "
                f"got {type(data).__name__}"
            )
        if not any(key in data for key in VERSION_KEYS):
            raise ConfigurationError(
                f"canonical payload lacks an explicit version field "
                f"(one of {', '.join(VERSION_KEYS)}); refusing to hash "
                f"or compare unversioned data"
            )
    try:
        return json.dumps(
            data, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except ValueError as exc:
        # allow_nan=False raises ValueError("Out of range float ...").
        raise ConfigurationError(
            f"value is not canonical-JSON serialisable (NaN/Infinity "
            f"are rejected: NaN != NaN would break key round-trips): "
            f"{exc}"
        ) from exc
    except TypeError as exc:
        raise ConfigurationError(
            f"value is not JSON serialisable: {exc}"
        ) from exc


def canonical_digest(data: object, *, require_version: bool = False) -> str:
    """SHA-256 hex digest of :func:`canonical_json` — a content address."""
    text = canonical_json(data, require_version=require_version)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def canonical_loads(text: str) -> Dict[str, object]:
    """Parse JSON produced by :func:`canonical_json` (plain ``json.loads``)."""
    return json.loads(text)
