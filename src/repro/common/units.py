"""Unit conversions between simulator cycles and wall-clock quantities.

The paper evaluates on an Intel Xeon E5-2650 running at 2.2 GHz, and all of
its bandwidth figures are derived from per-symbol periods expressed in cycles
(e.g. ``Ts = 5500`` cycles at one bit per symbol is 400 Kbps).  This module
centralises that arithmetic so that every experiment converts identically.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError

#: Clock frequency of the paper's evaluation platform (Intel Xeon E5-2650).
CPU_FREQUENCY_HZ: int = 2_200_000_000


def cycles_to_seconds(cycles: float, frequency_hz: float = CPU_FREQUENCY_HZ) -> float:
    """Convert a cycle count to seconds at the given clock frequency."""
    if frequency_hz <= 0:
        raise ConfigurationError(f"frequency must be positive, got {frequency_hz}")
    return cycles / frequency_hz


def cycles_to_us(cycles: float, frequency_hz: float = CPU_FREQUENCY_HZ) -> float:
    """Convert a cycle count to microseconds at the given clock frequency."""
    return cycles_to_seconds(cycles, frequency_hz) * 1e6


def seconds_to_cycles(seconds: float, frequency_hz: float = CPU_FREQUENCY_HZ) -> int:
    """Convert seconds to an integer cycle count (rounded to nearest)."""
    if frequency_hz <= 0:
        raise ConfigurationError(f"frequency must be positive, got {frequency_hz}")
    return round(seconds * frequency_hz)


def cycles_to_kbps(
    period_cycles: float,
    bits_per_symbol: int = 1,
    frequency_hz: float = CPU_FREQUENCY_HZ,
) -> float:
    """Transmission rate in Kbps for one symbol every ``period_cycles``.

    This is the mapping the paper uses implicitly throughout Section 5:
    ``Ts = 5500`` cycles at 2.2 GHz and one bit per symbol is 400 Kbps, and
    ``Ts = 1000`` with two-bit symbols is the headline 4400 Kbps.

    >>> round(cycles_to_kbps(5500))
    400
    >>> round(cycles_to_kbps(1000, bits_per_symbol=2))
    4400
    """
    if period_cycles <= 0:
        raise ConfigurationError(f"period must be positive, got {period_cycles}")
    if bits_per_symbol <= 0:
        raise ConfigurationError(
            f"bits_per_symbol must be positive, got {bits_per_symbol}"
        )
    bits_per_second = bits_per_symbol * frequency_hz / period_cycles
    return bits_per_second / 1000.0


def kbps_to_period_cycles(
    rate_kbps: float,
    bits_per_symbol: int = 1,
    frequency_hz: float = CPU_FREQUENCY_HZ,
) -> int:
    """Inverse of :func:`cycles_to_kbps`: the symbol period for a target rate.

    >>> kbps_to_period_cycles(400)
    5500
    """
    if rate_kbps <= 0:
        raise ConfigurationError(f"rate must be positive, got {rate_kbps}")
    if bits_per_symbol <= 0:
        raise ConfigurationError(
            f"bits_per_symbol must be positive, got {bits_per_symbol}"
        )
    return round(bits_per_symbol * frequency_hz / (rate_kbps * 1000.0))
