"""Shared utilities used across every subsystem of the reproduction.

The :mod:`repro.common` package deliberately has no dependency on any other
``repro`` subpackage so that it can be imported from anywhere without risking
import cycles.
"""

from repro.common.canonical import (
    canonical_digest,
    canonical_json,
    canonical_loads,
)
from repro.common.errors import (
    ConfigurationError,
    ProtocolError,
    ReproError,
    SimulationError,
)
from repro.common.units import (
    CPU_FREQUENCY_HZ,
    cycles_to_kbps,
    cycles_to_seconds,
    cycles_to_us,
    kbps_to_period_cycles,
    seconds_to_cycles,
)
from repro.common.bits import (
    bits_to_int,
    bits_to_string,
    chunk_bits,
    hamming_distance,
    int_to_bits,
    random_bits,
    string_to_bits,
)
from repro.common.rng import derive_rng, derive_seed, ensure_rng

__all__ = [
    "CPU_FREQUENCY_HZ",
    "ConfigurationError",
    "ProtocolError",
    "ReproError",
    "SimulationError",
    "bits_to_int",
    "bits_to_string",
    "canonical_digest",
    "canonical_json",
    "canonical_loads",
    "chunk_bits",
    "cycles_to_kbps",
    "cycles_to_seconds",
    "cycles_to_us",
    "derive_rng",
    "derive_seed",
    "ensure_rng",
    "hamming_distance",
    "int_to_bits",
    "kbps_to_period_cycles",
    "random_bits",
    "seconds_to_cycles",
    "string_to_bits",
]
