"""Deterministic random-number plumbing.

Every stochastic component of the simulator takes an explicit
:class:`random.Random` instance (or a seed).  These helpers normalise the two
forms and derive statistically independent child generators so that, e.g.,
the scheduler-noise stream does not perturb the message stream when one
parameter changes.
"""

from __future__ import annotations

import random
import zlib
from typing import Optional, Union

RngLike = Union[random.Random, int, None]


def ensure_rng(rng: RngLike) -> random.Random:
    """Coerce ``rng`` into a :class:`random.Random`.

    ``None`` produces a generator with a fixed default seed (0) — experiments
    in this library are reproducible by default, and callers wanting true
    variation must opt in by passing their own generator or seed.
    """
    if isinstance(rng, random.Random):
        return rng
    if rng is None:
        return random.Random(0)
    return random.Random(rng)


def derive_rng(parent: random.Random, label: str) -> random.Random:
    """Derive an independent child generator from ``parent`` and a label.

    The label keeps derivations stable across code motion: adding a new
    consumer with a new label does not shift the streams of existing ones the
    way sequential ``parent.random()`` draws would.  The label is mixed in
    with CRC-32 rather than ``hash()`` because string hashing is randomised
    per process (PYTHONHASHSEED) and every experiment here must reproduce
    bit-for-bit across runs.
    """
    return random.Random(derive_seed(parent, label))


def derive_seed(parent: RngLike, label: str) -> int:
    """Derive a child *seed* from ``parent`` and a label.

    Same mixing as :func:`derive_rng` (so ``Random(derive_seed(s, label))``
    equals ``derive_rng(Random(s), label)`` for a fresh seed ``s``), but
    returns the integer seed itself — what the parallel runner stores in
    task specs and manifests so that shard seeds are reproducible from the
    manifest alone, independent of worker scheduling order.

    Passing an ``int`` (or ``None``) derives from a fresh generator and is
    therefore order-independent; passing a ``Random`` instance draws from
    it and advances its state, exactly like :func:`derive_rng`.
    """
    parent_rng = ensure_rng(parent)
    return parent_rng.getrandbits(32) ^ zlib.crc32(label.encode("utf-8"))


def maybe_seeded(seed: Optional[int]) -> random.Random:
    """Return a generator seeded with ``seed``, or entropy-seeded if None."""
    if seed is None:
        return random.Random()
    return random.Random(seed)
