"""Exception hierarchy for the reproduction library.

All library-defined exceptions derive from :class:`ReproError` so that callers
can catch everything raised deliberately by this package with one clause while
letting genuine bugs (``TypeError`` and friends) propagate.
"""


class ReproError(Exception):
    """Base class of every exception raised deliberately by this library."""


class ConfigurationError(ReproError):
    """An object was configured with inconsistent or impossible parameters.

    Examples: a cache whose size is not ``num_sets * associativity *
    line_size``, a replacement policy asked to manage zero ways, or a channel
    asked to encode more bits per symbol than the cache associativity allows.
    """


class ManifestError(ConfigurationError):
    """A persisted run manifest could not be read back.

    Raised for truncated or otherwise corrupt JSON (an interrupted write,
    a partially synced disk) and for files that parse but are not run
    manifests.  Subclasses :class:`ConfigurationError` so existing
    ``except ConfigurationError`` callers keep working.
    """


class SimulationError(ReproError):
    """The simulator reached a state that the model cannot represent.

    This signals an internal inconsistency (for instance an eviction from an
    empty set) rather than a user mistake; seeing it in user code is a bug in
    the library.
    """


class ProtocolError(ReproError):
    """A covert/side-channel protocol was driven incorrectly.

    Raised for malformed messages (non-binary symbols, messages that do not
    fit the configured symbol width) and for decode attempts on channels that
    were never calibrated.
    """
