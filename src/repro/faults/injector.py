"""Applying a :class:`FaultSchedule` to a running channel.

Three injection surfaces:

* **Program-level** — descheduling plans handed to the WB sender and
  receiver programs (they yield a ``Delay`` at the scheduled symbol, and
  because both programs chain period boundaries off actual wake-up
  times, the delay permanently shifts that party's symbol grid — the
  symbol-slip mechanic), plus :class:`CoRunnerProgram`, a third hardware
  thread that fires bursts of set-conflicting traffic.
* **Measurement-level** — :func:`apply_measurement_faults` perturbs the
  receiver's ``(tsc, latency)`` sample stream after the run: drift
  offsets shift latencies away from the calibrated thresholds, dropped
  probe windows delete samples, duplicated windows repeat them.
* **Telemetry** — :func:`emit_fault_events` publishes one
  ``EventKind.FAULT`` event per injected fault on the hierarchy's bus so
  detectors and trace recorders see the disturbance alongside the cache
  traffic it caused.  Events are *emitted*, never ``mark()``-ed: marks
  reset windowed subscribers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.cpu.ops import Load, SpinUntil, Store
from repro.cpu.thread import OpGenerator, Program
from repro.faults.schedule import FaultSchedule
from repro.telemetry.bus import TelemetryBus
from repro.telemetry.events import CacheEvent, EventKind

#: ``CacheEvent.address`` payload for FAULT events (the event vocabulary
#: has one FAULT kind; the fault class rides in the address field).
FAULT_SENDER_DESCHED = 0
FAULT_RECEIVER_DESCHED = 1
FAULT_DROPPED_PROBE = 2
FAULT_DUPLICATED_PROBE = 3
FAULT_CORUNNER_BURST = 4

#: Stats/event owner id for the interfering co-runner thread.
CORUNNER_TID = 2


def desched_plan(schedule: FaultSchedule, party: str) -> Dict[int, int]:
    """``{symbol_index: delay_cycles}`` for one party's program."""
    if party == "sender":
        events = schedule.sender_desched
    elif party == "receiver":
        events = schedule.receiver_desched
    else:
        raise ConfigurationError(f"unknown desched party {party!r}")
    return dict(events)


@dataclass
class CoRunnerProgram(Program):
    """Bursty interfering traffic on the channel's target set.

    Each burst spins until its scheduled start and then issues
    ``accesses`` set-conflicting operations, every fourth one a store —
    loads evict replacement-set lines (false high latencies), stores
    plant spurious dirty states (false low-to-high transitions).
    """

    lines: Sequence[int]
    bursts: Sequence[Tuple[int, int]]

    def __post_init__(self) -> None:
        if not self.lines:
            raise ConfigurationError("co-runner needs at least one conflict line")

    def run(self) -> OpGenerator:
        # Warm the lines so bursts measure interference, not DRAM fills.
        for line in self.lines:
            yield Load(line)
        for start, accesses in sorted(self.bursts):
            yield SpinUntil(start)
            for k in range(accesses):
                address = self.lines[k % len(self.lines)]
                if k % 4 == 0:
                    yield Store(address)
                else:
                    yield Load(address)


def apply_measurement_faults(
    samples: Sequence[Tuple[int, int]], schedule: FaultSchedule
) -> List[Tuple[int, int]]:
    """Perturb the receiver's sample stream per the schedule.

    Order matters and is fixed: drift first (indexed by the *measured*
    slot), then drops (the slot never yields a sample), then
    duplications (the slot yields two).  The output stream is what the
    decoder sees; its length differs from the input by
    ``duplicates - drops``.
    """
    dropped = set(schedule.dropped_slots)
    duplicated = set(schedule.duplicated_slots)
    out: List[Tuple[int, int]] = []
    for slot, (tsc, latency) in enumerate(samples):
        if slot in dropped:
            continue
        drift = schedule.drift_offsets[slot] if slot < len(schedule.drift_offsets) else 0
        sample = (tsc, latency + drift)
        out.append(sample)
        if slot in duplicated:
            out.append(sample)
    return out


def emit_fault_events(
    bus: TelemetryBus, schedule: FaultSchedule, target_set: int
) -> int:
    """Publish the schedule's faults as FAULT events; returns the count.

    The event timestamp is the fault's nominal position on the protocol
    timeline (symbol window start for desched/probe faults, burst start
    for co-runner bursts); ``owner`` is the disturbed thread.
    """
    if not bus.enabled:
        return 0

    def at(symbol: int) -> int:
        return schedule.start_time + symbol * schedule.period

    events: List[CacheEvent] = []

    def add(time: int, owner: int, fault_class: int) -> None:
        events.append(
            CacheEvent(
                time=time,
                kind=int(EventKind.FAULT),
                level=0,
                set_index=target_set,
                owner=owner,
                address=fault_class,
                write=False,
                dirty=False,
            )
        )

    for symbol, _ in schedule.sender_desched:
        add(at(symbol), 0, FAULT_SENDER_DESCHED)
    for symbol, _ in schedule.receiver_desched:
        add(at(symbol), 1, FAULT_RECEIVER_DESCHED)
    for slot in schedule.dropped_slots:
        add(at(slot), 1, FAULT_DROPPED_PROBE)
    for slot in schedule.duplicated_slots:
        add(at(slot), 1, FAULT_DUPLICATED_PROBE)
    for start, _ in schedule.corunner_bursts:
        add(start, CORUNNER_TID, FAULT_CORUNNER_BURST)

    for event in sorted(events, key=lambda e: (e.time, e.address)):
        bus.emit(event)
    return len(events)
