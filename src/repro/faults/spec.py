"""Fault model specification for deterministic chaos runs.

The paper's capacity numbers (Section 6) assume a cooperative SMT
pairing; real deployments of this class of channel fight preemption,
interfering co-runners and thermal/frequency drift of the calibrated
latency bands.  :class:`FaultSpec` names those disturbance classes with
explicit per-symbol rates and magnitudes so the whole fault regime is a
single value that can be scaled (:meth:`FaultSpec.scaled`), stored in a
manifest, and reproduced bit-for-bit from a seed.

Fault classes
-------------

``desched``
    The OS deschedules the sender or the receiver for a fraction of a
    period or several whole periods.  Because both parties chain their
    period boundaries off the *actual* time they wake up, a long
    descheduling window permanently shifts that party's symbol grid —
    the receiver skips sender symbols (deletions) or re-samples one
    symbol twice (insertions).  This is the symbol-slip mechanism the
    framing layer must resynchronise around.
``drop`` / ``duplicate``
    A receiver probe window that never produces a measurement (timer
    coalescing, an interrupt eating the window) or that fires twice.
    Applied to the measured sample stream, so the decoded bit stream
    loses or repeats bits.
``drift``
    Slow monotone drift of the measured latencies away from the
    calibrated thresholds (DVFS, thermal throttling).  The raw decoder's
    0/1 threshold sits ~5.5 cycles above the clean-traversal median
    (half the L1 write-back penalty), so a drift beyond that flips every
    encoded 0 into a 1 unless the receiver recalibrates online.
``corunner``
    Bursts of set-conflicting traffic from a third hardware thread
    (loads plus the occasional store), evicting replacement-set lines
    and planting spurious dirty states.
``worker_crash`` / ``worker_hang``
    Runner-level chaos (a worker process dying or wedging), consumed by
    :mod:`repro.faults.chaos` and by the service fleet
    (:mod:`repro.faults.fleet`) rather than the channel simulator.
``heartbeat_stale`` / ``upload_drop`` / ``store_slow``
    Service-level chaos for the worker fleet's lease protocol
    (:mod:`repro.service.fleet`): a worker whose heartbeats stop while
    it still holds a lease, a computed result whose upload never
    arrives, and a store interaction that stalls for
    ``store_slow_seconds`` before completing.  Materialised per
    ``(job key, lease attempt)`` by
    :func:`repro.faults.fleet.fleet_fault_decision`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.common.errors import ConfigurationError

#: Rates are probabilities and must stay in [0, 1] after scaling.
_RATE_FIELDS = (
    "desched_rate",
    "drop_rate",
    "duplicate_rate",
    "corunner_rate",
    "worker_crash_rate",
    "worker_hang_rate",
    "heartbeat_stale_rate",
    "upload_drop_rate",
    "store_slow_rate",
)

#: Fields added for the service fleet (PR 9).  They default to "off" and
#: are omitted from :meth:`FaultSpec.to_dict` at their defaults so every
#: canonical form hashed before they existed — scenario KEYS.json pins,
#: golden results, cache keys — stays byte-identical.
_FLEET_FIELDS = (
    "heartbeat_stale_rate",
    "upload_drop_rate",
    "store_slow_rate",
    "store_slow_seconds",
)


@dataclass(frozen=True)
class FaultSpec:
    """Per-class fault rates and magnitudes (all deterministic knobs).

    The defaults describe intensity 1.0 of the ``fault_tolerance``
    sweep: every class present but none overwhelming, so scaling up
    degrades the raw channel smoothly instead of cliff-dropping.
    """

    #: Probability per symbol per party of a descheduling window.
    desched_rate: float = 0.01
    #: Descheduling window length, uniform in periods.
    desched_min_periods: float = 0.6
    desched_max_periods: float = 2.4
    #: Probability per probe window of the measurement being lost.
    drop_rate: float = 0.01
    #: Probability per probe window of the measurement firing twice.
    duplicate_rate: float = 0.01
    #: Monotone latency drift added per symbol slot (cycles).
    drift_cycles_per_symbol: float = 0.12
    #: Drift saturates here (the machine settles at a new operating point).
    drift_limit_cycles: float = 15.0
    #: Probability per symbol of a co-runner burst landing in its window.
    corunner_rate: float = 0.02
    #: Accesses per co-runner burst (every fourth one a store).
    corunner_accesses: int = 16
    #: Runner chaos: probability a worker crashes / hangs on first attempt.
    worker_crash_rate: float = 0.0
    worker_hang_rate: float = 0.0
    #: Fleet chaos: probability per lease attempt that the worker keeps
    #: computing but its heartbeats stop (partition; lease expires).
    heartbeat_stale_rate: float = 0.0
    #: Fleet chaos: probability per lease attempt that the computed
    #: result's upload never arrives.
    upload_drop_rate: float = 0.0
    #: Fleet chaos: probability per lease attempt that store interaction
    #: stalls for ``store_slow_seconds`` before completing normally.
    store_slow_rate: float = 0.0
    #: Magnitude of a ``store_slow`` stall, in wall-clock seconds.
    store_slow_seconds: float = 0.5

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be a probability in [0, 1], got {value}"
                )
        if self.desched_min_periods < 0 or (
            self.desched_max_periods < self.desched_min_periods
        ):
            raise ConfigurationError(
                "desched window must satisfy 0 <= min <= max, got "
                f"[{self.desched_min_periods}, {self.desched_max_periods}]"
            )
        if self.drift_cycles_per_symbol < 0 or self.drift_limit_cycles < 0:
            raise ConfigurationError("drift parameters must be non-negative")
        if self.corunner_accesses <= 0:
            raise ConfigurationError(
                f"corunner_accesses must be positive, got {self.corunner_accesses}"
            )
        if self.store_slow_seconds < 0:
            raise ConfigurationError(
                f"store_slow_seconds must be non-negative, got "
                f"{self.store_slow_seconds}"
            )

    def scaled(self, intensity: float) -> "FaultSpec":
        """This spec at a different fault intensity.

        Rates and the drift slope scale linearly (rates clamp at 1.0);
        event *magnitudes* — window lengths, burst sizes, the drift
        ceiling — stay fixed, so intensity means "faults happen more
        often / drift accumulates faster", not "each fault is bigger".
        Intensity 0 is the fault-free baseline.
        """
        if intensity < 0:
            raise ConfigurationError(
                f"fault intensity must be non-negative, got {intensity}"
            )
        changes = {
            name: min(1.0, getattr(self, name) * intensity)
            for name in _RATE_FIELDS
        }
        changes["drift_cycles_per_symbol"] = (
            self.drift_cycles_per_symbol * intensity
        )
        return replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-ready form (stored in fault summaries and manifests).

        Fleet-era fields are omitted while at their defaults: the dict
        feeds canonical JSON that is hashed into scenario keys and
        pinned in ``scenarios/KEYS.json``, so pre-existing specs must
        keep producing byte-identical canonical forms.
        """
        defaults = {f.name: f.default for f in fields(self)}
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        for name in _FLEET_FIELDS:
            if data[name] == defaults[name]:
                del data[name]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        """Inverse of :meth:`to_dict`; rejects unknown fields loudly."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"fault spec must be a JSON object, got {type(data).__name__}"
            )
        valid = {f.name for f in fields(cls)}
        unknown = set(data) - valid
        if unknown:
            raise ConfigurationError(
                f"unknown fault spec field(s): {', '.join(sorted(unknown))}"
            )
        return cls(**data)


#: The reference fault regime used by the ``fault_tolerance`` experiment.
DEFAULT_FAULT_SPEC = FaultSpec()
