"""Deterministic fault schedules.

A :class:`FaultSchedule` is the fully materialised list of fault events
for one transmission: which symbols each party is descheduled on (and
for how long), which probe windows drop or duplicate, the per-slot
latency drift, and where co-runner bursts land.  It is a pure function
of ``(spec, seed, geometry)`` — every fault class draws from its own
labelled child generator (:func:`repro.common.rng.derive_rng`), so
changing one class's rate never perturbs another class's event stream,
and the same seed reproduces the same faults on both simulation engines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Dict, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_rng, ensure_rng
from repro.faults.spec import FaultSpec


@dataclass(frozen=True)
class FaultSchedule:
    """Materialised fault events for one transmission."""

    spec: FaultSpec
    seed: int
    #: Symbols the sender transmits and probe slots the receiver samples
    #: (slots exceed symbols by the alignment slack).
    num_symbols: int
    num_slots: int
    period: int
    start_time: int
    #: Cumulative symbols already transmitted before this schedule (ARQ
    #: rounds continue the drift ramp instead of restarting it).
    symbol_origin: int
    #: ``(symbol_index, delay_cycles)`` descheduling windows per party.
    sender_desched: Tuple[Tuple[int, int], ...]
    receiver_desched: Tuple[Tuple[int, int], ...]
    #: Probe-slot indices whose measurement is lost / fires twice.
    dropped_slots: Tuple[int, ...]
    duplicated_slots: Tuple[int, ...]
    #: Additive latency offset per probe slot (cycles, rounded).
    drift_offsets: Tuple[int, ...]
    #: ``(start_cycle, accesses)`` co-runner bursts.
    corunner_bursts: Tuple[Tuple[int, int], ...]

    @property
    def empty(self) -> bool:
        """True when no fault of any class was scheduled."""
        return not (
            self.sender_desched
            or self.receiver_desched
            or self.dropped_slots
            or self.duplicated_slots
            or self.corunner_bursts
            or any(self.drift_offsets)
        )

    def summary(self) -> Dict[str, object]:
        """JSON-ready event counts (folded into results and manifests)."""
        return {
            "seed": self.seed,
            "sender_desched": len(self.sender_desched),
            "receiver_desched": len(self.receiver_desched),
            "dropped_slots": len(self.dropped_slots),
            "duplicated_slots": len(self.duplicated_slots),
            "corunner_bursts": len(self.corunner_bursts),
            "max_drift_cycles": max(self.drift_offsets, default=0),
        }


def _bernoulli_slots(rng: random.Random, rate: float, count: int) -> Tuple[int, ...]:
    """Indices in ``range(count)`` selected independently at ``rate``.

    Always draws ``count`` variates so the selected set for one class is
    invariant under changes to any *other* class's rate.
    """
    return tuple(i for i in range(count) if rng.random() < rate)


def build_fault_schedule(
    spec: FaultSpec,
    seed: int,
    num_symbols: int,
    period: int,
    start_time: int,
    num_slots: Optional[int] = None,
    symbol_origin: int = 0,
) -> FaultSchedule:
    """Materialise the fault events for one transmission.

    ``seed`` should be derived from the channel seed with a per-purpose
    label (e.g. ``derive_seed(config.seed, "faults/round0")``) so fault
    randomness never shares a stream with the simulator's own RNG.
    """
    if num_symbols <= 0:
        raise ConfigurationError(
            f"num_symbols must be positive, got {num_symbols}"
        )
    if period <= 0:
        raise ConfigurationError(f"period must be positive, got {period}")
    if symbol_origin < 0:
        raise ConfigurationError(
            f"symbol_origin must be non-negative, got {symbol_origin}"
        )
    slots = num_symbols if num_slots is None else num_slots
    if slots < num_symbols:
        raise ConfigurationError(
            f"num_slots {slots} smaller than num_symbols {num_symbols}"
        )
    root = ensure_rng(seed)
    # One labelled child stream per fault class (order-independent).
    rng_sender = derive_rng(root, "desched/sender")
    rng_receiver = derive_rng(root, "desched/receiver")
    rng_drop = derive_rng(root, "drop")
    rng_duplicate = derive_rng(root, "duplicate")
    rng_corunner = derive_rng(root, "corunner")

    def desched(rng: random.Random) -> Tuple[Tuple[int, int], ...]:
        events = []
        for symbol in range(num_symbols):
            hit = rng.random() < spec.desched_rate
            length = rng.uniform(spec.desched_min_periods, spec.desched_max_periods)
            if hit:
                events.append((symbol, max(1, int(length * period))))
        return tuple(events)

    bursts = []
    for symbol in range(num_symbols):
        hit = rng_corunner.random() < spec.corunner_rate
        offset = rng_corunner.random()
        if hit:
            bursts.append(
                (start_time + symbol * period + int(offset * period),
                 spec.corunner_accesses)
            )

    drift = tuple(
        int(round(min(
            spec.drift_limit_cycles,
            spec.drift_cycles_per_symbol * (symbol_origin + slot),
        )))
        for slot in range(slots)
    )

    return FaultSchedule(
        spec=spec,
        seed=seed,
        num_symbols=num_symbols,
        num_slots=slots,
        period=period,
        start_time=start_time,
        symbol_origin=symbol_origin,
        sender_desched=desched(rng_sender),
        receiver_desched=desched(rng_receiver),
        dropped_slots=_bernoulli_slots(rng_drop, spec.drop_rate, slots),
        duplicated_slots=_bernoulli_slots(rng_duplicate, spec.duplicate_rate, slots),
        drift_offsets=drift,
        corunner_bursts=tuple(bursts),
    )


def schedules_equal(first: FaultSchedule, second: FaultSchedule) -> bool:
    """Field-by-field equality (determinism assertions in tests)."""
    return all(
        getattr(first, f.name) == getattr(second, f.name)
        for f in fields(FaultSchedule)
    )
