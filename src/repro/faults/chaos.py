"""Runner-level chaos: injected worker crashes and hangs.

The channel-level faults live in :mod:`repro.faults.schedule`; this
module covers the *infrastructure* fault classes — a worker process
dying mid-task or wedging until the timeout — used by the resume tests
and the CI fault-injection smoke job.

The entry points here are importable by dotted path (the runner's
:class:`~repro.runner.sharding.TaskSpec` convention, which keeps task
specs picklable), and they coordinate "fail exactly once" across
process boundaries through a marker file named in an environment
variable, exactly like the crash-once fixture in ``tests``:

* ``REPRO_CHAOS_MARKER`` — path of the marker file.  While the file
  does **not** exist, the first invocation creates it and then injects
  its fault; every later invocation (the retry, or other tasks) runs
  normally.  Unset means no chaos.
* ``REPRO_CHAOS_TASK`` — optionally restrict the chaos to one task id.
"""

from __future__ import annotations

import os
import time
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported lazily at run time: repro.experiments
    # imports the channel stack, which imports repro.faults — a cycle.
    from repro.experiments.profiles import ProfileLike

#: Environment contract shared with the CI smoke job and the tests.
CHAOS_MARKER_ENV = "REPRO_CHAOS_MARKER"
CHAOS_TASK_ENV = "REPRO_CHAOS_TASK"

#: Exit status of an injected crash — distinct from real failure codes so
#: a chaos crash is recognisable in pool logs and manifests.
CHAOS_CRASH_EXIT = 57

#: An injected hang sleeps this long (seconds); pair it with a shorter
#: ``--timeout`` so the pool's timeout path fires.
CHAOS_HANG_SECONDS = 3600.0


def _chaos_armed(experiment_id: str) -> bool:
    """True when this invocation should inject its fault (and disarm)."""
    marker = os.environ.get(CHAOS_MARKER_ENV)
    if not marker:
        return False
    only_task = os.environ.get(CHAOS_TASK_ENV)
    if only_task and only_task != experiment_id:
        return False
    if os.path.exists(marker):
        return False
    with open(marker, "w") as handle:
        handle.write(experiment_id)
    return True


def crash_once_then_run(profile: "ProfileLike", seed: int, experiment_id: str):
    """Die with :data:`CHAOS_CRASH_EXIT` on the first armed call, then
    behave exactly like :func:`repro.experiments.registry.run_experiment`.

    Declares ``experiment_id``, so the pool's entry-point resolution
    binds the task's experiment id (see
    :func:`repro.runner.pool.resolve_entry_point`).
    """
    from repro.experiments.registry import run_experiment

    if _chaos_armed(experiment_id):
        os._exit(CHAOS_CRASH_EXIT)
    return run_experiment(experiment_id, profile=profile, seed=seed)


def hang_once_then_run(profile: "ProfileLike", seed: int, experiment_id: str):
    """Wedge (until the pool timeout kills us) on the first armed call."""
    from repro.experiments.registry import run_experiment

    if _chaos_armed(experiment_id):
        time.sleep(CHAOS_HANG_SECONDS)
    return run_experiment(experiment_id, profile=profile, seed=seed)
