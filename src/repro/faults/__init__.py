"""Seeded, deterministic fault injection (``repro.faults``).

Perturbs a running channel and the simulator around it — descheduling
windows, co-runner bursts, threshold drift, dropped/duplicated probe
windows — and the runner itself (worker crashes and hangs).  Everything
is a pure function of a seed: the ``fault_tolerance`` experiment and the
parity suite rely on the same seed reproducing the same faults on both
simulation engines.

See DESIGN.md ("Fault model and the self-healing protocol") for the
model and :mod:`repro.channels.wb.robust` for the protocol stack that
survives it.
"""

from repro.faults.chaos import (
    CHAOS_CRASH_EXIT,
    CHAOS_MARKER_ENV,
    CHAOS_TASK_ENV,
    crash_once_then_run,
    hang_once_then_run,
)
from repro.faults.fleet import (
    DEFAULT_FLEET_FAULT_SPEC,
    FLEET_FAULT_CLASSES,
    FleetFaultDecision,
    fleet_fault_decision,
)
from repro.faults.injector import (
    CORUNNER_TID,
    CoRunnerProgram,
    apply_measurement_faults,
    desched_plan,
    emit_fault_events,
)
from repro.faults.schedule import FaultSchedule, build_fault_schedule, schedules_equal
from repro.faults.spec import DEFAULT_FAULT_SPEC, FaultSpec

__all__ = [
    "CHAOS_CRASH_EXIT",
    "CHAOS_MARKER_ENV",
    "CHAOS_TASK_ENV",
    "CORUNNER_TID",
    "CoRunnerProgram",
    "DEFAULT_FAULT_SPEC",
    "DEFAULT_FLEET_FAULT_SPEC",
    "FLEET_FAULT_CLASSES",
    "FaultSchedule",
    "FaultSpec",
    "FleetFaultDecision",
    "apply_measurement_faults",
    "build_fault_schedule",
    "fleet_fault_decision",
    "crash_once_then_run",
    "desched_plan",
    "emit_fault_events",
    "hang_once_then_run",
    "schedules_equal",
]
