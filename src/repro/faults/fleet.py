"""Service-level fault materialisation for the worker fleet.

The fleet's chaos classes — a worker crashing or hanging mid-lease, a
heartbeat stream going stale while the computation continues, a result
upload that never arrives, a store interaction that stalls — are
materialised here the same way :mod:`repro.faults.schedule` materialises
channel faults: as a pure function of ``(spec, seed)``.  The decision
for one lease attempt depends only on the job's content-address key and
the attempt number, never on wall-clock time or worker identity, so a
chaos campaign replays bit-identically regardless of how many workers
run it, in what order they claim jobs, or how the OS schedules them.

Each fault class draws from its own labelled child RNG stream (the
:func:`repro.common.rng.derive_rng` discipline), so changing one class's
rate never perturbs another class's stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import derive_rng, derive_seed, ensure_rng
from repro.faults.spec import FaultSpec

#: Fault classes a fleet decision can select, in precedence order: a
#: crash pre-empts a hang pre-empts a stale heartbeat, and so on.  At
#: most one class fires per lease attempt — overlapping faults on one
#: attempt are indistinguishable from the strongest of them (the lease
#: expires either way), so stacking them adds noise, not coverage.
FLEET_FAULT_CLASSES = (
    "crash",
    "hang",
    "stale_heartbeat",
    "drop_upload",
    "slow_store",
)


@dataclass(frozen=True)
class FleetFaultDecision:
    """What (if anything) goes wrong during one lease attempt.

    At most one of the boolean flags is set (see
    :data:`FLEET_FAULT_CLASSES` for the precedence).  ``slow_store``
    carries its stall magnitude so the worker does not need the spec.
    """

    crash: bool = False
    hang: bool = False
    stale_heartbeat: bool = False
    drop_upload: bool = False
    slow_store: bool = False
    store_slow_seconds: float = 0.0

    @property
    def fault(self) -> str | None:
        """Name of the selected class, or ``None`` for a clean attempt."""
        for name, flag in (
            ("crash", self.crash),
            ("hang", self.hang),
            ("stale_heartbeat", self.stale_heartbeat),
            ("drop_upload", self.drop_upload),
            ("slow_store", self.slow_store),
        ):
            if flag:
                return name
        return None

    @property
    def loses_lease(self) -> bool:
        """True when this attempt cannot complete its lease (the
        supervisor must expire it and re-dispatch)."""
        return self.crash or self.hang or self.stale_heartbeat or self.drop_upload


def fleet_fault_decision(
    spec: FaultSpec, seed: int, key: str, attempt: int
) -> FleetFaultDecision:
    """Materialise the fault decision for one ``(job, lease attempt)``.

    ``key`` is the job's content-address (the lease key) and ``attempt``
    the 1-based lease attempt number.  Every class always draws exactly
    one variate from its own child stream, so the decision for attempt
    ``n`` of one job is independent of every other job and attempt —
    the property the chaos suite leans on to prove the invariant holds
    per job rather than per run ordering.
    """
    root = ensure_rng(derive_seed(seed, f"fleet/{key}#a{attempt}"))
    draws = {
        name: derive_rng(root, name).random() for name in FLEET_FAULT_CLASSES
    }
    rates = {
        "crash": spec.worker_crash_rate,
        "hang": spec.worker_hang_rate,
        "stale_heartbeat": spec.heartbeat_stale_rate,
        "drop_upload": spec.upload_drop_rate,
        "slow_store": spec.store_slow_rate,
    }
    for name in FLEET_FAULT_CLASSES:
        if draws[name] < rates[name]:
            return FleetFaultDecision(
                **{name: True},
                store_slow_seconds=(
                    spec.store_slow_seconds if name == "slow_store" else 0.0
                ),
            )
    return FleetFaultDecision()


#: Reference fleet chaos regime for the chaos suite and the CI fleet
#: job: every class present, tuned so that at intensity 1.0 roughly a
#: third of first lease attempts fail but a run of ``dead_letter_after``
#: consecutive faulty attempts on one job stays (very) unlikely.
DEFAULT_FLEET_FAULT_SPEC = FaultSpec(
    worker_crash_rate=0.12,
    worker_hang_rate=0.06,
    heartbeat_stale_rate=0.06,
    upload_drop_rate=0.12,
    store_slow_rate=0.10,
    store_slow_seconds=0.05,
)
