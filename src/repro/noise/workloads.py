"""Benign co-runner workloads for the stealthiness experiments (Table 6).

The paper compares the WB sender's performance-counter profile against a
g++ compile sharing the core.  A compiler's cache signature is a mix of
phases: pointer-heavy walks over ASTs/symbol tables (working set larger
than L2, scattered), streaming passes over token buffers, and hot-loop
phases that fit in L1.  :class:`CompilerLikeWorkload` interleaves those
three phases; the two simpler workloads are exposed for composing other
scenarios and for tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng
from repro.cpu.ops import Delay, Load, Store
from repro.cpu.thread import OpGenerator, Program
from repro.mem.address_space import AddressSpace


@dataclass
class StreamingWorkload(Program):
    """Sequential sweeps over a buffer (memcpy/tokeniser-like traffic)."""

    space: AddressSpace
    buffer_bytes: int = 1 << 20
    accesses: int = 20000
    line_size: int = 64
    store_fraction: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.buffer_bytes < self.line_size:
            raise ConfigurationError("buffer smaller than one line")
        if self.accesses <= 0:
            raise ConfigurationError("accesses must be positive")
        self.base = self.space.allocate_buffer(self.buffer_bytes)

    def run(self) -> OpGenerator:
        rng = ensure_rng(self.seed)
        lines = self.buffer_bytes // self.line_size
        position = 0
        for _ in range(self.accesses):
            address = self.base + (position % lines) * self.line_size
            if rng.random() < self.store_fraction:
                yield Store(address)
            else:
                yield Load(address)
            position += 1


@dataclass
class PointerChaseWorkload(Program):
    """Random-order walks over a large buffer (AST/hash-table traffic)."""

    space: AddressSpace
    buffer_bytes: int = 4 << 20
    accesses: int = 20000
    line_size: int = 64
    store_fraction: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.buffer_bytes < self.line_size:
            raise ConfigurationError("buffer smaller than one line")
        if self.accesses <= 0:
            raise ConfigurationError("accesses must be positive")
        self.base = self.space.allocate_buffer(self.buffer_bytes)

    def run(self) -> OpGenerator:
        rng = ensure_rng(self.seed)
        lines = self.buffer_bytes // self.line_size
        for _ in range(self.accesses):
            address = self.base + rng.randrange(lines) * self.line_size
            if rng.random() < self.store_fraction:
                yield Store(address)
            else:
                yield Load(address)


@dataclass
class CompilerLikeWorkload(Program):
    """g++-like phase mix: hot loops, streaming sweeps, pointer walks.

    Calibration target (paper Table 6, "sender & g++" column): visible L1
    pressure on the co-resident thread, L2 miss rate in the tens of
    percent for its own accesses, and enough LLC traffic to register.
    """

    space: AddressSpace
    total_accesses: int = 40000
    phase_length: int = 600
    seed: int = 0
    line_size: int = 64

    def __post_init__(self) -> None:
        if self.total_accesses <= 0:
            raise ConfigurationError("total_accesses must be positive")
        if self.phase_length <= 0:
            raise ConfigurationError("phase_length must be positive")
        # Hot set: fits in L1. Stream: L2-sized. Heap: larger than L2.
        self.hot_base = self.space.allocate_buffer(16 * 1024)
        self.stream_base = self.space.allocate_buffer(192 * 1024)
        self.heap_base = self.space.allocate_buffer(2 << 20)

    def run(self) -> OpGenerator:
        rng = ensure_rng(self.seed)
        hot_lines = (16 * 1024) // self.line_size
        stream_lines = (192 * 1024) // self.line_size
        heap_lines = (2 << 20) // self.line_size
        issued = 0
        stream_pos = 0
        while issued < self.total_accesses:
            phase = rng.choice(("hot", "hot", "stream", "heap"))
            for _ in range(min(self.phase_length, self.total_accesses - issued)):
                if phase == "hot":
                    address = self.hot_base + rng.randrange(hot_lines) * self.line_size
                    write = rng.random() < 0.35
                elif phase == "stream":
                    address = (
                        self.stream_base
                        + (stream_pos % stream_lines) * self.line_size
                    )
                    stream_pos += 1
                    write = rng.random() < 0.2
                else:
                    address = self.heap_base + rng.randrange(heap_lines) * self.line_size
                    write = rng.random() < 0.15
                if write:
                    yield Store(address)
                else:
                    yield Load(address)
                issued += 1
            # Compute burst between phases (register-file work).
            yield Delay(rng.randrange(50, 300))


def drain(program: Program) -> List[object]:
    """Run a workload generator standalone (test helper, no core needed)."""
    return list(program.run())
