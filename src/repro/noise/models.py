"""Target-set noise injection (Figure 9's "noise cache line").

A :class:`TargetSetNoiseProgram` runs as an extra hardware thread and
periodically touches lines mapping to the channel's target set.  Loads
insert *clean* lines — harmless to the WB channel (the dirty count is
unchanged) but fatal to identity-based channels whose primed lines get
evicted.  With ``store_fraction > 0`` some touches are stores, which *do*
perturb the WB channel (the paper concedes this case but argues such
conflicting stores are rare).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng
from repro.cpu.ops import Load, SpinUntil, Store
from repro.cpu.thread import OpGenerator, Program


@dataclass
class NoiseConfig:
    """Shape of the injected noise traffic."""

    #: Mean cycles between touches of the target set.
    mean_interval_cycles: float = 20000.0
    #: Fraction of touches that are stores instead of loads.
    store_fraction: float = 0.0
    #: How many distinct noise lines to rotate through.
    distinct_lines: int = 2
    #: When to stop (the channel run's expected end, in cycles).
    duration_cycles: int = 2_000_000

    def __post_init__(self) -> None:
        if self.mean_interval_cycles <= 0:
            raise ConfigurationError("mean_interval_cycles must be positive")
        if not 0.0 <= self.store_fraction <= 1.0:
            raise ConfigurationError(
                f"store_fraction must be in [0, 1], got {self.store_fraction}"
            )
        if self.distinct_lines <= 0:
            raise ConfigurationError("distinct_lines must be positive")
        if self.duration_cycles <= 0:
            raise ConfigurationError("duration_cycles must be positive")


@dataclass
class TargetSetNoiseProgram(Program):
    """Touches conflict lines of the target set at random intervals."""

    lines: Sequence[int]
    config: NoiseConfig
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.lines:
            raise ConfigurationError("noise program needs at least one line")
        #: Timestamps at which noise touches were issued (diagnostics).
        self.touch_times: List[float] = []

    def run(self) -> OpGenerator:
        rng: random.Random = ensure_rng(self.seed)
        now = 0.0
        while True:
            now += rng.expovariate(1.0 / self.config.mean_interval_cycles)
            if now >= self.config.duration_cycles:
                return
            actual = yield SpinUntil(int(now))
            line = self.lines[rng.randrange(len(self.lines))]
            if rng.random() < self.config.store_fraction:
                yield Store(line)
            else:
                yield Load(line)
            self.touch_times.append(float(actual))
