"""Noise processes: cache polluters and benign co-runner workloads.

Two distinct roles from the paper:

* Section 6 / Figure 9 — *noise cache lines*: a third process whose loads
  (or, rarely, stores) land in the channel's target set.  The WB channel
  shrugs off noise loads while the LRU and Prime+Probe channels decode
  them as false bits; :class:`TargetSetNoiseProgram` injects exactly this.
* Section 7 / Table 6 — a *benign co-runner* (the paper uses g++) whose
  ordinary cache pressure the WB sender is compared against for
  stealthiness; :class:`CompilerLikeWorkload` synthesises that pressure.
"""

from repro.noise.models import NoiseConfig, TargetSetNoiseProgram
from repro.noise.workloads import (
    CompilerLikeWorkload,
    PointerChaseWorkload,
    StreamingWorkload,
)

__all__ = [
    "CompilerLikeWorkload",
    "NoiseConfig",
    "PointerChaseWorkload",
    "StreamingWorkload",
    "TargetSetNoiseProgram",
]
