"""Fleet-wide detection fusion and closed-loop defense orchestration.

The interactive form of the paper's §7 stealth result: instead of
scoring a finished run, detector scores stream *live* into a
:class:`~repro.orchestration.aggregator.FleetAggregator` (k-of-n fused
decision across per-job / per-core sources), and a
:class:`~repro.orchestration.responder.DefenseResponder` flips the
victim hierarchy to a :mod:`repro.defenses` defense the moment the fused
alarm fires — at a deterministic event boundary, so the whole
attacker-vs-defender exchange is bit-replayable.

Process-wide alarm/flip counters for the service's ``/metrics`` and
``/healthz`` live in :mod:`repro.orchestration.counters`.
"""

from repro.orchestration.aggregator import AlarmEvent, FleetAggregator
from repro.orchestration.counters import (
    live_snapshots,
    orchestration_counters,
    record_alarm,
    record_flip,
    register_live,
    reset_counters,
)
from repro.orchestration.responder import DefenseResponder

__all__ = [
    "AlarmEvent",
    "DefenseResponder",
    "FleetAggregator",
    "live_snapshots",
    "orchestration_counters",
    "record_alarm",
    "record_flip",
    "register_live",
    "reset_counters",
]
