"""Fleet-wide detection fusion: k-of-n score sources over a window.

A :class:`FleetAggregator` fuses the live score streams of many detector
*sources* — one source per (job, core, detector) deployment, e.g. the
``MissRateMonitor`` and ``WritebackBurstDetector`` watching one suspect,
or the per-core detector pairs of the cross-core deployment — into a
single deterministic alarm decision:

    **fire when, within the trailing ``window`` clock units, at least
    ``k`` of the ``n`` registered sources each produced at least
    ``min_hits`` over-threshold scores.**

Each source carries its own calibrated threshold (the benign-fitted
``mean + sigmas*std`` operating point from
:func:`repro.telemetry.detectors.suggest_threshold`), so the aggregator
consumes already-normalised z-deviation scores and keeps only windowed
hit state per source.  Everything is a pure function of the observation
sequence — no wall clock, no randomness — which is what makes the
closed-loop experiment bit-replayable.

Wiring: :meth:`FleetAggregator.sink` returns a ``(clock, score)``
callable bindable to a detector's ``score_sink`` hook, so scores flow
in the instant a window closes, mid-run.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, NamedTuple, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.orchestration.counters import record_alarm, register_live


class AlarmEvent(NamedTuple):
    """One fused alarm decision.

    ``time`` is the fusing clock reading (the observation that completed
    the k-of-n condition); ``sources`` the contributing source ids in
    registration order; ``hits`` the per-source over-threshold counts
    inside the decision window; ``rule`` the human-readable decision
    rule that fired.
    """

    time: int
    sources: Tuple[str, ...]
    hits: Tuple[int, ...]
    rule: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly view for stream frames and result params."""
        return {
            "time": self.time,
            "sources": list(self.sources),
            "hits": list(self.hits),
            "rule": self.rule,
        }


class FleetAggregator:
    """Windowed per-source score state with a k-of-n fused decision."""

    def __init__(
        self,
        k: int = 2,
        window: int = 1200,
        min_hits: int = 1,
        warmup: int = 0,
        latch: bool = True,
        publisher: Optional[object] = None,
        source_label: Optional[str] = None,
    ) -> None:
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        if window <= 0:
            raise ConfigurationError(f"window must be positive, got {window}")
        if min_hits <= 0:
            raise ConfigurationError(
                f"min_hits must be positive, got {min_hits}"
            )
        if warmup < 0:
            raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
        self.k = k
        self.window = window
        self.min_hits = min_hits
        #: Clock readings at or below ``warmup`` are published and
        #: counted in ``observed`` but never become hits — the windows
        #: right after a stats reset straddle the startup transient and
        #: score as spurious outliers even for benign processes.
        self.warmup = warmup
        #: With ``latch=True`` (default) the first alarm is final: scores
        #: keep accumulating for post-hoc series, but no further alarms
        #: fire — the closed loop flips a defense exactly once.
        self.latch = latch
        #: Optional :class:`~repro.telemetry.net.StreamPublisher`:
        #: ``score`` and ``alarm`` frames go out live when attached.
        self.publisher = publisher
        #: Extra payload label stamped on published frames (job id).
        self.source_label = source_label
        self.on_alarm: List[Callable[[AlarmEvent], None]] = []
        self.alarms: List[AlarmEvent] = []
        self._order: List[str] = []
        self._thresholds: Dict[str, float] = {}
        self._hits: Dict[str, Deque[int]] = {}
        self._observed: Dict[str, int] = {}
        register_live("aggregators", self)

    # -- sources -------------------------------------------------------
    def register_source(self, source_id: str, threshold: float) -> None:
        """Add a score source with its calibrated alarm threshold."""
        if source_id in self._thresholds:
            raise ConfigurationError(f"duplicate source {source_id!r}")
        self._order.append(source_id)
        self._thresholds[source_id] = threshold
        self._hits[source_id] = deque()
        self._observed[source_id] = 0

    def sink(self, source_id: str) -> Callable[[int, float], None]:
        """A ``(clock, score)`` callable bound to ``source_id``.

        Bind it to a detector's ``score_sink`` hook; the source must be
        registered first.
        """
        if source_id not in self._thresholds:
            raise ConfigurationError(f"unknown source {source_id!r}")

        def _sink(clock: int, score: float) -> None:
            self.observe(source_id, clock, score)

        return _sink

    @property
    def sources(self) -> Tuple[str, ...]:
        """Registered source ids, in registration order."""
        return tuple(self._order)

    @property
    def fired(self) -> bool:
        """Whether any alarm has fired."""
        return bool(self.alarms)

    # -- observation + decision ---------------------------------------
    def observe(self, source_id: str, clock: int, score: float) -> Optional[AlarmEvent]:
        """Feed one score; returns the alarm if this observation fused one."""
        threshold = self._thresholds.get(source_id)
        if threshold is None:
            raise ConfigurationError(f"unknown source {source_id!r}")
        self._observed[source_id] += 1
        if self.publisher is not None:
            payload: Dict[str, object] = {
                "source": source_id,
                "clock": clock,
                "score": round(score, 6),
                "threshold": round(threshold, 6),
            }
            if self.source_label is not None:
                payload["label"] = self.source_label
            self.publisher.publish("score", payload)
        if score > threshold and clock > self.warmup:
            self._hits[source_id].append(clock)
        if self.latch and self.alarms:
            return None
        return self._evaluate(clock)

    def _evaluate(self, clock: int) -> Optional[AlarmEvent]:
        horizon = clock - self.window
        over: List[str] = []
        hit_counts: List[int] = []
        for source_id in self._order:
            hits = self._hits[source_id]
            while hits and hits[0] < horizon:
                hits.popleft()
            count = len(hits)
            if count >= self.min_hits:
                over.append(source_id)
                hit_counts.append(count)
        if len(over) < self.k:
            return None
        alarm = AlarmEvent(
            time=clock,
            sources=tuple(over),
            hits=tuple(hit_counts),
            rule=(
                f"{self.k}-of-{len(self._order)} sources with >= "
                f"{self.min_hits} over-threshold scores within {self.window}"
            ),
        )
        self.alarms.append(alarm)
        record_alarm()
        if self.publisher is not None:
            payload = dict(alarm.to_dict())
            if self.source_label is not None:
                payload["label"] = self.source_label
            self.publisher.publish("alarm", payload)
        for callback in list(self.on_alarm):
            callback(alarm)
        return alarm

    # -- introspection -------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """State view for ``/healthz`` and experiment params."""
        return {
            "sources": len(self._order),
            "observed": dict(self._observed),
            "alarms": len(self.alarms),
            "rule": (
                f"{self.k}-of-{len(self._order)}/"
                f"min_hits={self.min_hits}/window={self.window}"
            ),
        }


__all__ = ["AlarmEvent", "FleetAggregator"]
