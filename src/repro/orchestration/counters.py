"""Process-wide orchestration counters surfaced by the service.

Aggregators and responders run deep inside experiment execution —
worker threads, scenario engines — while ``/metrics`` renders from the
HTTP layer.  These module-level counters are the bridge: every
:class:`~repro.orchestration.aggregator.FleetAggregator` alarm and
:class:`~repro.orchestration.responder.DefenseResponder` flip increments
here (thread-safe), and the service reads one snapshot.

They are observability only: nothing in any measurement path reads them,
so they cannot perturb determinism.
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, List

_lock = threading.Lock()
_counters: Dict[str, int] = {"alarms_total": 0, "defense_flips_total": 0}

#: Live orchestration components (weakly held): aggregators and
#: responders register themselves on construction so ``/healthz`` can
#: report sources / armed / fired while a closed-loop run is in flight.
#: Weak references keep registration free of lifecycle coupling — a
#: finished run's components vanish with their last strong reference.
_live: Dict[str, "weakref.WeakSet"] = {
    "aggregators": weakref.WeakSet(),
    "responders": weakref.WeakSet(),
}


def record_alarm(count: int = 1) -> None:
    """Count ``count`` fused alarms."""
    with _lock:
        _counters["alarms_total"] += count


def record_flip(count: int = 1) -> None:
    """Count ``count`` defense flips."""
    with _lock:
        _counters["defense_flips_total"] += count


def orchestration_counters() -> Dict[str, int]:
    """A snapshot copy of the process-wide counters."""
    with _lock:
        return dict(_counters)


def reset_counters() -> None:
    """Zero the counters (test isolation)."""
    with _lock:
        for key in _counters:
            _counters[key] = 0


def register_live(kind: str, component: object) -> None:
    """Weakly register a live aggregator/responder for ``/healthz``."""
    with _lock:
        _live[kind].add(component)


def live_snapshots() -> Dict[str, List[Dict[str, object]]]:
    """Snapshot every still-alive registered component, per kind.

    Purely observational: a component mutating mid-snapshot (a run in
    flight on another thread) is skipped rather than propagating a
    transient iteration error into ``/healthz``.
    """
    out: Dict[str, List[Dict[str, object]]] = {}
    with _lock:
        live = {kind: list(refs) for kind, refs in _live.items()}
    for kind, components in live.items():
        snaps: List[Dict[str, object]] = []
        for component in components:
            try:
                snaps.append(component.snapshot())
            except RuntimeError:  # dict mutated during concurrent run
                continue
        out[kind] = snaps
    return out
