"""Closed-loop defense response: flip a live hierarchy when an alarm fires.

The :class:`DefenseResponder` closes the detect→respond loop: bind its
:meth:`on_alarm` to a :class:`~repro.orchestration.aggregator
.FleetAggregator` and, the moment the fused alarm fires, it switches the
victim hierarchy to a defense from :mod:`repro.defenses`:

``write_through``
    Flip the L1 to ``WRITE_THROUGH`` + ``NO_WRITE_ALLOCATE`` — the
    policy pair :func:`repro.defenses.write_through
    .make_write_through_hierarchy` builds statically.  Stores stop
    dirtying lines, so from the very next store the dirty-state channel
    has nothing to modulate.

``partition``
    Install way-partition masks on a
    :class:`~repro.defenses.partitioned.WayPartitionedCache` L1 (the
    hierarchy must have been built partition-capable; masks from
    :func:`repro.defenses.partitioned.split_ways_evenly`).  Fills stop
    crossing protection domains, so the receiver can no longer evict the
    suspect's lines.

**Flip-boundary semantics.**  The alarm fires synchronously inside the
telemetry fan-out of the access that closed the deciding detector
window, i.e. between two demand accesses of the simulated machine.  The
flip is applied right there, so its boundary is exactly one point on the
logical event timeline: every access up to and including the deciding
one ran under the undefended hierarchy, every later access under the
defense.  ``flip_time`` records that boundary (the fusing clock
reading); with a stream publisher attached, the ``flip`` frame's event
id pins it on the wire too.  No wall clock, no thread races — replaying
the run reproduces the same boundary bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cache.cache import AllocationPolicy, WritePolicy
from repro.common.errors import ConfigurationError
from repro.defenses.partitioned import split_ways_evenly
from repro.orchestration.aggregator import AlarmEvent
from repro.orchestration.counters import record_flip, register_live

#: Defense selections understood by the responder.
DEFENSES = ("write_through", "partition")


class DefenseResponder:
    """Arms a defense and applies it on the first fused alarm."""

    def __init__(
        self,
        hierarchy: object,
        defense: str = "write_through",
        num_domains: int = 2,
        publisher: Optional[object] = None,
        source_label: Optional[str] = None,
    ) -> None:
        if defense not in DEFENSES:
            raise ConfigurationError(
                f"defense must be one of {DEFENSES}, got {defense!r}"
            )
        if num_domains <= 0:
            raise ConfigurationError(
                f"num_domains must be positive, got {num_domains}"
            )
        if defense == "partition" and not hasattr(
            hierarchy.l1, "partitions"
        ):
            raise ConfigurationError(
                "partition response needs a WayPartitionedCache L1 "
                "(build the hierarchy with make_partitioned_hierarchy)"
            )
        self.hierarchy = hierarchy
        self.defense = defense
        self.num_domains = num_domains
        self.publisher = publisher
        self.source_label = source_label
        self.armed = False
        self.fired = False
        self.flip_time: Optional[int] = None
        self.flip_event_id: Optional[int] = None
        register_live("responders", self)

    def arm(self) -> "DefenseResponder":
        """Enable the response (disarmed responders only observe)."""
        self.armed = True
        return self

    def on_alarm(self, alarm: AlarmEvent) -> None:
        """Aggregator callback: apply the defense once, at the boundary."""
        if not self.armed or self.fired:
            return
        self.fired = True
        self.flip_time = alarm.time
        self._apply()
        record_flip()
        if self.publisher is not None:
            payload: Dict[str, object] = {
                "defense": self.defense,
                "time": alarm.time,
            }
            if self.source_label is not None:
                payload["label"] = self.source_label
            frame = self.publisher.publish("flip", payload)
            self.flip_event_id = frame.event_id

    # -- defense application ------------------------------------------
    def _apply(self) -> None:
        l1 = self.hierarchy.l1
        if self.defense == "write_through":
            l1.write_policy = WritePolicy.WRITE_THROUGH
            l1.allocation_policy = AllocationPolicy.NO_WRITE_ALLOCATE
        else:
            l1.partitions = split_ways_evenly(
                l1.associativity, self.num_domains
            )

    # -- introspection -------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """State view for ``/healthz`` and experiment params."""
        return {
            "defense": self.defense,
            "armed": self.armed,
            "fired": self.fired,
            "flip_time": self.flip_time,
            "flip_event_id": self.flip_event_id,
        }


__all__ = ["DEFENSES", "DefenseResponder"]
