"""Multi-level cache hierarchy with latency accounting.

The hierarchy owns the walk across levels, the fill path, the write-back
routing, and — crucially for this paper — the latency composition rule:

* hit at level *k* costs ``hit_latency(k)``;
* an L1 fill whose victim is **dirty** additionally costs
  ``l1_writeback_penalty`` because the victim must drain to L2 before the
  fill completes (Table 4: 10-12 cycles over a clean victim vs 22-23 over a
  dirty one).

Write-backs below L1 are absorbed by write buffers by default
(``charge_deep_writebacks=False``): they update state but do not stall the
demand access, matching the observation that only the L1 replacement
latency is measurable from the pointer chase.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Protocol, Tuple, runtime_checkable

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng
from repro.cache.cache import AllocationPolicy, Cache, WritePolicy
from repro.cache.latency import LatencyModel
from repro.cache.line import EvictedLine
from repro.cache.stats import CacheStats
from repro.telemetry.bus import TelemetryBus
from repro.telemetry.events import CacheEvent, EventKind
from repro.telemetry.session import session_bus

#: Pseudo-level number reported when an access went all the way to DRAM.
MEMORY_LEVEL: int = 99

_HIT = EventKind.HIT
_MISS = EventKind.MISS
_EVICT = EventKind.EVICT
_WRITEBACK = EventKind.WRITEBACK
_FLUSH = EventKind.FLUSH


@runtime_checkable
class HierarchyFactory(Protocol):
    """Builds a hierarchy from the testbench's derived RNG.

    Defense evaluations inject PLcache/partitioned/write-through variants
    through this hook (see :class:`~repro.channels.testbench.TestbenchConfig`
    and :class:`~repro.channels.wb.protocol.WBChannelConfig`); the factory
    must be deterministic given the RNG it is handed.
    """

    def __call__(self, rng: random.Random) -> "CacheHierarchy":
        """Return a fresh hierarchy for one run."""
        ...


@dataclass(frozen=True)
class AccessTrace:
    """Everything observable about one demand access."""

    address: int
    write: bool
    #: 1 = L1 hit, 2 = L2 hit, ..., MEMORY_LEVEL = DRAM.
    hit_level: int
    #: Total cycles charged to the issuing thread.
    latency: int
    #: Whether the L1 fill had to replace a dirty victim — the paper's
    #: leaked bit of information.
    l1_victim_dirty: bool
    #: (level, evicted line) pairs, outermost first.
    evictions: Tuple[Tuple[int, EvictedLine], ...] = ()


class CacheHierarchy:
    """An ordered stack of caches over a fixed-latency DRAM."""

    def __init__(
        self,
        levels: List[Cache],
        latency: Optional[LatencyModel] = None,
        rng: Optional[random.Random] = None,
        charge_deep_writebacks: bool = False,
        telemetry: Optional[TelemetryBus] = None,
    ) -> None:
        if not levels:
            raise ConfigurationError("hierarchy needs at least one cache level")
        for shallower, deeper in zip(levels, levels[1:]):
            if deeper.size_bytes < shallower.size_bytes:
                raise ConfigurationError(
                    f"{deeper.name} is smaller than {shallower.name}; "
                    "levels must be ordered shallow to deep"
                )
        self.levels = levels
        self.latency = latency or LatencyModel()
        self.rng = ensure_rng(rng)
        self.charge_deep_writebacks = charge_deep_writebacks
        self.stats = CacheStats()
        # Explicit bus wins; otherwise adopt the active telemetry
        # session's bus (None when no session is open — the zero-cost
        # default: hot paths then perform one attribute test and move on).
        self.telemetry = telemetry if telemetry is not None else session_bus()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def l1(self) -> Cache:
        """The innermost cache level."""
        return self.levels[0]

    @property
    def telemetry_enabled(self) -> bool:
        """Whether cache events are being emitted right now.

        This is the one flag everything gates on: the per-access
        emission sites below and the specialised struct-of-arrays
        replay loop's eligibility check (telemetry forces the generic,
        instrumented path — see :mod:`repro.engine.trace`).
        """
        bus = self.telemetry
        return bus is not None and bus.enabled

    def attach_telemetry(self, bus: TelemetryBus) -> TelemetryBus:
        """Attach ``bus`` (replacing any current one); returns it."""
        self.telemetry = bus
        return bus

    def detach_telemetry(self) -> Optional[TelemetryBus]:
        """Remove and return the current bus, if any."""
        bus = self.telemetry
        self.telemetry = None
        return bus

    def load(self, address: int, owner: Optional[int] = None) -> AccessTrace:
        """Demand load of ``address`` by hardware thread ``owner``."""
        return self.access(address, write=False, owner=owner)

    def store(self, address: int, owner: Optional[int] = None) -> AccessTrace:
        """Demand store to ``address`` by hardware thread ``owner``."""
        return self.access(address, write=True, owner=owner)

    def access(
        self, address: int, write: bool, owner: Optional[int] = None
    ) -> AccessTrace:
        """Perform one demand access and return its trace.

        Telemetry: with an enabled bus attached, the access advances the
        logical clock once and every observable action along the walk,
        fill and write-back paths emits a :class:`CacheEvent` stamped
        with that tick.  Emission never touches the RNG, so traced and
        untraced runs are bit-identical in every simulated observable.
        """
        evictions: List[Tuple[int, EvictedLine]] = []
        latency = self.latency.sample_jitter(self.rng)
        bus = self.telemetry
        if bus is not None and bus.enabled:
            emit = bus.emit
            now = bus.tick()
        else:
            emit = None
            now = 0

        hit_level = self._walk(address, owner, write=write, emit=emit, now=now)
        if hit_level == 1:
            latency += self.latency.hit_latency(1)
            l1_victim_dirty = False
            if write:
                latency += self._store_hit(address, owner)
        else:
            if hit_level == MEMORY_LEVEL:
                latency += self.latency.dram
                self.stats.memory_reads += 1
            else:
                latency += self.latency.hit_latency(hit_level)
            allocate = (not write) or (
                self.l1.allocation_policy is AllocationPolicy.WRITE_ALLOCATE
            )
            l1_victim_dirty = False
            if allocate:
                l1_victim_dirty, extra = self._fill_path(
                    address, hit_level, owner, evictions, emit=emit, now=now
                )
                latency += extra
                if write:
                    latency += self._store_hit(address, owner)
            else:
                # No-write-allocate store miss: write around the cache.
                self._propagate_store(0, address, owner)

        return AccessTrace(
            address=address,
            write=write,
            hit_level=hit_level,
            latency=latency,
            l1_victim_dirty=l1_victim_dirty,
            evictions=tuple(evictions),
        )

    def flush(self, address: int, owner: Optional[int] = None) -> int:
        """clflush semantics: evict ``address`` everywhere, write back dirty.

        The returned cycle cost is higher when the line was resident
        (``flush_present_extra``), which is the signal Flush+Flush decodes,
        plus write-back penalties for dirty copies.
        """
        cost = self.latency.flush_base + self.latency.sample_jitter(self.rng)
        bus = self.telemetry
        if bus is not None and bus.enabled:
            emit = bus.emit
            now = bus.tick()
        else:
            emit = None
            now = 0
        was_present = False
        for index, level in enumerate(self.levels):
            snapshot = level.invalidate(address)
            if snapshot is None:
                continue
            was_present = True
            if emit is not None:
                emit(
                    CacheEvent(
                        now, _FLUSH, index + 1, level.set_index(address),
                        owner, address, False, snapshot.dirty,
                    )
                )
            if snapshot.dirty:
                # clflush forces dirty data all the way to memory (it will
                # be invalid at every cache level afterwards).
                self.stats.record_writeback(index + 1, owner)
                self.stats.memory_writes += 1
                cost += self.latency.writeback_penalty(index + 1)
                if emit is not None:
                    emit(
                        CacheEvent(
                            now, _WRITEBACK, index + 1,
                            level.set_index(address), owner, address,
                            False, True,
                        )
                    )
        if was_present:
            cost += self.latency.flush_present_extra
        return cost

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def probe_level(self, address: int) -> int:
        """Deepest-match-free probe: level where ``address`` resides."""
        for index, level in enumerate(self.levels):
            if level.probe(address):
                return index + 1
        return MEMORY_LEVEL

    def dirty_in_l1_set(self, set_index: int) -> int:
        """Dirty-line count of an L1 set (experiment introspection)."""
        return self.l1.dirty_lines_in_set(set_index)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _walk(
        self,
        address: int,
        owner: Optional[int],
        write: bool = False,
        emit=None,
        now: int = 0,
    ) -> int:
        """Find the hit level, recording access stats along the walk.

        With ``emit`` set, every level visited produces a HIT or MISS
        event; a HIT carries the resident line's dirty bit *before* any
        store of this access lands (the walk precedes the store path).
        """
        for index, level in enumerate(self.levels):
            hit = level.lookup(address, owner)
            self.stats.record_access(index + 1, owner, hit, write=write)
            if emit is not None:
                emit(
                    CacheEvent(
                        now, _HIT if hit else _MISS, index + 1,
                        level.set_index(address), owner, address, write,
                        level.is_dirty(address) if hit else False,
                    )
                )
            if hit:
                return index + 1
        return MEMORY_LEVEL

    def _fill_path(
        self,
        address: int,
        hit_level: int,
        owner: Optional[int],
        evictions: List[Tuple[int, EvictedLine]],
        emit=None,
        now: int = 0,
    ) -> Tuple[bool, int]:
        """Install ``address`` into every level above ``hit_level``.

        Returns (L1 victim was dirty, extra latency charged).  With
        ``emit`` set, every victim produces an EVICT (clean) or
        WRITEBACK (dirty) event attributed to the victim's owner, in
        the set the incoming address maps to.
        """
        deepest_fill = (
            len(self.levels) if hit_level == MEMORY_LEVEL else hit_level - 1
        )
        l1_victim_dirty = False
        extra = 0
        # Fill outward-in so victims cascade naturally (L2 before L1 does
        # not matter structurally here, but inner-last keeps L1 state final).
        for index in range(deepest_fill - 1, -1, -1):
            level = self.levels[index]
            evicted = level.fill(address, dirty=False, owner=owner)
            if evicted is None:
                continue
            evictions.append((index + 1, evicted))
            if emit is not None:
                emit(
                    CacheEvent(
                        now, _WRITEBACK if evicted.dirty else _EVICT,
                        index + 1, level.set_index(address), evicted.owner,
                        evicted.address, False, evicted.dirty,
                    )
                )
            if evicted.dirty:
                self.stats.record_writeback(index + 1, evicted.owner)
                self._writeback(
                    index + 1, evicted.address, evicted.owner,
                    emit=emit, now=now,
                )
                if index == 0:
                    l1_victim_dirty = True
                    extra += self.latency.writeback_penalty(1)
                elif self.charge_deep_writebacks:
                    extra += self.latency.writeback_penalty(index + 1)
        return l1_victim_dirty, extra

    def _writeback(
        self,
        from_level: int,
        address: int,
        owner: Optional[int],
        emit=None,
        now: int = 0,
    ) -> None:
        """Land a dirty victim evicted from ``from_level`` one level deeper."""
        index = from_level  # levels list index of the next deeper level
        if index >= len(self.levels):
            self.stats.memory_writes += 1
            return
        level = self.levels[index]
        if level.probe(address):
            level.mark_dirty(address)
            return
        evicted = level.fill(address, dirty=True, owner=owner)
        if evicted is None:
            return
        if emit is not None:
            emit(
                CacheEvent(
                    now, _WRITEBACK if evicted.dirty else _EVICT,
                    index + 1, level.set_index(address), evicted.owner,
                    evicted.address, False, evicted.dirty,
                )
            )
        if evicted.dirty:
            self.stats.record_writeback(index + 1, evicted.owner)
            self._writeback(
                index + 1, evicted.address, evicted.owner, emit=emit, now=now
            )

    def _store_hit(self, address: int, owner: Optional[int]) -> int:
        """Apply a store to the (normally resident) L1 line; returns cost.

        Defensive caches may *bypass* a fill (PLcache with every permitted
        way locked), leaving the line absent; the store is then forwarded
        downward like a no-write-allocate miss.
        """
        if not self.l1.probe(address):
            self._propagate_store(0, address, owner)
            return self.latency.write_through_store_penalty
        if self.l1.write_policy is WritePolicy.WRITE_BACK:
            self.l1.mark_dirty(address)
            return 0
        # Write-through: the L1 copy stays clean and the store is forwarded
        # synchronously toward the first write-back level (or memory).
        self._propagate_store(1, address, owner)
        return self.latency.write_through_store_penalty

    def _propagate_store(
        self, start_index: int, address: int, owner: Optional[int]
    ) -> None:
        """Push a store downward from ``levels[start_index]``.

        The store settles at the first write-back level that holds the line
        (marking it dirty).  Write-through levels holding the line stay
        clean and forward onward; levels missing the line are written
        around (no-write-allocate semantics for forwarded stores).
        """
        for index in range(start_index, len(self.levels)):
            level = self.levels[index]
            if not level.probe(address):
                continue
            if level.write_policy is WritePolicy.WRITE_BACK:
                level.mark_dirty(address)
                return
        self.stats.memory_writes += 1
