"""Cache line state.

The paper's entire channel rests on one bit of this dataclass: ``dirty``.
``locked`` and ``owner`` exist for the defense models (PLcache locks lines;
partitioned caches and the statistics need to know which hardware thread
installed a line).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class CacheLine:
    """One way of one cache set."""

    tag: int = 0
    valid: bool = False
    dirty: bool = False
    locked: bool = False
    #: Hardware-thread id that installed (or last wrote) the line; ``None``
    #: for lines created by hierarchy-internal traffic such as write-backs.
    owner: Optional[int] = None

    def invalidate(self) -> None:
        """Reset the line to the invalid state (drops dirty data)."""
        self.valid = False
        self.dirty = False
        self.locked = False
        self.owner = None

    def matches(self, tag: int) -> bool:
        """Whether this line is valid and holds ``tag``."""
        return self.valid and self.tag == tag


@dataclass(frozen=True)
class EvictedLine:
    """Snapshot of a line at the moment it was evicted from a set.

    ``address`` is the full line-aligned address reconstructed by the cache
    (tag + set index), so write-backs can be routed to the next level.
    """

    address: int
    dirty: bool
    owner: Optional[int]
