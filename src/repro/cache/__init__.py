"""Cache substrate: lines, sets, set-associative caches, and the hierarchy.

This package implements the write-back cache semantics the paper attacks.
The single load-bearing behaviour is in :meth:`CacheSet.fill` /
:meth:`CacheHierarchy.access`: filling over a **dirty** victim costs a
write-back penalty on top of the next-level hit latency, while a clean
victim is replaced for free.  Everything else — write policies, allocation
policies, statistics, multi-level walks — exists so the attack, baseline
channels, defenses, and benign workloads all run against one faithful model.
"""

from repro.cache.line import CacheLine, EvictedLine
from repro.cache.latency import LatencyModel
from repro.cache.cache_set import CacheSet
from repro.cache.cache import (
    AllocationPolicy,
    Cache,
    WritePolicy,
)
from repro.cache.hierarchy import (
    AccessTrace,
    CacheHierarchy,
    HierarchyFactory,
    MEMORY_LEVEL,
)
from repro.cache.stats import CacheStats, LevelCounters
from repro.cache.configs import (
    HierarchyParams,
    LevelParams,
    XeonE5_2650Config,
    make_xeon_hierarchy,
    make_tiny_hierarchy,
)

__all__ = [
    "HierarchyFactory",
    "AccessTrace",
    "AllocationPolicy",
    "Cache",
    "CacheHierarchy",
    "CacheLine",
    "CacheSet",
    "CacheStats",
    "EvictedLine",
    "HierarchyParams",
    "LatencyModel",
    "LevelCounters",
    "LevelParams",
    "MEMORY_LEVEL",
    "WritePolicy",
    "XeonE5_2650Config",
    "make_tiny_hierarchy",
    "make_xeon_hierarchy",
]
