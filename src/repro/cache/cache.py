"""A single set-associative cache level.

Structural behaviour only: the cache answers "hit or miss", installs lines,
and reports evictions; latency accounting and the walk across levels live in
:mod:`repro.cache.hierarchy`.  Write policy (write-back vs write-through)
and allocation policy (write-allocate vs no-write-allocate) are modelled
here because they decide *whether a dirty bit ever exists* — the paper's
Section 8 points out that a write-through cache removes the channel
entirely.
"""

from __future__ import annotations

import enum
import random
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_rng, ensure_rng
from repro.cache.cache_set import CacheSet
from repro.cache.line import EvictedLine
from repro.mem.address import AddressLayout
from repro.replacement.base import PolicyFactory


class WritePolicy(enum.Enum):
    """When stores reach the next level."""

    WRITE_BACK = "write-back"
    WRITE_THROUGH = "write-through"


class AllocationPolicy(enum.Enum):
    """Whether a store miss installs the line."""

    WRITE_ALLOCATE = "write-allocate"
    NO_WRITE_ALLOCATE = "no-write-allocate"


class Cache:
    """One level of a set-associative cache.

    Parameters
    ----------
    name:
        Diagnostic label, e.g. ``"L1D"``.
    size_bytes, associativity, line_size:
        Geometry; ``size = sets * ways * line_size`` must hold exactly.
    policy_factory:
        ``factory(ways, rng) -> ReplacementPolicy``; one instance per set.
    write_policy, allocation_policy:
        Store semantics; the paper's target configuration is write-back +
        write-allocate (the near-universal pairing, Section 2.2).
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        associativity: int,
        line_size: int,
        policy_factory: PolicyFactory,
        write_policy: WritePolicy = WritePolicy.WRITE_BACK,
        allocation_policy: AllocationPolicy = AllocationPolicy.WRITE_ALLOCATE,
        rng: Optional[random.Random] = None,
    ) -> None:
        if size_bytes <= 0 or associativity <= 0 or line_size <= 0:
            raise ConfigurationError("cache geometry values must be positive")
        if size_bytes % (associativity * line_size) != 0:
            raise ConfigurationError(
                f"{name}: size {size_bytes} is not sets*ways*line_size "
                f"with ways={associativity}, line={line_size}"
            )
        num_sets = size_bytes // (associativity * line_size)
        if num_sets & (num_sets - 1):
            raise ConfigurationError(
                f"{name}: derived set count {num_sets} is not a power of two"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.layout = AddressLayout(line_size=line_size, num_sets=num_sets)
        self.write_policy = write_policy
        self.allocation_policy = allocation_policy
        master = ensure_rng(rng)
        self.sets: List[CacheSet] = [
            self._make_set(
                associativity,
                policy_factory(associativity, derive_rng(master, f"{name}/set{i}")),
            )
            for i in range(num_sets)
        ]

    def _make_set(self, ways: int, policy) -> CacheSet:
        """Set-construction hook; the fast engine substitutes its SoA set.

        Overriders must return an object with the :class:`CacheSet` public
        surface (``find``/``fill``/``invalidate``/counters/locking); the
        per-set policy RNG derivation above is shared so both engines draw
        identical random streams.
        """
        return CacheSet(ways, policy)

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.layout.num_sets

    def set_for(self, address: int) -> CacheSet:
        """The set that ``address`` maps to."""
        return self.sets[self.set_index(address)]

    def set_index(self, address: int) -> int:
        """Set index of ``address`` (hook point for randomized mapping)."""
        return self.layout.set_index(address)

    def tag_of(self, address: int) -> int:
        """Tag bits identifying a line within its set.

        The classic split drops the index bits from the tag because
        (tag, index) is unique.  Caches that permute the index (the
        randomized-mapping defense) must override this with a full-width
        tag, or two lines sharing the classic tag could alias within one
        permuted set.
        """
        return self.layout.tag(address)

    def _address_of(self, tag: int, set_index: int) -> int:
        return self.layout.compose(tag, set_index)

    # ------------------------------------------------------------------
    # Structural operations (no latency here)
    # ------------------------------------------------------------------
    def probe(self, address: int) -> bool:
        """Whether ``address`` currently hits, without touching metadata."""
        return self.set_for(address).find(self.tag_of(address)) is not None

    def is_dirty(self, address: int) -> bool:
        """Whether ``address`` is resident and dirty."""
        cache_set = self.set_for(address)
        way = cache_set.find(self.tag_of(address))
        return way is not None and cache_set.lines[way].dirty

    def lookup(self, address: int, owner: Optional[int]) -> bool:
        """Demand access metadata update: True on hit (touches policy)."""
        cache_set = self.set_for(address)
        way = cache_set.find(self.tag_of(address))
        if way is None:
            return False
        cache_set.touch(way)
        if owner is not None:
            cache_set.set_owner(way, owner)
        return True

    def mark_dirty(self, address: int) -> None:
        """Set the dirty bit of a resident line (write hit, write-back)."""
        cache_set = self.set_for(address)
        way = cache_set.find(self.tag_of(address))
        if way is None:
            raise ConfigurationError(
                f"{self.name}: mark_dirty on non-resident {address:#x}"
            )
        cache_set.mark_dirty(way)

    def allowed_ways(self, owner: Optional[int]) -> Optional[Sequence[int]]:
        """Way mask for ``owner`` (None = all ways).

        The base cache is unpartitioned; the way-partitioning defense
        subclasses override this.
        """
        del owner
        return None

    def fill(
        self, address: int, dirty: bool, owner: Optional[int]
    ) -> Optional[EvictedLine]:
        """Install the line of ``address``; returns the eviction, if any."""
        set_index = self.set_index(address)
        return self.sets[set_index].fill(
            tag=self.tag_of(address),
            dirty=dirty,
            owner=owner,
            set_index=set_index,
            address_of=self._address_of,
            allowed_ways=self.allowed_ways(owner),
        )

    def invalidate(self, address: int) -> Optional[EvictedLine]:
        """Drop the line of ``address`` (clflush); returns its final state."""
        return self.set_for(address).invalidate(self.tag_of(address))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def dirty_lines_in_set(self, set_index: int) -> int:
        """Dirty-line count of a set (experiments peek at the target set)."""
        if not 0 <= set_index < self.num_sets:
            raise ConfigurationError(f"set_index {set_index} out of range")
        return self.sets[set_index].dirty_count()

    def describe(self) -> Dict[str, object]:
        """Human-readable configuration summary."""
        return {
            "name": self.name,
            "size_bytes": self.size_bytes,
            "associativity": self.associativity,
            "line_size": self.layout.line_size,
            "num_sets": self.num_sets,
            "write_policy": self.write_policy.value,
            "allocation_policy": self.allocation_policy.value,
        }
