"""A single cache set: ways, replacement-policy metadata, fill/evict logic.

Victim selection order (mirrors real write-allocate caches and supports the
defense models):

1. any invalid way;
2. otherwise the replacement policy's choice, skipping locked ways
   (PLcache) and ways outside the caller's allowed-way mask (partitioned
   caches) by re-querying the policy after a forced touch of the forbidden
   way — bounded, and falling back to a linear scan if the policy keeps
   pointing at forbidden ways.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, List, Optional, Sequence

#: Converts (tag, set_index) back into a line-aligned address so the
#: hierarchy can route write-backs of evicted victims.
AddressReconstructor = Callable[[int, int], int]

from repro.common.errors import ConfigurationError, SimulationError
from repro.cache.line import CacheLine, EvictedLine
from repro.replacement.base import ReplacementPolicy


class CacheSet:
    """One set of a set-associative cache."""

    def __init__(self, ways: int, policy: ReplacementPolicy) -> None:
        if ways <= 0:
            raise ConfigurationError(f"ways must be positive, got {ways}")
        if policy.ways != ways:
            raise ConfigurationError(
                f"policy manages {policy.ways} ways but the set has {ways}"
            )
        self.ways = ways
        self.policy = policy
        self.lines: List[CacheLine] = [CacheLine() for _ in range(ways)]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def find(self, tag: int) -> Optional[int]:
        """Way index holding ``tag``, or None."""
        for way, line in enumerate(self.lines):
            if line.matches(tag):
                return way
        return None

    def touch(self, way: int) -> None:
        """Record a hit on ``way`` with the replacement policy."""
        self.policy.on_hit(way)

    # ------------------------------------------------------------------
    # Fill / eviction
    # ------------------------------------------------------------------
    def _invalid_way(self, allowed_ways: Optional[Sequence[int]]) -> Optional[int]:
        candidates = range(self.ways) if allowed_ways is None else allowed_ways
        for way in candidates:
            if not self.lines[way].valid:
                return way
        return None

    def choose_victim(self, allowed_ways: Optional[Sequence[int]] = None) -> int:
        """Pick the way a fill will (re)use, preferring invalid ways.

        ``allowed_ways`` restricts the choice (way-partitioning defenses).
        Locked lines are never chosen.  Raises :class:`SimulationError` when
        every permitted way is locked — the PLcache "excessive locking"
        failure mode, surfaced loudly instead of silently mis-evicting.
        """
        invalid = self._invalid_way(allowed_ways)
        if invalid is not None:
            return invalid

        allowed = set(range(self.ways) if allowed_ways is None else allowed_ways)
        if not allowed:
            raise ConfigurationError("allowed_ways must not be empty")
        evictable = {way for way in allowed if not self.lines[way].locked}
        if not evictable:
            raise SimulationError(
                "no evictable way: all permitted ways are locked"
            )

        # Dirty-state hint for policies that model write-back-averse victim
        # selection (the E5-2650 surrogate).
        self.policy.notify_dirty_ways(
            tuple(line.valid and line.dirty for line in self.lines)
        )
        # Let the policy choose; nudge it off forbidden ways a bounded
        # number of times (a locked/foreign way behaves as "most recently
        # used" from the policy's viewpoint because it can never leave).
        for _ in range(4 * self.ways):
            way = self.policy.victim()
            if way in evictable:
                return way
            self.policy.on_hit(way)
        # Policy refuses to cooperate (can happen with degenerate states);
        # fall back to any evictable way deterministically.
        return min(evictable)

    def fill(
        self,
        tag: int,
        dirty: bool,
        owner: Optional[int],
        set_index: int,
        address_of: AddressReconstructor,
        allowed_ways: Optional[Sequence[int]] = None,
    ) -> Optional[EvictedLine]:
        """Install ``tag`` into the set, returning the evicted line if any.

        ``address_of`` converts (tag, set_index) back into a line address so
        the hierarchy can route the write-back.
        """
        if self.find(tag) is not None:
            raise SimulationError(
                f"fill of tag {tag:#x} that is already present in the set"
            )
        way = self.choose_victim(allowed_ways)
        line = self.lines[way]
        evicted: Optional[EvictedLine] = None
        if line.valid:
            evicted = EvictedLine(
                address=address_of(line.tag, set_index),
                dirty=line.dirty,
                owner=line.owner,
            )
            self.policy.on_invalidate(way)
        line.tag = tag
        line.valid = True
        line.dirty = dirty
        line.locked = False
        line.owner = owner
        self.policy.on_fill(way)
        return evicted

    def invalidate(self, tag: int) -> Optional[EvictedLine]:
        """Drop ``tag`` from the set (clflush), reporting its final state."""
        way = self.find(tag)
        if way is None:
            return None
        line = self.lines[way]
        snapshot = EvictedLine(address=-1, dirty=line.dirty, owner=line.owner)
        line.invalidate()
        self.policy.on_invalidate(way)
        return snapshot

    # ------------------------------------------------------------------
    # Introspection used by experiments, defenses and tests
    # ------------------------------------------------------------------
    def dirty_count(self) -> int:
        """Number of valid dirty lines currently in the set."""
        return sum(1 for line in self.lines if line.valid and line.dirty)

    def valid_count(self) -> int:
        """Number of valid lines currently in the set."""
        return sum(1 for line in self.lines if line.valid)

    def resident_tags(self) -> List[int]:
        """Tags of all valid lines (unordered semantics, way order)."""
        return [line.tag for line in self.lines if line.valid]

    def lock(self, tag: int) -> bool:
        """Lock ``tag`` against eviction (PLcache); False if absent."""
        way = self.find(tag)
        if way is None:
            return False
        self.lines[way].locked = True
        return True

    def unlock(self, tag: int) -> bool:
        """Unlock ``tag``; False if absent."""
        way = self.find(tag)
        if way is None:
            return False
        self.lines[way].locked = False
        return True

    def randomize_policy_state(self, rng: Optional[random.Random] = None) -> None:
        """Scramble replacement metadata (Table 2 initial conditions)."""
        del rng  # policies use their own generator
        self.policy.randomize_state()


def iter_valid_lines(cache_set: CacheSet) -> Iterable[CacheLine]:
    """Yield the valid lines of ``cache_set`` (test/diagnostic helper)."""
    return (line for line in cache_set.lines if line.valid)
