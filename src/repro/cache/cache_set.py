"""A single cache set: ways, replacement-policy metadata, fill/evict logic.

Victim selection order (mirrors real write-allocate caches and supports the
defense models):

1. any invalid way;
2. otherwise the replacement policy's choice, skipping locked ways
   (PLcache) and ways outside the caller's allowed-way mask (partitioned
   caches) by re-querying the policy after a forced touch of the forbidden
   way — bounded, and falling back to a linear scan if the policy keeps
   pointing at forbidden ways.

Lookup is O(1): a ``tag -> way`` dict index shadows the line array and is
kept in sync by every state transition (fill, invalidate, full clear), so
``find`` never scans.  ``dirty_count``/``valid_count`` are maintained
incrementally for the same reason — experiments poll them every period.
All line-state changes must therefore go through this class; mutating a
:class:`~repro.cache.line.CacheLine` directly would desynchronise the
index and the counters (``scan_counts`` exists so tests can verify they
never drift).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: Converts (tag, set_index) back into a line-aligned address so the
#: hierarchy can route write-backs of evicted victims.
AddressReconstructor = Callable[[int, int], int]

from repro.common.errors import ConfigurationError, SimulationError
from repro.cache.line import CacheLine, EvictedLine
from repro.replacement.base import ReplacementPolicy


class CacheSet:
    """One set of a set-associative cache."""

    def __init__(self, ways: int, policy: ReplacementPolicy) -> None:
        if ways <= 0:
            raise ConfigurationError(f"ways must be positive, got {ways}")
        if policy.ways != ways:
            raise ConfigurationError(
                f"policy manages {policy.ways} ways but the set has {ways}"
            )
        self.ways = ways
        self.policy = policy
        self.lines: List[CacheLine] = [CacheLine() for _ in range(ways)]
        #: O(1) lookup index over the valid lines.
        self._index: Dict[int, int] = {}
        self._valid_count = 0
        self._dirty_count = 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def find(self, tag: int) -> Optional[int]:
        """Way index holding ``tag``, or None."""
        return self._index.get(tag)

    def touch(self, way: int) -> None:
        """Record a hit on ``way`` with the replacement policy."""
        self.policy.on_hit(way)

    # ------------------------------------------------------------------
    # Fill / eviction
    # ------------------------------------------------------------------
    def _invalid_way(self, allowed_ways: Optional[Sequence[int]]) -> Optional[int]:
        if self._valid_count == self.ways:
            return None
        candidates = range(self.ways) if allowed_ways is None else allowed_ways
        for way in candidates:
            if not self.lines[way].valid:
                return way
        return None

    def choose_victim(self, allowed_ways: Optional[Sequence[int]] = None) -> int:
        """Pick the way a fill will (re)use, preferring invalid ways.

        ``allowed_ways`` restricts the choice (way-partitioning defenses).
        Locked lines are never chosen.  Raises :class:`SimulationError` when
        every permitted way is locked — the PLcache "excessive locking"
        failure mode, surfaced loudly instead of silently mis-evicting.
        """
        invalid = self._invalid_way(allowed_ways)
        if invalid is not None:
            return invalid

        allowed = set(range(self.ways) if allowed_ways is None else allowed_ways)
        if not allowed:
            raise ConfigurationError("allowed_ways must not be empty")
        evictable = {way for way in allowed if not self.lines[way].locked}
        if not evictable:
            raise SimulationError(
                "no evictable way: all permitted ways are locked"
            )

        # Dirty-state hint for policies that model write-back-averse victim
        # selection (the E5-2650 surrogate).  Policies opt in through
        # ``wants_dirty_hint`` so the common path skips the tuple build.
        if self.policy.wants_dirty_hint:
            self.policy.notify_dirty_ways(
                tuple(line.valid and line.dirty for line in self.lines)
            )
        # Let the policy choose; nudge it off forbidden ways a bounded
        # number of times (a locked/foreign way behaves as "most recently
        # used" from the policy's viewpoint because it can never leave).
        for _ in range(4 * self.ways):
            way = self.policy.victim()
            if way in evictable:
                return way
            self.policy.on_hit(way)
        # Policy refuses to cooperate (can happen with degenerate states);
        # fall back to any evictable way deterministically.
        return min(evictable)

    def fill(
        self,
        tag: int,
        dirty: bool,
        owner: Optional[int],
        set_index: int,
        address_of: AddressReconstructor,
        allowed_ways: Optional[Sequence[int]] = None,
    ) -> Optional[EvictedLine]:
        """Install ``tag`` into the set, returning the evicted line if any.

        ``address_of`` converts (tag, set_index) back into a line address so
        the hierarchy can route the write-back.
        """
        if tag in self._index:
            raise SimulationError(
                f"fill of tag {tag:#x} that is already present in the set"
            )
        way = self.choose_victim(allowed_ways)
        line = self.lines[way]
        evicted: Optional[EvictedLine] = None
        if line.valid:
            evicted = EvictedLine(
                address=address_of(line.tag, set_index),
                dirty=line.dirty,
                owner=line.owner,
            )
            del self._index[line.tag]
            self._valid_count -= 1
            if line.dirty:
                self._dirty_count -= 1
            self.policy.on_invalidate(way)
        line.tag = tag
        line.valid = True
        line.dirty = dirty
        line.locked = False
        line.owner = owner
        self._index[tag] = way
        self._valid_count += 1
        if dirty:
            self._dirty_count += 1
        self.policy.on_fill(way)
        return evicted

    def invalidate(self, tag: int) -> Optional[EvictedLine]:
        """Drop ``tag`` from the set (clflush), reporting its final state."""
        way = self._index.get(tag)
        if way is None:
            return None
        line = self.lines[way]
        snapshot = EvictedLine(address=-1, dirty=line.dirty, owner=line.owner)
        del self._index[tag]
        self._valid_count -= 1
        if line.dirty:
            self._dirty_count -= 1
        line.invalidate()
        self.policy.on_invalidate(way)
        return snapshot

    def invalidate_all(self) -> None:
        """Drop every line (cache-wide flush, e.g. a rekey).

        Dirty data is discarded without a write-back; callers model flushes
        whose write-back traffic is not observable (defense rekeys).
        """
        for way, line in enumerate(self.lines):
            if line.valid:
                line.invalidate()
                self.policy.on_invalidate(way)
        self._index.clear()
        self._valid_count = 0
        self._dirty_count = 0

    def mark_dirty(self, way: int) -> None:
        """Set the dirty bit of the (valid) line in ``way``."""
        line = self.lines[way]
        if not line.valid:
            raise SimulationError(f"mark_dirty on invalid way {way}")
        if not line.dirty:
            line.dirty = True
            self._dirty_count += 1

    def set_owner(self, way: int, owner: Optional[int]) -> None:
        """Record the hardware thread that last touched ``way``."""
        self.lines[way].owner = owner

    # ------------------------------------------------------------------
    # Introspection used by experiments, defenses and tests
    # ------------------------------------------------------------------
    def dirty_count(self) -> int:
        """Number of valid dirty lines currently in the set (O(1))."""
        return self._dirty_count

    def valid_count(self) -> int:
        """Number of valid lines currently in the set (O(1))."""
        return self._valid_count

    def scan_counts(self) -> Tuple[int, int]:
        """(valid, dirty) recomputed by a fresh scan of the line array.

        Exists so tests can assert the incremental counters never drift
        from the ground truth; production code uses the O(1) counters.
        """
        valid = sum(1 for line in self.lines if line.valid)
        dirty = sum(1 for line in self.lines if line.valid and line.dirty)
        return valid, dirty

    def index_snapshot(self) -> Dict[int, int]:
        """Copy of the tag -> way index (exposed for the staleness tests)."""
        return dict(self._index)

    def resident_tags(self) -> List[int]:
        """Tags of all valid lines (unordered semantics, way order)."""
        return [line.tag for line in self.lines if line.valid]

    def way_states(self) -> Tuple[Tuple[bool, Optional[int], bool, bool, Optional[int]], ...]:
        """Normalised per-way snapshot for cross-engine comparisons.

        Invalid ways report ``(False, None, False, False, None)`` so stale
        tag values cannot create spurious differences between engines.
        """
        return tuple(
            (True, line.tag, line.dirty, line.locked, line.owner)
            if line.valid
            else (False, None, False, False, None)
            for line in self.lines
        )

    def lock(self, tag: int) -> bool:
        """Lock ``tag`` against eviction (PLcache); False if absent."""
        way = self._index.get(tag)
        if way is None:
            return False
        self.lines[way].locked = True
        return True

    def unlock(self, tag: int) -> bool:
        """Unlock ``tag``; False if absent."""
        way = self._index.get(tag)
        if way is None:
            return False
        self.lines[way].locked = False
        return True

    def randomize_policy_state(self, rng: Optional[random.Random] = None) -> None:
        """Scramble replacement metadata (Table 2 initial conditions)."""
        del rng  # policies use their own generator
        self.policy.randomize_state()


def iter_valid_lines(cache_set: CacheSet) -> Iterable[CacheLine]:
    """Yield the valid lines of ``cache_set`` (test/diagnostic helper)."""
    return (line for line in cache_set.lines if line.valid)
