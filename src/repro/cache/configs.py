"""Preset hierarchy configurations.

:func:`make_xeon_hierarchy` models the paper's evaluation platform (Intel
Xeon E5-2650, Table 3): a 32 KB / 8-way / 64-set VIPT L1D, a 256 KB / 8-way
unified L2 and a last-level cache.  The real part has a 20 MB shared LLC;
we model a 2 MB slice, which preserves every behaviour the paper measures
(the channel never leaves L1/L2) while keeping simulations light.

:func:`make_tiny_hierarchy` is a deliberately small configuration for unit
tests that want to force evictions with a handful of addresses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.common.rng import derive_rng, ensure_rng
from repro.cache.cache import AllocationPolicy, Cache, WritePolicy
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.latency import LatencyModel
from repro.replacement.registry import make_policy_factory


@dataclass(frozen=True)
class XeonE5_2650Config:
    """Knobs of the modelled Xeon E5-2650 memory hierarchy.

    The defaults reproduce the paper's platform; experiments vary
    ``l1_policy`` (Table 2, Section 6.1), ``l1_write_policy`` (Section 8)
    and the latency model's jitter.
    """

    l1_size: int = 32 * 1024
    l1_ways: int = 8
    line_size: int = 64
    l2_size: int = 256 * 1024
    l2_ways: int = 8
    llc_size: int = 2 * 1024 * 1024
    llc_ways: int = 16
    l1_policy: str = "tree-plru"
    l2_policy: str = "tree-plru"
    llc_policy: str = "srrip"
    l1_write_policy: WritePolicy = WritePolicy.WRITE_BACK
    l1_allocation_policy: AllocationPolicy = AllocationPolicy.WRITE_ALLOCATE
    latency: LatencyModel = field(default_factory=LatencyModel)

    @property
    def l1_sets(self) -> int:
        """Number of L1 sets (64 for the paper's platform)."""
        return self.l1_size // (self.l1_ways * self.line_size)


def _cache_class(engine: Optional[str]):
    """Resolve the Cache class for ``engine`` (None = process default).

    Imported lazily so ``repro.cache`` does not depend on ``repro.engine``
    at import time; the fast engine's class has the exact constructor
    signature of :class:`Cache`.
    """
    from repro.engine.selection import cache_class

    return cache_class(engine)


def make_xeon_hierarchy(
    config: Optional[XeonE5_2650Config] = None,
    rng: Optional[random.Random] = None,
    engine: Optional[str] = None,
    **overrides: object,
) -> CacheHierarchy:
    """Build the modelled Xeon E5-2650 hierarchy.

    ``overrides`` are applied on top of ``config`` (or the defaults), e.g.
    ``make_xeon_hierarchy(l1_policy="random")`` for the Section 6.1
    experiments.  ``engine`` picks the cache core ("reference" or "fast",
    see :mod:`repro.engine.selection`); ``None`` defers to the process-wide
    selection, so profiles/CLI control it without threading the knob
    through every call site.  Both engines consume identical RNG streams,
    so results are bit-identical either way.
    """
    if config is None:
        config = XeonE5_2650Config()
    engine = overrides.pop("engine", engine)  # type: ignore[assignment]
    if overrides:
        config = dataclass_replace(config, **overrides)
    cache_cls = _cache_class(engine)
    master = ensure_rng(rng)
    l1 = cache_cls(
        name="L1D",
        size_bytes=config.l1_size,
        associativity=config.l1_ways,
        line_size=config.line_size,
        policy_factory=make_policy_factory(config.l1_policy),
        write_policy=config.l1_write_policy,
        allocation_policy=config.l1_allocation_policy,
        rng=derive_rng(master, "l1"),
    )
    l2 = cache_cls(
        name="L2",
        size_bytes=config.l2_size,
        associativity=config.l2_ways,
        line_size=config.line_size,
        policy_factory=make_policy_factory(config.l2_policy),
        rng=derive_rng(master, "l2"),
    )
    llc = cache_cls(
        name="LLC",
        size_bytes=config.llc_size,
        associativity=config.llc_ways,
        line_size=config.line_size,
        policy_factory=make_policy_factory(config.llc_policy),
        rng=derive_rng(master, "llc"),
    )
    return CacheHierarchy(
        levels=[l1, l2, llc],
        latency=config.latency,
        rng=derive_rng(master, "hierarchy"),
    )


def make_tiny_hierarchy(
    l1_policy: str = "lru",
    rng: Optional[random.Random] = None,
    l1_write_policy: WritePolicy = WritePolicy.WRITE_BACK,
    engine: Optional[str] = None,
) -> CacheHierarchy:
    """A 2-level, 4-set hierarchy small enough to exhaust in unit tests."""
    cache_cls = _cache_class(engine)
    master = ensure_rng(rng)
    l1 = cache_cls(
        name="L1-tiny",
        size_bytes=512,
        associativity=2,
        line_size=64,
        policy_factory=make_policy_factory(l1_policy),
        write_policy=l1_write_policy,
        rng=derive_rng(master, "l1"),
    )
    l2 = cache_cls(
        name="L2-tiny",
        size_bytes=4096,
        associativity=4,
        line_size=64,
        policy_factory=make_policy_factory("lru"),
        rng=derive_rng(master, "l2"),
    )
    return CacheHierarchy(levels=[l1, l2], rng=derive_rng(master, "hierarchy"))


def dataclass_replace(config: XeonE5_2650Config, **overrides: object) -> XeonE5_2650Config:
    """``dataclasses.replace`` with a friendlier error for bad field names."""
    import dataclasses

    valid = {f.name for f in dataclasses.fields(config)}
    unknown = set(overrides) - valid
    if unknown:
        from repro.common.errors import ConfigurationError

        raise ConfigurationError(
            f"unknown config field(s): {', '.join(sorted(unknown))}; "
            f"valid fields: {', '.join(sorted(valid))}"
        )
    return dataclasses.replace(config, **overrides)
