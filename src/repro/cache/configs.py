"""Preset hierarchy configurations.

:func:`make_xeon_hierarchy` models the paper's evaluation platform (Intel
Xeon E5-2650, Table 3): a 32 KB / 8-way / 64-set VIPT L1D, a 256 KB / 8-way
unified L2 and a last-level cache.  The real part has a 20 MB shared LLC;
we model a 2 MB slice, which preserves every behaviour the paper measures
(the channel never leaves L1/L2) while keeping simulations light.

:func:`make_tiny_hierarchy` is a deliberately small configuration for unit
tests that want to force evictions with a handful of addresses.

Both factories route through :class:`HierarchyParams`, the single value
object describing hierarchy geometry.  ``repro.scenario`` serialises the
same object inside :class:`~repro.scenario.spec.ScenarioSpec`, so there is
exactly one source of truth for geometry defaults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_rng, ensure_rng
from repro.cache.cache import AllocationPolicy, Cache, WritePolicy
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.latency import LatencyModel
from repro.replacement.registry import make_policy_factory


@dataclass(frozen=True)
class XeonE5_2650Config:
    """Knobs of the modelled Xeon E5-2650 memory hierarchy.

    The defaults reproduce the paper's platform; experiments vary
    ``l1_policy`` (Table 2, Section 6.1), ``l1_write_policy`` (Section 8)
    and the latency model's jitter.
    """

    l1_size: int = 32 * 1024
    l1_ways: int = 8
    line_size: int = 64
    l2_size: int = 256 * 1024
    l2_ways: int = 8
    llc_size: int = 2 * 1024 * 1024
    llc_ways: int = 16
    l1_policy: str = "tree-plru"
    l2_policy: str = "tree-plru"
    llc_policy: str = "srrip"
    l1_write_policy: WritePolicy = WritePolicy.WRITE_BACK
    l1_allocation_policy: AllocationPolicy = AllocationPolicy.WRITE_ALLOCATE
    latency: LatencyModel = field(default_factory=LatencyModel)

    @property
    def l1_sets(self) -> int:
        """Number of L1 sets (64 for the paper's platform)."""
        return self.l1_size // (self.l1_ways * self.line_size)


@dataclass(frozen=True)
class LevelParams:
    """Geometry and policies of one cache level, as plain data.

    Policies are stored as their string values (``"write-back"``,
    ``"write-allocate"``) so the object round-trips through canonical
    JSON without custom encoders.
    """

    name: str
    size_bytes: int
    ways: int
    policy: str
    write_policy: str = WritePolicy.WRITE_BACK.value
    allocation_policy: str = AllocationPolicy.WRITE_ALLOCATE.value

    def __post_init__(self) -> None:
        try:
            WritePolicy(self.write_policy)
        except ValueError:
            raise ConfigurationError(
                f"{self.name}: unknown write policy {self.write_policy!r}; "
                f"valid: {', '.join(p.value for p in WritePolicy)}"
            ) from None
        try:
            AllocationPolicy(self.allocation_policy)
        except ValueError:
            raise ConfigurationError(
                f"{self.name}: unknown allocation policy "
                f"{self.allocation_policy!r}; "
                f"valid: {', '.join(p.value for p in AllocationPolicy)}"
            ) from None

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "size_bytes": self.size_bytes,
            "ways": self.ways,
            "policy": self.policy,
            "write_policy": self.write_policy,
            "allocation_policy": self.allocation_policy,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LevelParams":
        _require_fields(cls, data, context="hierarchy level")
        return cls(**data)  # type: ignore[arg-type]


#: RNG derivation labels by level index; fixed so that params-built
#: hierarchies consume exactly the streams the historic factories did.
_LEVEL_RNG_KEYS = ("l1", "l2", "llc")


@dataclass(frozen=True)
class HierarchyParams:
    """The single source of truth for hierarchy geometry.

    ``make_xeon_hierarchy`` / ``make_tiny_hierarchy`` and
    ``ScenarioSpec.hierarchy`` all build from this object, so geometry
    defaults exist in one place.  :meth:`build` replicates the historic
    construction exactly — same level names, same RNG derivation labels
    in the same order — so hierarchies built either way are
    bit-identical.
    """

    levels: Tuple[LevelParams, ...]
    line_size: int = 64
    #: Number of cores.  1 (the default) is the historic single-core
    #: hierarchy; >= 2 builds a :class:`~repro.coherence.hierarchy.
    #: CoherentHierarchy` with one private copy of ``levels[0]`` per core
    #: over the shared deeper levels, kept coherent by a MESI directory.
    cores: int = 1

    def __post_init__(self) -> None:
        if not self.levels:
            raise ConfigurationError("HierarchyParams needs at least one level")
        if len(self.levels) > len(_LEVEL_RNG_KEYS):
            raise ConfigurationError(
                f"HierarchyParams supports at most {len(_LEVEL_RNG_KEYS)} "
                f"levels, got {len(self.levels)}"
            )
        if self.cores < 1:
            raise ConfigurationError(
                f"cores must be >= 1, got {self.cores}"
            )
        if self.cores > 1 and len(self.levels) < 2:
            raise ConfigurationError(
                "a multi-core hierarchy needs a shared level below the "
                "per-core L1s"
            )

    @classmethod
    def xeon(
        cls,
        config: Optional[XeonE5_2650Config] = None,
        cores: int = 1,
        **overrides: object,
    ) -> "HierarchyParams":
        """Params for the paper's Xeon E5-2650 (``overrides`` as in
        :func:`make_xeon_hierarchy`, e.g. ``l1_policy="random"``).

        ``cores > 1`` replicates the L1D per core over the shared L2/LLC
        (see :mod:`repro.coherence`)."""
        if config is None:
            config = XeonE5_2650Config()
        if overrides:
            config = dataclass_replace(config, **overrides)
        return cls(
            cores=cores,
            levels=(
                LevelParams(
                    name="L1D",
                    size_bytes=config.l1_size,
                    ways=config.l1_ways,
                    policy=config.l1_policy,
                    write_policy=config.l1_write_policy.value,
                    allocation_policy=config.l1_allocation_policy.value,
                ),
                LevelParams(
                    name="L2",
                    size_bytes=config.l2_size,
                    ways=config.l2_ways,
                    policy=config.l2_policy,
                ),
                LevelParams(
                    name="LLC",
                    size_bytes=config.llc_size,
                    ways=config.llc_ways,
                    policy=config.llc_policy,
                ),
            ),
            line_size=config.line_size,
        )

    @classmethod
    def tiny(
        cls,
        l1_policy: str = "lru",
        l1_write_policy: WritePolicy = WritePolicy.WRITE_BACK,
    ) -> "HierarchyParams":
        """Params for the 2-level, 4-set unit-test hierarchy."""
        return cls(
            levels=(
                LevelParams(
                    name="L1-tiny",
                    size_bytes=512,
                    ways=2,
                    policy=l1_policy,
                    write_policy=l1_write_policy.value,
                ),
                LevelParams(
                    name="L2-tiny",
                    size_bytes=4096,
                    ways=4,
                    policy="lru",
                ),
            ),
        )

    def build(
        self,
        *,
        rng: Optional[random.Random] = None,
        engine: Optional[str] = None,
        latency: Optional[LatencyModel] = None,
    ) -> CacheHierarchy:
        """Construct the hierarchy these params describe.

        RNG streams are derived from ``rng`` in level order with the
        fixed labels ``l1``/``l2``/``llc``, then ``hierarchy`` — the
        exact draw sequence of the historic factory functions, so
        single-core hierarchies stay bit-identical.  With ``cores > 1``
        the per-core L1s use ``l1/core0`` … instead (a new stream
        family), and the result is a
        :class:`~repro.coherence.hierarchy.CoherentHierarchy`.
        """
        if self.cores > 1:
            # Imported lazily: repro.coherence builds on repro.cache.
            from repro.coherence.hierarchy import make_coherent_hierarchy

            return make_coherent_hierarchy(  # type: ignore[return-value]
                cores=self.cores,
                levels=self.levels,
                line_size=self.line_size,
                rng=rng,
                engine=engine,
                latency=latency,
            )
        cache_cls = _cache_class(engine)
        master = ensure_rng(rng)
        caches: List[Cache] = []
        for index, level in enumerate(self.levels):
            caches.append(
                cache_cls(
                    name=level.name,
                    size_bytes=level.size_bytes,
                    associativity=level.ways,
                    line_size=self.line_size,
                    policy_factory=make_policy_factory(level.policy),
                    write_policy=WritePolicy(level.write_policy),
                    allocation_policy=AllocationPolicy(level.allocation_policy),
                    rng=derive_rng(master, _LEVEL_RNG_KEYS[index]),
                )
            )
        return CacheHierarchy(
            levels=caches,
            latency=latency,
            rng=derive_rng(master, "hierarchy"),
        )

    def to_dict(self) -> Dict[str, object]:
        # ``cores`` is serialised only when it departs from the default:
        # every cores=1 spec keeps its historic canonical form, so the
        # scenario keys pinned in scenarios/KEYS.json are unchanged.
        data: Dict[str, object] = {
            "line_size": self.line_size,
            "levels": [level.to_dict() for level in self.levels],
        }
        if self.cores != 1:
            data["cores"] = self.cores
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "HierarchyParams":
        _require_fields(cls, data, context="hierarchy")
        levels = data.get("levels")
        if not isinstance(levels, (list, tuple)):
            raise ConfigurationError("hierarchy 'levels' must be a list")
        return cls(
            levels=tuple(LevelParams.from_dict(dict(entry)) for entry in levels),
            line_size=int(data.get("line_size", 64)),  # type: ignore[arg-type]
            cores=int(data.get("cores", 1)),  # type: ignore[arg-type]
        )


def _require_fields(cls, data: Dict[str, object], context: str) -> None:
    """Reject unknown keys loudly — specs must not silently drop typos."""
    import dataclasses

    if not isinstance(data, dict):
        raise ConfigurationError(f"{context} must be a JSON object, got {type(data).__name__}")
    valid = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - valid
    if unknown:
        raise ConfigurationError(
            f"unknown {context} field(s): {', '.join(sorted(unknown))}; "
            f"valid fields: {', '.join(sorted(valid))}"
        )


def _cache_class(engine: Optional[str]):
    """Resolve the Cache class for ``engine`` (None = process default).

    Imported lazily so ``repro.cache`` does not depend on ``repro.engine``
    at import time; the fast engine's class has the exact constructor
    signature of :class:`Cache`.
    """
    from repro.engine.selection import cache_class

    return cache_class(engine)


def make_xeon_hierarchy(
    *,
    config: Optional[XeonE5_2650Config] = None,
    rng: Optional[random.Random] = None,
    engine: Optional[str] = None,
    **overrides: object,
) -> CacheHierarchy:
    """Build the modelled Xeon E5-2650 hierarchy (keyword-only).

    ``overrides`` are applied on top of ``config`` (or the defaults), e.g.
    ``make_xeon_hierarchy(l1_policy="random")`` for the Section 6.1
    experiments.  ``engine`` picks the cache core ("reference" or "fast",
    see :mod:`repro.engine.selection`); ``None`` defers to the process-wide
    selection, so profiles/CLI control it without threading the knob
    through every call site.  Both engines consume identical RNG streams,
    so results are bit-identical either way.
    """
    if config is None:
        config = XeonE5_2650Config()
    engine = overrides.pop("engine", engine)  # type: ignore[assignment]
    if overrides:
        config = dataclass_replace(config, **overrides)
    params = HierarchyParams.xeon(config)
    return params.build(rng=rng, engine=engine, latency=config.latency)


def make_tiny_hierarchy(
    *,
    l1_policy: str = "lru",
    rng: Optional[random.Random] = None,
    l1_write_policy: WritePolicy = WritePolicy.WRITE_BACK,
    engine: Optional[str] = None,
) -> CacheHierarchy:
    """A 2-level, 4-set hierarchy small enough to exhaust in unit tests."""
    params = HierarchyParams.tiny(l1_policy, l1_write_policy)
    return params.build(rng=rng, engine=engine)


def dataclass_replace(config: XeonE5_2650Config, **overrides: object) -> XeonE5_2650Config:
    """``dataclasses.replace`` with a friendlier error for bad field names."""
    import dataclasses

    valid = {f.name for f in dataclasses.fields(config)}
    unknown = set(overrides) - valid
    if unknown:
        raise ConfigurationError(
            f"unknown config field(s): {', '.join(sorted(unknown))}; "
            f"valid fields: {', '.join(sorted(valid))}"
        )
    return dataclasses.replace(config, **overrides)
