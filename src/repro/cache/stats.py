"""Per-level, per-thread cache statistics.

These counters are the simulator's stand-in for the hardware performance
counters the paper reads with ``perf`` (Tables 6 and 7): accesses, hits,
misses and write-backs at each level, attributable to the hardware thread
that issued the demand access.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class LevelCounters:
    """Counters for one (level, owner) pair."""

    accesses: int = 0
    hits: int = 0
    writebacks: int = 0
    stores: int = 0

    @property
    def loads(self) -> int:
        """Demand loads (what perf's L1-dcache-loads style events count)."""
        return self.accesses - self.stores

    @property
    def misses(self) -> int:
        """Demand misses observed at this level."""
        return self.accesses - self.hits

    @property
    def miss_rate(self) -> float:
        """Misses / accesses; 0.0 for an untouched counter."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def merge(self, other: "LevelCounters") -> None:
        """Accumulate ``other`` into this counter."""
        self.accesses += other.accesses
        self.hits += other.hits
        self.writebacks += other.writebacks
        self.stores += other.stores


#: Owner key used to aggregate counters across all threads.
ALL_OWNERS: int = -1


class CacheStats:
    """Accumulates counters keyed by (level, owner).

    ``owner`` is a hardware-thread id; demand accesses with ``owner=None``
    (hierarchy-internal traffic) are attributed only to the aggregate.
    """

    def __init__(self) -> None:
        self._counters: Dict[int, Dict[int, LevelCounters]] = defaultdict(
            lambda: defaultdict(LevelCounters)
        )
        self.memory_reads = 0
        self.memory_writes = 0

    def record_access(
        self, level: int, owner: Optional[int], hit: bool, write: bool = False
    ) -> None:
        """Record one demand access at ``level``."""
        for key in self._owner_keys(owner):
            counter = self._counters[level][key]
            counter.accesses += 1
            if hit:
                counter.hits += 1
            if write:
                counter.stores += 1

    def record_writeback(self, level: int, owner: Optional[int]) -> None:
        """Record one dirty eviction written back *from* ``level``."""
        for key in self._owner_keys(owner):
            self._counters[level][key].writebacks += 1

    @staticmethod
    def _owner_keys(owner: Optional[int]):
        if owner is None or owner == ALL_OWNERS:
            return (ALL_OWNERS,)
        return (owner, ALL_OWNERS)

    def level(self, level: int, owner: Optional[int] = None) -> LevelCounters:
        """Counters for ``level`` restricted to ``owner`` (None = all)."""
        key = ALL_OWNERS if owner is None else owner
        counters = self._counters[level][key]
        # Return a copy so callers cannot corrupt the accumulator.
        return LevelCounters(
            accesses=counters.accesses,
            hits=counters.hits,
            writebacks=counters.writebacks,
            stores=counters.stores,
        )

    def reset(self) -> None:
        """Zero every counter (used between measurement windows)."""
        self._counters.clear()
        self.memory_reads = 0
        self.memory_writes = 0

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Flat dictionary view, for reports and debugging."""
        result: Dict[str, Dict[str, int]] = {}
        for level in sorted(self._counters):
            counters = self._counters[level][ALL_OWNERS]
            result[f"L{level}"] = {
                "accesses": counters.accesses,
                "hits": counters.hits,
                "misses": counters.misses,
                "writebacks": counters.writebacks,
            }
        result["memory"] = {
            "reads": self.memory_reads,
            "writes": self.memory_writes,
        }
        return result
