"""Latency model calibrated to the paper's Table 4.

Measured on the Intel Xeon E5-2650 (Table 4 of the paper):

========================================  ============
Event                                     Cycles
========================================  ============
L1D hit                                   4 - 5
L2 hit, replacing a clean L1 line         10 - 12
L2 hit, replacing a dirty L1 line         22 - 23
========================================  ============

The model therefore anchors ``l1_hit = 4``, ``l2_hit = 11`` and
``l1_writeback_penalty = 11`` (≈ one extra L2-ish transaction to push the
dirty victim down), and adds small uniform jitter so measured distributions
have the paper's 1-2 cycle spread.  Deeper levels follow typical Sandy
Bridge numbers; their absolute values only matter for the benign-workload
statistics, not for the channel itself.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class LatencyModel:
    """Cycle costs of the memory hierarchy events.

    All values are in CPU cycles at the modelled 2.2 GHz clock.
    """

    l1_hit: int = 4
    l2_hit: int = 11
    llc_hit: int = 40
    dram: int = 200
    #: Extra cycles when an L1 fill must first write back a dirty victim.
    l1_writeback_penalty: int = 11
    #: Extra cycles when an L2 fill must first write back a dirty victim.
    l2_writeback_penalty: int = 18
    #: Extra cycles when an LLC fill must first write back a dirty victim.
    llc_writeback_penalty: int = 60
    #: Cost added to a store that must synchronously update the next level
    #: (write-through caches only).
    write_through_store_penalty: int = 7
    #: Base cost of a ``clflush`` that finds nothing to evict.
    flush_base: int = 10
    #: Extra ``clflush`` cycles when the line is actually resident — the
    #: timing difference Flush+Flush decodes with.
    flush_present_extra: int = 14
    #: Cycles a store occupies its *issuing thread*.  Stores retire through
    #: the store buffer, so the thread does not wait for the cache fill —
    #: the paper's sender can dirty all eight lines of a set in a handful
    #: of cycles.  The cache-state effects still happen immediately.
    posted_store_cost: int = 2
    #: Half-width of the uniform jitter added to every access, modelling
    #: bank/port contention between hyper-threads and other unmodelled
    #: microarchitectural noise.  0 disables jitter.
    jitter: int = 1

    def __post_init__(self) -> None:
        ordered = (self.l1_hit, self.l2_hit, self.llc_hit, self.dram)
        if any(value <= 0 for value in ordered):
            raise ConfigurationError("hit latencies must all be positive")
        if list(ordered) != sorted(ordered):
            raise ConfigurationError(
                "latencies must increase with depth: "
                f"l1={self.l1_hit} l2={self.l2_hit} "
                f"llc={self.llc_hit} dram={self.dram}"
            )
        for name in (
            "l1_writeback_penalty",
            "l2_writeback_penalty",
            "llc_writeback_penalty",
            "write_through_store_penalty",
            "posted_store_cost",
            "flush_base",
            "flush_present_extra",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.jitter < 0:
            raise ConfigurationError(f"jitter must be non-negative, got {self.jitter}")

    def hit_latency(self, level: int) -> int:
        """Hit latency of hierarchy level 1 (L1), 2 (L2) or 3 (LLC)."""
        try:
            return (self.l1_hit, self.l2_hit, self.llc_hit)[level - 1]
        except IndexError:
            raise ConfigurationError(f"no such cache level: {level}")

    def writeback_penalty(self, level: int) -> int:
        """Dirty-victim penalty when *level* must evict during a fill."""
        try:
            return (
                self.l1_writeback_penalty,
                self.l2_writeback_penalty,
                self.llc_writeback_penalty,
            )[level - 1]
        except IndexError:
            raise ConfigurationError(f"no such cache level: {level}")

    def sample_jitter(self, rng: random.Random) -> int:
        """Draw one jitter term (uniform in [0, jitter])."""
        if self.jitter == 0:
            return 0
        return rng.randint(0, self.jitter)
