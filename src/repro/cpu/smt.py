"""The SMT core: interleaves hardware threads against a shared hierarchy.

Execution model
---------------
Each thread has a *local clock*.  The core repeatedly takes the runnable
thread with the smallest local clock, executes its next operation against
the shared :class:`~repro.cache.CacheHierarchy`, and advances that thread's
clock by the operation's cost (plus a per-operation issue cost).  This is
the standard conservative co-simulation discipline: shared-state updates
happen in global-time order, so a receiver measurement that overlaps a
sender encode really observes a half-updated target set — the paper's
dominant high-rate error source.

Preemptions from the per-thread :class:`~repro.cpu.noise.SchedulerNoise`
freeze a thread's clock forward by thousands of cycles, producing the bit
loss / insertion errors of Section 5.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.rng import derive_rng, ensure_rng
from repro.cache.hierarchy import CacheHierarchy
from repro.cpu.noise import SchedulerNoise
from repro.cpu.ops import Delay, Flush, Load, Op, RdTSC, ResetStats, SpinUntil, Store
from repro.cpu.thread import HardwareThread
from repro.cpu.tsc import TimestampCounter

#: Cycles charged for issuing any operation (decode + AGU, amortised).
ISSUE_COST = 1

#: Cycles per iteration of a TSC polling loop; SpinUntil exits with a
#: uniform overshoot in [0, SPIN_QUANTUM).  A ``while (rdtsc() < t);`` loop
#: iterates in roughly the cost of one serialising ``rdtscp`` (~25 cycles),
#: so each party re-anchors its period with that granularity.  The
#: resulting random walk of the sender/receiver relative phase is the main
#: reason bit error rates climb at small symbol periods (Figure 6).
SPIN_QUANTUM = 35


class SMTCore:
    """A physical core running up to a few SMT hardware threads.

    The paper uses exactly two hyper-threads; the model accepts more so
    the Table 6 scenarios (sender + benign co-runner) and the noise
    experiments (a third polluter process) reuse the same machinery.
    """

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        threads: Sequence[HardwareThread],
        tsc: Optional[TimestampCounter] = None,
        scheduler_noise: Optional[SchedulerNoise] = None,
        rng: Optional[random.Random] = None,
        max_cycles: float = 5e9,
    ) -> None:
        if not threads:
            raise ConfigurationError("SMTCore needs at least one thread")
        tids = [thread.tid for thread in threads]
        if len(set(tids)) != len(tids):
            raise ConfigurationError(f"duplicate thread ids: {tids}")
        self.hierarchy = hierarchy
        self.threads: List[HardwareThread] = list(threads)
        self.tsc = tsc or TimestampCounter()
        self.scheduler_noise = scheduler_noise or SchedulerNoise.disabled()
        self.rng = ensure_rng(rng)
        self._noise_rngs: Dict[int, random.Random] = {
            thread.tid: derive_rng(self.rng, f"noise/{thread.tid}")
            for thread in self.threads
        }
        self.max_cycles = max_cycles

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Run every thread to completion (or the cycle budget)."""
        for thread in self.threads:
            thread.start()
            noise_rng = self._noise_rngs[thread.tid]
            thread.next_preemption = self.scheduler_noise.next_arrival_after(
                0.0, noise_rng
            )
        # Prime each generator to its first yield.
        for thread in self.threads:
            self._advance(thread, first=True, result=None)

        while True:
            runnable = [t for t in self.threads if not t.finished]
            if not runnable:
                return
            thread = min(runnable, key=lambda t: t.local_time)
            if thread.local_time > self.max_cycles:
                raise SimulationError(
                    f"cycle budget exceeded ({self.max_cycles:g} cycles); "
                    "a program is probably spinning forever"
                )
            op = thread.pending_op  # type: ignore[attr-defined]
            result = self._execute(thread, op)
            self._advance(thread, first=False, result=result)

    def _advance(self, thread: HardwareThread, first: bool, result: object) -> None:
        """Step the thread's generator to its next yield (or finish)."""
        assert thread.generator is not None
        try:
            if first:
                op = next(thread.generator)
            else:
                op = thread.generator.send(result)
        except StopIteration:
            thread.finished = True
            return
        thread.pending_op = op  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Operation execution
    # ------------------------------------------------------------------
    def _execute(self, thread: HardwareThread, op: Op) -> object:
        self._apply_preemptions(thread)
        thread.local_time += ISSUE_COST

        if isinstance(op, Load):
            trace = self.hierarchy.access(
                thread.space.translate(op.address), write=False, owner=thread.tid
            )
            thread.local_time += trace.latency
            return trace.latency
        if isinstance(op, Store):
            trace = self.hierarchy.access(
                thread.space.translate(op.address), write=True, owner=thread.tid
            )
            # Stores are posted: the store buffer hides the fill latency
            # from the issuing thread, though the cache-state change (the
            # dirty bit the WB channel encodes with) has already happened.
            cost = self.hierarchy.latency.posted_store_cost
            thread.local_time += cost
            return cost
        if isinstance(op, Flush):
            cost = self.hierarchy.flush(
                thread.space.translate(op.address), owner=thread.tid
            )
            thread.local_time += cost
            return cost
        if isinstance(op, RdTSC):
            thread.local_time += self.tsc.read_overhead
            value = self.tsc.read(thread.local_time)
            if self.tsc.read_jitter:
                value += self.rng.randint(-self.tsc.read_jitter, self.tsc.read_jitter)
            return value
        if isinstance(op, SpinUntil):
            if thread.local_time < op.target:
                overshoot = self.rng.randrange(SPIN_QUANTUM)
                thread.local_time = op.target + overshoot
                # A long spin may absorb preemptions that arrived during it.
                self._apply_preemptions(thread)
            return self.tsc.read(thread.local_time)
        if isinstance(op, Delay):
            thread.local_time += op.cycles
            return None
        if isinstance(op, ResetStats):
            self.hierarchy.stats.reset()
            bus = self.hierarchy.telemetry
            if bus is not None and bus.enabled:
                # Telemetry subscribers observe the same measurement
                # epoch the counters do: windowing restarts here.
                bus.mark("reset-stats")
            return None
        raise ConfigurationError(f"unknown operation {op!r}")

    def _apply_preemptions(self, thread: HardwareThread) -> None:
        """Charge any OS preemptions that arrived before 'now'."""
        noise_rng = self._noise_rngs[thread.tid]
        while thread.next_preemption <= thread.local_time:
            arrived = thread.next_preemption
            thread.local_time += self.scheduler_noise.sample_duration(noise_rng)
            thread.next_preemption = self.scheduler_noise.next_arrival_after(
                max(arrived, thread.local_time), noise_rng
            )

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def elapsed_cycles(self) -> float:
        """Latest local clock across all threads (total run length)."""
        return max(thread.local_time for thread in self.threads)
