"""Operations a simulated thread can yield to the SMT core.

A thread is a generator; each ``yield`` hands the core one operation and
receives its result (``generator.send``).  The vocabulary is deliberately
tiny — exactly what the paper's PoC programs execute:

=============  =======================================  ==================
Operation      Hardware analogue                        Result sent back
=============  =======================================  ==================
``Load``       ``mov (%r8), %r8``                       latency in cycles
``Store``      ``mov %rax, (%r8)``                      latency in cycles
``Flush``      ``clflush``                              latency in cycles
``RdTSC``      ``rdtscp``                               timestamp value
``SpinUntil``  ``while TSC < t: nothing``               timestamp at exit
``Delay``      a fixed stretch of non-memory work       None
=============  =======================================  ==================

Addresses are *virtual* in the issuing thread's address space; the core
translates through the thread's page table before touching the hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class Load:
    """Demand load of one cache line; result is the access latency."""

    address: int

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ConfigurationError(f"negative address {self.address:#x}")


@dataclass(frozen=True)
class Store:
    """Demand store to one cache line; result is the access latency.

    This is the sender's whole encoding arsenal: a store puts the target
    line into the dirty state (write-back + write-allocate).
    """

    address: int

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ConfigurationError(f"negative address {self.address:#x}")


@dataclass(frozen=True)
class Flush:
    """``clflush``: evict the line from the whole hierarchy."""

    address: int

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ConfigurationError(f"negative address {self.address:#x}")


@dataclass(frozen=True)
class RdTSC:
    """Read the timestamp counter; result is the (quantised) TSC value."""


@dataclass(frozen=True)
class SpinUntil:
    """Busy-wait until the TSC reaches ``target``; result is TSC at exit.

    Models the paper's ``while TSC < T_last + Ts: nothing`` loops, including
    the overshoot granularity of a polling loop.
    """

    target: int

    def __post_init__(self) -> None:
        if self.target < 0:
            raise ConfigurationError(f"negative TSC target {self.target}")


@dataclass(frozen=True)
class Delay:
    """Consume ``cycles`` of compute without touching memory."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ConfigurationError(f"negative delay {self.cycles}")


@dataclass(frozen=True)
class ResetStats:
    """Zero the hierarchy's performance counters.

    Not a hardware instruction: it models attaching ``perf`` to an
    already-running process, so warm-up traffic is excluded from the
    measured counters (Tables 6 and 7).
    """


Op = Union[Load, Store, Flush, RdTSC, SpinUntil, Delay, ResetStats]
