"""Operating-system scheduling noise.

Even pinned hyper-threads are preempted by timer interrupts and kernel
housekeeping.  Each preemption freezes the thread for thousands of cycles,
which at channel level turns into the paper's *bit loss / bit insertion*
errors (Section 5: "three types of errors may occur ... bit flip, bit
insertion, or bit loss").

The model: per-thread preemptions arrive as a Poisson process with mean
spacing ``mean_interval_cycles``; each freezes the thread for a duration
drawn uniformly from ``[min_duration, max_duration]``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class SchedulerNoise:
    """Poisson preemption model for one hardware thread.

    The defaults approximate the residual interrupt load on a pinned,
    mostly-isolated core (a few hundred events per second at 2.2 GHz,
    each costing a microsecond-scale handler).
    """

    mean_interval_cycles: float = 5_000_000.0
    min_duration: int = 1_500
    max_duration: int = 4_500

    def __post_init__(self) -> None:
        if self.mean_interval_cycles <= 0:
            raise ConfigurationError("mean_interval_cycles must be positive")
        if not 0 <= self.min_duration <= self.max_duration:
            raise ConfigurationError(
                "need 0 <= min_duration <= max_duration, got "
                f"[{self.min_duration}, {self.max_duration}]"
            )

    def next_arrival_after(self, now: float, rng: random.Random) -> float:
        """Draw the absolute time of the next preemption after ``now``."""
        return now + rng.expovariate(1.0 / self.mean_interval_cycles)

    def sample_duration(self, rng: random.Random) -> int:
        """Draw the length of one preemption."""
        if self.min_duration == self.max_duration:
            return self.min_duration
        return rng.randint(self.min_duration, self.max_duration)

    @classmethod
    def disabled(cls) -> "SchedulerNoise":
        """A noise model that effectively never fires (clean-room runs)."""
        return cls(mean_interval_cycles=1e18, min_duration=0, max_duration=0)
