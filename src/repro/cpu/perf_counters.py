"""Perf-tool view over the hierarchy's statistics.

Table 6 of the paper reports the *sender process's* miss rates at L1/L2/LLC
under three scenarios, and Table 7 reports cache loads per millisecond.
This module turns raw :class:`~repro.cache.stats.CacheStats` counters into
those derived quantities at the modelled 2.2 GHz clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.errors import ConfigurationError
from repro.common.units import CPU_FREQUENCY_HZ
from repro.cache.stats import CacheStats


def loads_per_millisecond(
    accesses: int, cycles: float, frequency_hz: float = CPU_FREQUENCY_HZ
) -> float:
    """Accesses per wall-clock millisecond for a run of ``cycles`` cycles."""
    if cycles <= 0:
        raise ConfigurationError(f"cycles must be positive, got {cycles}")
    milliseconds = cycles / frequency_hz * 1e3
    return accesses / milliseconds


@dataclass(frozen=True)
class PerfReport:
    """Per-level miss rates and load counts for one hardware thread."""

    owner: Optional[int]
    cycles: float
    l1_accesses: int
    l1_loads: int
    l1_miss_rate: float
    l2_accesses: int
    l2_loads: int
    l2_miss_rate: float
    llc_accesses: int
    llc_loads: int
    llc_miss_rate: float

    @classmethod
    def from_stats(
        cls, stats: CacheStats, owner: Optional[int], cycles: float
    ) -> "PerfReport":
        """Extract a report for ``owner`` from accumulated statistics."""
        l1 = stats.level(1, owner)
        l2 = stats.level(2, owner)
        llc = stats.level(3, owner)
        return cls(
            owner=owner,
            cycles=cycles,
            l1_accesses=l1.accesses,
            l1_loads=l1.loads,
            l1_miss_rate=l1.miss_rate,
            l2_accesses=l2.accesses,
            l2_loads=l2.loads,
            l2_miss_rate=l2.miss_rate,
            llc_accesses=llc.accesses,
            llc_loads=llc.loads,
            llc_miss_rate=llc.miss_rate,
        )

    @property
    def l1_loads_per_ms(self) -> float:
        """L1 demand *loads* per millisecond (Table 7's headline metric;
        perf's load events do not count stores)."""
        return loads_per_millisecond(self.l1_loads, self.cycles)

    @property
    def l2_loads_per_ms(self) -> float:
        """L2 demand loads per millisecond."""
        return loads_per_millisecond(self.l2_loads, self.cycles)

    @property
    def llc_loads_per_ms(self) -> float:
        """LLC demand loads per millisecond."""
        return loads_per_millisecond(self.llc_loads, self.cycles)

    @property
    def total_loads_per_ms(self) -> float:
        """All cache loads per millisecond (the paper's 'Total' row)."""
        return loads_per_millisecond(
            self.l1_loads + self.l2_loads + self.llc_loads, self.cycles
        )

    def miss_rates(self) -> Dict[str, float]:
        """Mapping view used by the Table 6 renderer."""
        return {
            "L1D": self.l1_miss_rate,
            "L2": self.l2_miss_rate,
            "LLC": self.llc_miss_rate,
        }
