"""Hardware threads and the program protocol.

A *program* is any object with a ``run()`` method returning a generator of
:mod:`operations <repro.cpu.ops>`; plain generator functions wrapped in
:func:`as_program` work too.  A :class:`HardwareThread` binds a program to a
hardware-thread id and an address space and holds its scheduling state
(local clock, pending preemption) for the SMT core.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.common.errors import ConfigurationError
from repro.cpu.ops import Op
from repro.mem.address_space import AddressSpace

#: The generator type a program's ``run`` must return: yields operations,
#: receives each operation's result back through ``send``.
OpGenerator = Generator[Op, object, None]


class Program:
    """Base class for simulated programs.

    Subclasses implement :meth:`run`.  The base class exists mostly for
    documentation and isinstance-friendly typing; any object with a
    compatible ``run`` is accepted by :class:`HardwareThread`.
    """

    def run(self) -> OpGenerator:
        """Return the operation generator for one execution."""
        raise NotImplementedError


def as_program(generator_fn: Callable[[], OpGenerator]) -> Program:
    """Wrap a bare generator function into a :class:`Program`."""

    class _FunctionProgram(Program):
        def run(self) -> OpGenerator:
            return generator_fn()

    return _FunctionProgram()


class HardwareThread:
    """One SMT hardware thread: a program plus scheduling state."""

    def __init__(
        self,
        tid: int,
        space: AddressSpace,
        program: Program,
        name: Optional[str] = None,
    ) -> None:
        if tid < 0:
            raise ConfigurationError(f"tid must be non-negative, got {tid}")
        self.tid = tid
        self.space = space
        self.program = program
        self.name = name or f"thread{tid}"
        # --- scheduling state, owned by the SMT core ---
        self.local_time: float = 0.0
        self.generator: Optional[OpGenerator] = None
        self.finished = False
        self.next_preemption: float = float("inf")

    def start(self) -> None:
        """Instantiate the program's generator (idempotent guard)."""
        if self.generator is not None:
            raise ConfigurationError(f"{self.name} already started")
        self.generator = self.program.run()

    def __repr__(self) -> str:
        state = "finished" if self.finished else f"t={self.local_time:.0f}"
        return f"<HardwareThread {self.name} tid={self.tid} {state}>"
