"""CPU substrate: operations, hardware threads, SMT core, TSC, perf view.

The paper's sender and receiver are two processes pinned to the two
hyper-threads of one physical core (``sched_setaffinity``).  We model each
process as a Python generator yielding :mod:`operations <repro.cpu.ops>`;
the :class:`SMTCore` interleaves the two generators in global-time order
against the shared cache hierarchy, which is what makes measurement/encode
overlap — the paper's dominant error source — an emergent property rather
than an injected one.
"""

from repro.cpu.ops import Delay, Flush, Load, Op, RdTSC, SpinUntil, Store
from repro.cpu.thread import HardwareThread, Program
from repro.cpu.tsc import TimestampCounter, TimestampCounterLike
from repro.cpu.noise import SchedulerNoise
from repro.cpu.smt import SMTCore
from repro.cpu.perf_counters import PerfReport, loads_per_millisecond

__all__ = [
    "Delay",
    "Flush",
    "HardwareThread",
    "Load",
    "Op",
    "PerfReport",
    "Program",
    "RdTSC",
    "SMTCore",
    "SchedulerNoise",
    "SpinUntil",
    "Store",
    "TimestampCounter",
    "TimestampCounterLike",
    "loads_per_millisecond",
]
