"""Timestamp-counter model.

``rdtscp`` on real hardware has a read overhead of a few tens of cycles
(pipeline serialisation) and a counter granularity of one core clock.  The
paper works around the serialisation noise with pointer chasing; we model
the residual effects with two parameters: a fixed ``read_overhead`` charged
to the reading thread and a ``granularity`` the returned value is rounded
down to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.common.errors import ConfigurationError


@runtime_checkable
class TimestampCounterLike(Protocol):
    """What the SMT core (and channel configs) require of a TSC model.

    Any object with these members can replace :class:`TimestampCounter` —
    the ablation experiments inject jitter-free variants this way, and
    :class:`~repro.channels.wb.protocol.WBChannelConfig` validates its
    ``tsc`` override against this protocol instead of accepting ``object``.
    """

    #: Cycles the reading thread spends executing the instruction.
    read_overhead: int
    #: Half-width of the serialisation jitter on each read.
    read_jitter: int

    def read(self, local_time: float) -> int:
        """TSC value observed by a thread whose clock shows ``local_time``."""
        ...


@dataclass(frozen=True)
class TimestampCounter:
    """Behavioural model of ``rdtscp``."""

    #: Cycles the reading thread spends executing the instruction.
    read_overhead: int = 8
    #: Returned values are floor-rounded to a multiple of this.
    granularity: int = 1
    #: Half-width of the serialisation jitter on each read.  ``rdtscp``
    #: drains the pipeline, and how much work is in flight varies; the
    #: paper calls this "the noise caused by serialization" (Section 4.2).
    #: A latency measured between two reads therefore carries triangular
    #: noise of up to ±2*read_jitter — the ambient noise floor that makes
    #: small-margin symbols (d=1) occasionally flip.
    read_jitter: int = 2

    def __post_init__(self) -> None:
        if self.read_overhead < 0:
            raise ConfigurationError(
                f"read_overhead must be non-negative, got {self.read_overhead}"
            )
        if self.granularity <= 0:
            raise ConfigurationError(
                f"granularity must be positive, got {self.granularity}"
            )
        if self.read_jitter < 0:
            raise ConfigurationError(
                f"read_jitter must be non-negative, got {self.read_jitter}"
            )

    def read(self, local_time: float) -> int:
        """TSC value observed by a thread whose clock shows ``local_time``."""
        value = int(local_time)
        return value - (value % self.granularity)
