"""Construction of target-set and replacement-set address collections.

Section 4 of the paper: the receiver allocates an array spanning the L1 and
picks the virtual lines whose index bits equal the target set; consecutive
4 KB strides give lines with equal index but distinct tags.  These helpers
build such collections inside a given :class:`~repro.mem.AddressSpace`.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng
from repro.mem.address import AddressLayout
from repro.mem.address_space import AddressSpace


def build_set_conflicting_lines(
    space: AddressSpace,
    layout: AddressLayout,
    target_set: int,
    count: int,
) -> List[int]:
    """Return ``count`` virtual line addresses that all map to ``target_set``.

    Addresses come from a fresh buffer in ``space`` at successive
    set-conflict strides, i.e. equal VIPT index, distinct tags.  Pages are
    touched eagerly so that page faults never land inside a timed region.
    """
    if not 0 <= target_set < layout.num_sets:
        raise ConfigurationError(
            f"target_set {target_set} out of range [0, {layout.num_sets})"
        )
    if count <= 0:
        raise ConfigurationError(f"count must be positive, got {count}")
    stride = layout.stride_between_conflicts()
    base = space.allocate_buffer(stride * count)
    lines = [base + i * stride + target_set * layout.line_size for i in range(count)]
    for line in lines:
        space.translate(line)
    return lines


def build_replacement_set(
    space: AddressSpace,
    layout: AddressLayout,
    target_set: int,
    size: int,
    rng: Optional[random.Random] = None,
) -> List[int]:
    """Build a replacement set: ``size`` conflicting lines, randomly ordered.

    The paper permutes the traversal order randomly so the hardware
    prefetcher cannot learn the stride (Section 4.2).  Our simulator has no
    prefetcher, but keeping the permutation preserves the access pattern the
    receiver really executes and keeps the builder reusable on substrates
    that do model one.
    """
    lines = build_set_conflicting_lines(space, layout, target_set, size)
    generator = ensure_rng(rng)
    generator.shuffle(lines)
    return lines
