"""Address bit-field layout for set-associative caches.

For the paper's L1 (64 sets, 64-byte lines) virtual-address bits 0-5 are the
line offset and bits 6-11 select the set; everything above is the tag.  The
same layout object also serves the (physically indexed) L2 and LLC, just with
more sets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class AddressLayout:
    """Split addresses into (tag, set index, line offset) fields.

    Parameters
    ----------
    line_size:
        Cache line size in bytes; must be a power of two.
    num_sets:
        Number of sets in the cache; must be a power of two.
    """

    line_size: int = 64
    num_sets: int = 64

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.line_size):
            raise ConfigurationError(
                f"line_size must be a power of two, got {self.line_size}"
            )
        if not _is_power_of_two(self.num_sets):
            raise ConfigurationError(
                f"num_sets must be a power of two, got {self.num_sets}"
            )

    @property
    def offset_bits(self) -> int:
        """Number of low-order bits addressing bytes within a line."""
        return self.line_size.bit_length() - 1

    @property
    def index_bits(self) -> int:
        """Number of bits selecting the cache set."""
        return self.num_sets.bit_length() - 1

    def line_offset(self, address: int) -> int:
        """Byte offset of ``address`` within its cache line."""
        return address & (self.line_size - 1)

    def set_index(self, address: int) -> int:
        """Cache-set index of ``address``."""
        return (address >> self.offset_bits) & (self.num_sets - 1)

    def tag(self, address: int) -> int:
        """Tag bits of ``address`` (everything above the index)."""
        return address >> (self.offset_bits + self.index_bits)

    def line_address(self, address: int) -> int:
        """``address`` rounded down to the start of its cache line."""
        return address & ~(self.line_size - 1)

    def compose(self, tag: int, set_index: int, offset: int = 0) -> int:
        """Build an address from its fields (inverse of the extractors).

        >>> layout = AddressLayout(line_size=64, num_sets=64)
        >>> addr = layout.compose(tag=3, set_index=17, offset=8)
        >>> layout.tag(addr), layout.set_index(addr), layout.line_offset(addr)
        (3, 17, 8)
        """
        if not 0 <= set_index < self.num_sets:
            raise ConfigurationError(
                f"set_index {set_index} out of range [0, {self.num_sets})"
            )
        if not 0 <= offset < self.line_size:
            raise ConfigurationError(
                f"offset {offset} out of range [0, {self.line_size})"
            )
        if tag < 0:
            raise ConfigurationError(f"tag must be non-negative, got {tag}")
        return (
            (tag << (self.offset_bits + self.index_bits))
            | (set_index << self.offset_bits)
            | offset
        )

    def stride_between_conflicts(self) -> int:
        """Distance in bytes between two addresses mapping to the same set.

        For the paper's L1 this is 4096 bytes: an array the size of the cache
        (32 KB) contains exactly eight lines per set.
        """
        return self.line_size * self.num_sets
