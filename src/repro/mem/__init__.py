"""Memory substrate: addresses, paging, per-process address spaces.

The paper's threat model has the sender and receiver as *separate Linux
processes* with no shared memory, co-resident on one SMT core.  We model this
with per-process virtual address spaces backed by a shared physical frame
allocator: distinct processes get distinct frames, hence distinct cache tags,
while the VIPT L1 lets both sides aim at the same *set index* purely from
virtual addresses — exactly the property the attack relies on.
"""

from repro.mem.address import AddressLayout
from repro.mem.address_space import AddressSpace, FrameAllocator, PAGE_SIZE
from repro.mem.pointer_chase import PointerChaseList
from repro.mem.sets import build_replacement_set, build_set_conflicting_lines

__all__ = [
    "AddressLayout",
    "AddressSpace",
    "FrameAllocator",
    "PAGE_SIZE",
    "PointerChaseList",
    "build_replacement_set",
    "build_set_conflicting_lines",
]
