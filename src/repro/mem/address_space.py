"""Per-process virtual address spaces over a shared physical memory.

The simulator needs just enough of an MMU to make the paper's threat model
real: the sender and receiver are distinct processes, so their cache lines
must carry distinct physical tags even when they collide on a VIPT set index.
We model 4 KB pages, identity page-offset translation, and a global frame
allocator handing out distinct frames per process.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.rng import ensure_rng

#: Page size in bytes.  4 KB matches x86 and, importantly, is exactly the
#: stride between L1 set-index conflicts for a 32 KB / 8-way / 64 B cache, so
#: VIPT and PIPT indexing agree for the L1 — the property that lets the
#: receiver build a replacement set from virtual addresses alone.
PAGE_SIZE: int = 4096

_OFFSET_MASK = PAGE_SIZE - 1


class FrameAllocator:
    """Hands out physical page frames to address spaces.

    Frames can be handed out sequentially (deterministic, useful in tests) or
    in a shuffled order (models the unpredictability of real frame
    allocation, which only matters for physically indexed levels).
    """

    def __init__(
        self,
        total_frames: int = 1 << 20,
        shuffle: bool = False,
        rng: Optional[random.Random] = None,
    ) -> None:
        if total_frames <= 0:
            raise ConfigurationError(
                f"total_frames must be positive, got {total_frames}"
            )
        self.total_frames = total_frames
        self._next_frame = 0
        self._shuffle = shuffle
        self._rng = ensure_rng(rng)
        self._free: List[int] = []

    def allocate(self) -> int:
        """Return a frame number never handed out before (or since freed)."""
        if self._free:
            return self._free.pop()
        if self._next_frame >= self.total_frames:
            raise SimulationError("physical memory exhausted")
        if self._shuffle:
            # Reservoir-free shuffled allocation: pick a random frame among
            # the not-yet-used tail by swapping indices lazily.  For the scale
            # of this simulator a simple random skip suffices.
            span = self.total_frames - self._next_frame
            offset = self._rng.randrange(min(span, 4096))
            frame = self._next_frame + offset
            # Keep monotone progress; duplicates are avoided by advancing
            # past the chosen frame and recycling skipped ones as free.
            for skipped in range(self._next_frame, frame):
                self._free.append(skipped)
            self._next_frame = frame + 1
            return frame
        frame = self._next_frame
        self._next_frame += 1
        return frame

    def release(self, frame: int) -> None:
        """Return ``frame`` to the allocator."""
        if not 0 <= frame < self.total_frames:
            raise ConfigurationError(f"frame {frame} out of range")
        self._free.append(frame)


@dataclass
class AddressSpace:
    """A process's virtual address space with on-demand page mapping.

    Virtual addresses are plain integers.  :meth:`translate` maps them to
    physical addresses, faulting in pages from the shared allocator the first
    time each page is touched (anonymous-mmap semantics — all the paper's
    attack buffers are ordinary arrays).
    """

    pid: int
    allocator: FrameAllocator
    page_table: Dict[int, int] = field(default_factory=dict)
    _next_alloc_va: int = field(default=0x1000_0000, repr=False)

    def translate(self, virtual_address: int) -> int:
        """Translate ``virtual_address``, mapping its page on first touch."""
        if virtual_address < 0:
            raise ConfigurationError(
                f"virtual address must be non-negative, got {virtual_address:#x}"
            )
        page = virtual_address >> 12
        frame = self.page_table.get(page)
        if frame is None:
            frame = self.allocator.allocate()
            self.page_table[page] = frame
        return (frame << 12) | (virtual_address & _OFFSET_MASK)

    def is_mapped(self, virtual_address: int) -> bool:
        """Whether the page containing ``virtual_address`` is mapped."""
        return (virtual_address >> 12) in self.page_table

    def allocate_buffer(self, size: int, align: int = PAGE_SIZE) -> int:
        """Reserve a fresh region of virtual addresses and return its base.

        The region is only *reserved* here; pages fault in lazily on first
        translate, like anonymous mmap.  ``align`` must be a power of two.
        """
        if size <= 0:
            raise ConfigurationError(f"size must be positive, got {size}")
        if align <= 0 or align & (align - 1):
            raise ConfigurationError(f"align must be a power of two, got {align}")
        base = (self._next_alloc_va + align - 1) & ~(align - 1)
        self._next_alloc_va = base + size
        return base

    def touch_range(self, base: int, size: int) -> None:
        """Eagerly map every page in ``[base, base + size)``.

        The attack code does this to keep page faults out of the timed
        region, mirroring the warm-up loops in the paper's PoC.
        """
        if size <= 0:
            raise ConfigurationError(f"size must be positive, got {size}")
        page = base >> 12
        last_page = (base + size - 1) >> 12
        for current in range(page, last_page + 1):
            self.translate(current << 12)
