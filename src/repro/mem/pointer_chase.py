"""Pointer-chase linked list used for fine-grained latency measurement.

Listing 1 of the paper measures replacement latency with a chain of
dependent ``mov (%r8), %r8`` loads bracketed by ``rdtscp``: each load's
address comes from the previous load's data, so the accesses are fully
serialized and a single timer read covers the whole traversal.

The simulator reproduces the *structure*: a :class:`PointerChaseList` owns the
line addresses in traversal order, and the receiver issues the loads
back-to-back as dependent operations (the SMT core charges them
sequentially, which is exactly what the data dependency enforces on real
hardware).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng


@dataclass
class PointerChaseList:
    """A linked list threaded through a collection of cache-line addresses.

    ``order`` is the traversal order: element ``i`` conceptually stores the
    address of element ``i + 1``.  Traversal is what the receiver times.
    """

    order: List[int]

    def __post_init__(self) -> None:
        if not self.order:
            raise ConfigurationError("pointer-chase list cannot be empty")
        if len(set(self.order)) != len(self.order):
            raise ConfigurationError("pointer-chase list has duplicate nodes")

    @classmethod
    def from_lines(
        cls,
        lines: Sequence[int],
        rng: Optional[random.Random] = None,
        permute: bool = True,
    ) -> "PointerChaseList":
        """Thread a list through ``lines``, randomly permuted by default.

        Random permutation defeats stride prefetchers on real hardware
        (Section 4.2 of the paper); we keep it for fidelity of the issued
        access sequence.
        """
        order = list(lines)
        if permute:
            ensure_rng(rng).shuffle(order)
        return cls(order)

    def __len__(self) -> int:
        return len(self.order)

    def __iter__(self) -> Iterator[int]:
        return iter(self.order)

    @property
    def head(self) -> int:
        """Address of the first node (the value loaded into ``%rbx``)."""
        return self.order[0]

    def successor(self, address: int) -> Optional[int]:
        """Address stored at node ``address`` (None at the tail)."""
        try:
            position = self.order.index(address)
        except ValueError:
            raise ConfigurationError(f"{address:#x} is not a node of this list")
        if position + 1 == len(self.order):
            return None
        return self.order[position + 1]
