"""Dependency-free SVG rendering of the paper's figures.

The offline environment has no plotting stack, so this module implements
the minimal chart vocabulary the reproduction needs — scatter/line series
with axes, ticks and a legend — as direct SVG generation.  The figure
experiments use it to write real image artifacts next to their numeric
tables (``examples/render_figures.py`` drives it).

Not a general plotting library: two chart types, sensible defaults,
deterministic output (stable text, no timestamps) so figures diff cleanly
across runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError

#: Categorical colours (colour-blind-safe Okabe-Ito subset).
PALETTE = ("#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9",
           "#F0E442", "#000000")


@dataclass
class Series:
    """One named data series: points, drawn as a line, dots, or steps."""

    label: str
    points: Sequence[Tuple[float, float]]
    mode: str = "line"  # "line" | "dots" | "line+dots"

    def __post_init__(self) -> None:
        if not self.points:
            raise ConfigurationError(f"series {self.label!r} has no points")
        if self.mode not in ("line", "dots", "line+dots"):
            raise ConfigurationError(f"unknown mode {self.mode!r}")


@dataclass
class Chart:
    """A single-panel chart rendered to SVG."""

    title: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)
    #: Horizontal guide lines (e.g. decoder thresholds), as (label, y).
    guides: List[Tuple[str, float]] = field(default_factory=list)
    width: int = 640
    height: int = 400
    log_x: bool = False

    _MARGIN_LEFT = 62
    _MARGIN_RIGHT = 16
    _MARGIN_TOP = 34
    _MARGIN_BOTTOM = 46

    def add_series(self, label: str, points: Sequence[Tuple[float, float]],
                   mode: str = "line") -> None:
        """Append a data series."""
        self.series.append(Series(label=label, points=points, mode=mode))

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def _bounds(self) -> Tuple[float, float, float, float]:
        if not self.series:
            raise ConfigurationError("chart has no series")
        xs = [x for s in self.series for x, _ in s.points]
        ys = [y for s in self.series for _, y in s.points]
        ys += [y for _, y in self.guides]
        x_min, x_max = min(xs), max(xs)
        y_min, y_max = min(ys), max(ys)
        if x_min == x_max:
            x_min, x_max = x_min - 1, x_max + 1
        if y_min == y_max:
            y_min, y_max = y_min - 1, y_max + 1
        # Pad y a little so extreme points are not on the frame.
        pad = 0.06 * (y_max - y_min)
        return x_min, x_max, y_min - pad, y_max + pad

    def _x_pixel(self, x: float, x_min: float, x_max: float) -> float:
        if self.log_x:
            if x <= 0 or x_min <= 0:
                raise ConfigurationError("log_x requires positive x values")
            fraction = (math.log10(x) - math.log10(x_min)) / (
                math.log10(x_max) - math.log10(x_min)
            )
        else:
            fraction = (x - x_min) / (x_max - x_min)
        usable = self.width - self._MARGIN_LEFT - self._MARGIN_RIGHT
        return self._MARGIN_LEFT + fraction * usable

    def _y_pixel(self, y: float, y_min: float, y_max: float) -> float:
        fraction = (y - y_min) / (y_max - y_min)
        usable = self.height - self._MARGIN_TOP - self._MARGIN_BOTTOM
        return self.height - self._MARGIN_BOTTOM - fraction * usable

    @staticmethod
    def _ticks(low: float, high: float, count: int = 5) -> List[float]:
        """Round tick positions covering [low, high]."""
        span = high - low
        if span <= 0:
            return [low]
        raw_step = span / count
        magnitude = 10 ** math.floor(math.log10(raw_step))
        for multiplier in (1, 2, 5, 10):
            step = multiplier * magnitude
            if step >= raw_step:
                break
        first = math.ceil(low / step) * step
        ticks = []
        value = first
        while value <= high + 1e-9:
            ticks.append(round(value, 10))
            value += step
        return ticks

    @staticmethod
    def _fmt(value: float) -> str:
        if value == int(value) and abs(value) < 1e6:
            return str(int(value))
        return f"{value:g}"

    def to_svg(self) -> str:
        """Render the chart as an SVG document string."""
        x_min, x_max, y_min, y_max = self._bounds()
        parts: List[str] = []
        parts.append(
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}" '
            f'font-family="Helvetica, Arial, sans-serif">'
        )
        parts.append(f'<rect width="{self.width}" height="{self.height}" fill="white"/>')
        parts.append(
            f'<text x="{self.width / 2:.0f}" y="20" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{_escape(self.title)}</text>'
        )
        # Plot frame.
        frame_left = self._MARGIN_LEFT
        frame_right = self.width - self._MARGIN_RIGHT
        frame_top = self._MARGIN_TOP
        frame_bottom = self.height - self._MARGIN_BOTTOM
        parts.append(
            f'<rect x="{frame_left}" y="{frame_top}" '
            f'width="{frame_right - frame_left}" height="{frame_bottom - frame_top}" '
            f'fill="none" stroke="#444" stroke-width="1"/>'
        )
        # Ticks + grid.
        for tick in self._ticks(y_min, y_max):
            y_px = self._y_pixel(tick, y_min, y_max)
            parts.append(
                f'<line x1="{frame_left}" y1="{y_px:.1f}" x2="{frame_right}" '
                f'y2="{y_px:.1f}" stroke="#ddd" stroke-width="0.5"/>'
            )
            parts.append(
                f'<text x="{frame_left - 6}" y="{y_px + 4:.1f}" text-anchor="end" '
                f'font-size="10">{self._fmt(tick)}</text>'
            )
        x_tick_values = (
            [p for s in self.series for p, _ in s.points]
            if self.log_x
            else self._ticks(x_min, x_max)
        )
        for tick in sorted(set(x_tick_values)):
            x_px = self._x_pixel(tick, x_min, x_max)
            parts.append(
                f'<line x1="{x_px:.1f}" y1="{frame_bottom}" x2="{x_px:.1f}" '
                f'y2="{frame_bottom + 4}" stroke="#444" stroke-width="1"/>'
            )
            parts.append(
                f'<text x="{x_px:.1f}" y="{frame_bottom + 16}" text-anchor="middle" '
                f'font-size="10">{self._fmt(tick)}</text>'
            )
        # Axis labels.
        parts.append(
            f'<text x="{(frame_left + frame_right) / 2:.0f}" '
            f'y="{self.height - 8}" text-anchor="middle" font-size="11">'
            f'{_escape(self.x_label)}</text>'
        )
        parts.append(
            f'<text x="14" y="{(frame_top + frame_bottom) / 2:.0f}" '
            f'text-anchor="middle" font-size="11" '
            f'transform="rotate(-90 14 {(frame_top + frame_bottom) / 2:.0f})">'
            f'{_escape(self.y_label)}</text>'
        )
        # Guides.
        for label, y_value in self.guides:
            y_px = self._y_pixel(y_value, y_min, y_max)
            parts.append(
                f'<line x1="{frame_left}" y1="{y_px:.1f}" x2="{frame_right}" '
                f'y2="{y_px:.1f}" stroke="#888" stroke-width="1" '
                f'stroke-dasharray="5,4"/>'
            )
            parts.append(
                f'<text x="{frame_right - 4}" y="{y_px - 4:.1f}" text-anchor="end" '
                f'font-size="9" fill="#666">{_escape(label)}</text>'
            )
        # Series.
        for index, series in enumerate(self.series):
            colour = PALETTE[index % len(PALETTE)]
            pixels = [
                (self._x_pixel(x, x_min, x_max), self._y_pixel(y, y_min, y_max))
                for x, y in series.points
            ]
            if "line" in series.mode and len(pixels) > 1:
                path = " ".join(f"{x:.1f},{y:.1f}" for x, y in pixels)
                parts.append(
                    f'<polyline points="{path}" fill="none" stroke="{colour}" '
                    f'stroke-width="1.8"/>'
                )
            if "dots" in series.mode:
                for x_px, y_px in pixels:
                    parts.append(
                        f'<circle cx="{x_px:.1f}" cy="{y_px:.1f}" r="2.2" '
                        f'fill="{colour}"/>'
                    )
        # Legend.
        legend_x = frame_left + 10
        legend_y = frame_top + 14
        for index, series in enumerate(self.series):
            colour = PALETTE[index % len(PALETTE)]
            y_px = legend_y + index * 15
            parts.append(
                f'<line x1="{legend_x}" y1="{y_px - 4}" x2="{legend_x + 18}" '
                f'y2="{y_px - 4}" stroke="{colour}" stroke-width="2.5"/>'
            )
            parts.append(
                f'<text x="{legend_x + 24}" y="{y_px}" font-size="10">'
                f'{_escape(series.label)}</text>'
            )
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path: str) -> None:
        """Write the SVG document to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.to_svg())


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def cdf_chart(
    title: str,
    samples_by_label: "dict[str, Sequence[float]]",
    x_label: str = "latency (cycles)",
) -> Chart:
    """Build a CDF chart (the Figure 4 form) from labelled sample sets."""
    from repro.analysis.cdf import empirical_cdf

    chart = Chart(title=title, x_label=x_label, y_label="CDF")
    for label, samples in samples_by_label.items():
        chart.add_series(label, empirical_cdf(samples), mode="line")
    return chart


def trace_chart(
    title: str,
    latencies: Sequence[float],
    thresholds: Sequence[float] = (),
) -> Chart:
    """Build a received-trace chart (the Figure 5/7 form)."""
    chart = Chart(
        title=title,
        x_label="sample index",
        y_label="replacement latency (cycles)",
    )
    chart.add_series(
        "receiver samples",
        [(float(i), float(v)) for i, v in enumerate(latencies)],
        mode="dots",
    )
    for index, threshold in enumerate(thresholds):
        chart.guides.append((f"threshold {index + 1}", float(threshold)))
    return chart


def ber_chart(
    title: str,
    curves: "dict[str, Sequence[Tuple[float, float]]]",
) -> Chart:
    """Build a BER-vs-rate chart (the Figure 6/8 form), log-x in Kbps."""
    chart = Chart(
        title=title,
        x_label="transmission rate (Kbps)",
        y_label="bit error rate",
        log_x=True,
    )
    for label, points in curves.items():
        chart.add_series(label, points, mode="line+dots")
    return chart


__all__: Optional[List[str]] = [
    "Chart",
    "PALETTE",
    "Series",
    "ber_chart",
    "cdf_chart",
    "trace_chart",
]
