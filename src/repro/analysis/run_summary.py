"""Run-manifest summaries: what a multi-experiment run cost and produced.

Turns a :class:`~repro.runner.manifest.RunManifest` into the same
plain-text table style the experiments themselves render, plus aggregate
wall-clock/speedup figures — the ``wb-experiments`` CLI prints this after
multi-task runs.
"""

from __future__ import annotations

from typing import List


def manifest_table(manifest):
    """The per-task outcome table as an :class:`ExperimentResult`.

    Reusing the result type means the summary renders, serialises and
    round-trips exactly like any experiment output.  (The import is
    deferred because :mod:`repro.experiments` pulls in the channel stack,
    which itself imports :mod:`repro.analysis` — importing at module scope
    would be circular.)
    """
    from repro.experiments.base import ExperimentResult
    rows: List[List[object]] = []
    for entry in manifest.entries:
        rows.append(
            [
                entry.task_id,
                entry.status,
                f"{entry.wall_seconds:.1f}",
                "-" if entry.worker_id is None else entry.worker_id,
                entry.attempts,
                entry.seed,
            ]
        )
    return ExperimentResult(
        experiment_id="run_summary",
        title="Run summary",
        paper_reference=f"{len(manifest.entries)} task(s), "
        f"profile {manifest.profile_name}, {manifest.jobs} job(s)",
        columns=["task", "status", "seconds", "worker", "attempts", "seed"],
        rows=rows,
        notes=_aggregate_note(manifest),
    )


def _aggregate_note(manifest) -> str:
    compute = sum(entry.wall_seconds for entry in manifest.entries)
    wall = manifest.total_wall_seconds
    note = f"aggregate compute {compute:.1f}s in {wall:.1f}s wall-clock"
    if wall > 0 and manifest.jobs > 1:
        note += f" ({compute / wall:.1f}x parallel speedup)"
    failures = manifest.failures
    if failures:
        note += f"; {len(failures)} task(s) failed"
    return note


def summarize_manifest(manifest) -> str:
    """Rendered text summary of a run manifest."""
    return manifest_table(manifest).render()
