"""Performance-counter-based detection analysis.

Section 7 of the paper argues the WB channel is stealthy because the
sender's miss-rate profile is hard to distinguish from contention caused by
benign co-runners.  This module quantifies that claim: given per-level miss
profiles of a suspect process under two scenarios, it computes a simple
distinguishability score a counter-based detector (CloudRadar-style) would
rely on.

Profiles come from :class:`repro.telemetry.subscribers.WindowedCounters`
(pass the counters directly, optionally with ``owner=`` to select one
thread) — its :meth:`miss_profile` view is the canonical source.  The old
plain-``Mapping[str, float]`` path (deprecated with a warning when the
telemetry rebase landed) has been removed; passing one raises a
:class:`TypeError` naming the replacement.  For *online* (windowed,
calibrated) detection see :mod:`repro.telemetry.detectors`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.telemetry.subscribers import WindowedCounters

#: The one accepted profile source: the live telemetry counters.
ProfileSource = WindowedCounters

#: Level names used when extracting a profile from counters.
DEFAULT_LEVEL_NAMES = ("L1D", "L2", "LLC")


@dataclass(frozen=True)
class DetectionReport:
    """How far apart two miss-rate profiles are, per level and overall."""

    per_level_delta: Dict[str, float]
    max_delta: float
    distinguishable: bool
    threshold: float

    def __str__(self) -> str:
        deltas = ", ".join(
            f"{level}:{delta:+.3f}" for level, delta in self.per_level_delta.items()
        )
        verdict = "DISTINGUISHABLE" if self.distinguishable else "benign-like"
        return f"{verdict} (max |delta| {self.max_delta:.3f}; {deltas})"


def _as_profile(
    source: ProfileSource,
    role: str,
    owner: Optional[int],
    level_names: Sequence[str],
) -> Dict[str, float]:
    if isinstance(source, WindowedCounters):
        return source.miss_profile(level_names=level_names, owner=owner)
    raise TypeError(
        f"the plain-mapping profile path has been removed; pass the "
        f"telemetry WindowedCounters (repro.telemetry.subscribers) as the "
        f"{role} profile, got {type(source).__name__}"
    )


def compare_miss_profiles(
    suspect: ProfileSource,
    baseline: ProfileSource,
    threshold: float = 0.10,
    *,
    owner: Optional[int] = None,
    level_names: Sequence[str] = DEFAULT_LEVEL_NAMES,
) -> DetectionReport:
    """Compare two per-level miss-rate profiles.

    ``suspect`` and ``baseline`` are the telemetry
    :class:`~repro.telemetry.subscribers.WindowedCounters` of the two
    runs (``owner`` selects one thread's view; ``level_names`` label the
    hierarchy levels outer-to-inner).  The profiles are
    *distinguishable* when any level's absolute
    miss-rate difference exceeds ``threshold`` — a deliberately generous
    detector model: if even this flags nothing, a real detector with
    measurement noise certainly will not.
    """
    suspect_profile = _as_profile(suspect, "suspect", owner, level_names)
    baseline_profile = _as_profile(baseline, "baseline", owner, level_names)
    if not suspect_profile:
        raise ConfigurationError("suspect profile is empty")
    if set(suspect_profile) != set(baseline_profile):
        raise ConfigurationError(
            f"profiles cover different levels: {sorted(suspect_profile)} "
            f"vs {sorted(baseline_profile)}"
        )
    if not 0 < threshold < 1:
        raise ConfigurationError(f"threshold must be in (0, 1), got {threshold}")
    deltas = {
        level: suspect_profile[level] - baseline_profile[level]
        for level in sorted(suspect_profile)
    }
    max_delta = max(abs(delta) for delta in deltas.values())
    return DetectionReport(
        per_level_delta=deltas,
        max_delta=max_delta,
        distinguishable=max_delta > threshold,
        threshold=threshold,
    )
