"""Performance-counter-based detection analysis.

Section 7 of the paper argues the WB channel is stealthy because the
sender's miss-rate profile is hard to distinguish from contention caused by
benign co-runners.  This module quantifies that claim: given per-level miss
profiles of a suspect process under two scenarios, it computes a simple
distinguishability score a counter-based detector (CloudRadar-style) would
rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class DetectionReport:
    """How far apart two miss-rate profiles are, per level and overall."""

    per_level_delta: Dict[str, float]
    max_delta: float
    distinguishable: bool
    threshold: float

    def __str__(self) -> str:
        deltas = ", ".join(
            f"{level}:{delta:+.3f}" for level, delta in self.per_level_delta.items()
        )
        verdict = "DISTINGUISHABLE" if self.distinguishable else "benign-like"
        return f"{verdict} (max |delta| {self.max_delta:.3f}; {deltas})"


def compare_miss_profiles(
    suspect: Mapping[str, float],
    baseline: Mapping[str, float],
    threshold: float = 0.10,
) -> DetectionReport:
    """Compare two per-level miss-rate profiles.

    ``suspect`` and ``baseline`` map level names (``"L1D"``, ``"L2"``,
    ``"LLC"``) to miss rates in [0, 1].  The profiles are *distinguishable*
    when any level's absolute miss-rate difference exceeds ``threshold`` —
    a deliberately generous detector model: if even this flags nothing, a
    real detector with measurement noise certainly will not.
    """
    if not suspect:
        raise ConfigurationError("suspect profile is empty")
    if set(suspect) != set(baseline):
        raise ConfigurationError(
            f"profiles cover different levels: {sorted(suspect)} vs {sorted(baseline)}"
        )
    if not 0 < threshold < 1:
        raise ConfigurationError(f"threshold must be in (0, 1), got {threshold}")
    deltas = {
        level: suspect[level] - baseline[level] for level in sorted(suspect)
    }
    max_delta = max(abs(delta) for delta in deltas.values())
    return DetectionReport(
        per_level_delta=deltas,
        max_delta=max_delta,
        distinguishable=max_delta > threshold,
        threshold=threshold,
    )
