"""Bit-error-rate evaluation with preamble alignment.

Mirrors the paper's measurement procedure (Section 5): the first sixteen
bits of every message are a fixed pattern the receiver uses for alignment,
and the quality metric is ``edit_distance(sent, received) / len(sent)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.common.bits import hamming_distance, validate_bits
from repro.common.errors import ProtocolError
from repro.analysis.edit_distance import edit_distance

#: The fixed 16-bit alignment preamble (alternating bits, easy to spot in
#: the latency traces of Figures 5 and 7).
DEFAULT_PREAMBLE: List[int] = [1, 0] * 8


def bit_error_rate(sent: Sequence[int], received: Sequence[int]) -> float:
    """Edit distance between the sequences, normalised by the sent length."""
    if not sent:
        raise ProtocolError("sent sequence is empty")
    validate_bits(sent)
    validate_bits(received)
    return edit_distance(sent, received) / len(sent)


def align_by_preamble(
    received: Sequence[int],
    preamble: Sequence[int],
    max_offset: int,
) -> int:
    """Find the offset in ``received`` where ``preamble`` matches best.

    Scans offsets ``0..max_offset`` and returns the one minimising the
    Hamming distance against the preamble (ties go to the smallest offset,
    i.e. the nominal alignment).
    """
    if not preamble:
        raise ProtocolError("preamble is empty")
    if max_offset < 0:
        raise ProtocolError(f"max_offset must be non-negative, got {max_offset}")
    best_offset = 0
    best_score = len(preamble) + 1
    for offset in range(max_offset + 1):
        window = received[offset : offset + len(preamble)]
        if len(window) < len(preamble):
            break
        score = hamming_distance(list(window), list(preamble))
        if score < best_score:
            best_score = score
            best_offset = offset
    return best_offset


@dataclass(frozen=True)
class BitErrorReport:
    """Outcome of one sent-vs-received comparison."""

    sent: Sequence[int]
    received: Sequence[int]
    offset: int
    errors: int
    ber: float

    def __str__(self) -> str:
        return (
            f"BER {self.ber:.3%} ({self.errors} errors over "
            f"{len(self.sent)} bits, alignment offset {self.offset})"
        )


def evaluate_transmission(
    sent: Sequence[int],
    received_raw: Sequence[int],
    preamble_length: int,
    alignment_slack: int = 0,
) -> BitErrorReport:
    """Align the raw received stream and score it against ``sent``.

    ``sent`` must begin with the preamble (its first ``preamble_length``
    bits).  ``received_raw`` may contain up to ``alignment_slack`` extra
    leading samples; the preamble search absorbs them.
    """
    if preamble_length > len(sent):
        raise ProtocolError(
            f"preamble_length {preamble_length} exceeds message length {len(sent)}"
        )
    if preamble_length > 0 and alignment_slack > 0:
        offset = align_by_preamble(
            received_raw, sent[:preamble_length], alignment_slack
        )
    else:
        offset = 0
    received = list(received_raw[offset : offset + len(sent)])
    errors = edit_distance(sent, received)
    return BitErrorReport(
        sent=list(sent),
        received=received,
        offset=offset,
        errors=errors,
        ber=errors / len(sent),
    )
