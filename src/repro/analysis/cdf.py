"""Distribution helpers: empirical CDFs, histograms, latency summaries.

Figure 4 of the paper is a CDF of replacement latencies per dirty-line
count; these helpers produce the same series numerically so experiments and
benchmarks can print (and tests can assert on) the distributions.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.common.errors import ConfigurationError


def empirical_cdf(samples: Sequence[float]) -> List[Tuple[float, float]]:
    """Sorted ``(value, cumulative_fraction)`` points of the empirical CDF."""
    if not samples:
        raise ConfigurationError("cannot build a CDF from zero samples")
    ordered = sorted(samples)
    n = len(ordered)
    points: List[Tuple[float, float]] = []
    for index, value in enumerate(ordered, start=1):
        if points and points[-1][0] == value:
            points[-1] = (value, index / n)
        else:
            points.append((value, index / n))
    return points


def cdf_at(samples: Sequence[float], value: float) -> float:
    """Fraction of samples <= ``value``."""
    if not samples:
        raise ConfigurationError("cannot evaluate a CDF with zero samples")
    return sum(1 for sample in samples if sample <= value) / len(samples)


def histogram(
    samples: Sequence[float], bin_width: float = 1.0
) -> Dict[float, int]:
    """Counts per ``bin_width``-wide bin keyed by the bin's left edge."""
    if bin_width <= 0:
        raise ConfigurationError(f"bin_width must be positive, got {bin_width}")
    if not samples:
        return {}
    counts: Dict[float, int] = {}
    for sample in samples:
        edge = (sample // bin_width) * bin_width
        counts[edge] = counts.get(edge, 0) + 1
    return dict(sorted(counts.items()))


@dataclass(frozen=True)
class LatencySummary:
    """Five-number-ish summary of a latency distribution."""

    count: int
    minimum: float
    median: float
    mean: float
    p90: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} min={self.minimum:.0f} med={self.median:.0f} "
            f"mean={self.mean:.1f} p90={self.p90:.0f} max={self.maximum:.0f}"
        )


def summarize_latencies(samples: Sequence[float]) -> LatencySummary:
    """Summary statistics for one latency series."""
    if not samples:
        raise ConfigurationError("cannot summarise zero samples")
    ordered = sorted(samples)
    p90_index = min(len(ordered) - 1, int(round(0.9 * (len(ordered) - 1))))
    return LatencySummary(
        count=len(ordered),
        minimum=ordered[0],
        median=statistics.median(ordered),
        mean=statistics.fmean(ordered),
        p90=ordered[p90_index],
        maximum=ordered[-1],
    )
