"""Wagner-Fischer edit distance.

The paper (Section 5) scores transmissions with the edit distance between
the sent and received sequences because the channel exhibits three error
types — bit flips, bit insertions and bit losses — and plain Hamming
distance mis-scores the latter two catastrophically.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def edit_distance(source: Sequence[int], target: Sequence[int]) -> int:
    """Levenshtein distance via the Wagner-Fischer dynamic program.

    Runs in O(len(source) * len(target)) time and O(min) space.

    >>> edit_distance([1, 0, 1], [1, 1, 1])
    1
    >>> edit_distance([1, 0, 1, 0], [1, 0, 1])
    1
    """
    if len(source) < len(target):
        source, target = target, source
    if not target:
        return len(source)
    previous = list(range(len(target) + 1))
    for i, source_item in enumerate(source, start=1):
        current = [i] + [0] * len(target)
        for j, target_item in enumerate(target, start=1):
            substitution = previous[j - 1] + (source_item != target_item)
            insertion = current[j - 1] + 1
            deletion = previous[j] + 1
            current[j] = min(substitution, insertion, deletion)
        previous = current
    return previous[-1]


def edit_distance_alignment(
    source: Sequence[int], target: Sequence[int]
) -> Tuple[int, List[Tuple[str, int, int]]]:
    """Edit distance plus one optimal operation script.

    Returns ``(distance, script)`` where each script entry is
    ``(operation, source_index, target_index)`` with operation one of
    ``"match"``, ``"substitute"``, ``"insert"`` (into source) or
    ``"delete"`` (from source).  Used by diagnostics that want to show
    *which* symbols were lost or inserted, e.g. when attributing errors to
    scheduler preemptions.
    """
    rows = len(source) + 1
    cols = len(target) + 1
    table = [[0] * cols for _ in range(rows)]
    for i in range(rows):
        table[i][0] = i
    for j in range(cols):
        table[0][j] = j
    for i in range(1, rows):
        for j in range(1, cols):
            cost = 0 if source[i - 1] == target[j - 1] else 1
            table[i][j] = min(
                table[i - 1][j - 1] + cost,
                table[i][j - 1] + 1,
                table[i - 1][j] + 1,
            )
    # Trace back one optimal path.
    script: List[Tuple[str, int, int]] = []
    i, j = len(source), len(target)
    while i > 0 or j > 0:
        if i > 0 and j > 0:
            cost = 0 if source[i - 1] == target[j - 1] else 1
            if table[i][j] == table[i - 1][j - 1] + cost:
                script.append(("match" if cost == 0 else "substitute", i - 1, j - 1))
                i -= 1
                j -= 1
                continue
        if j > 0 and table[i][j] == table[i][j - 1] + 1:
            script.append(("insert", i, j - 1))
            j -= 1
            continue
        script.append(("delete", i - 1, j))
        i -= 1
    script.reverse()
    return table[-1][-1], script
