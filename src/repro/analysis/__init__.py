"""Analysis utilities: error metrics, distributions, detection.

The paper evaluates channel quality with the Wagner-Fischer edit distance
between sent and received bit sequences (Section 5), reports latency
distributions as CDFs (Figure 4), and discusses detectability through
hardware performance counters (Section 7).  This package implements those
three measurement tools.
"""

from repro.analysis.edit_distance import edit_distance, edit_distance_alignment
from repro.analysis.ber import (
    BitErrorReport,
    align_by_preamble,
    bit_error_rate,
    evaluate_transmission,
)
from repro.analysis.cdf import empirical_cdf, histogram, summarize_latencies
from repro.analysis.capacity import (
    binary_symmetric_capacity,
    confusion_matrix,
    effective_rate_kbps,
    symbol_capacity,
)
from repro.analysis.detection import DetectionReport, compare_miss_profiles
from repro.analysis.run_summary import manifest_table, summarize_manifest
from repro.analysis.svg import Chart, ber_chart, cdf_chart, trace_chart

__all__ = [
    "BitErrorReport",
    "DetectionReport",
    "Chart",
    "align_by_preamble",
    "ber_chart",
    "binary_symmetric_capacity",
    "cdf_chart",
    "trace_chart",
    "bit_error_rate",
    "confusion_matrix",
    "effective_rate_kbps",
    "symbol_capacity",
    "compare_miss_profiles",
    "edit_distance",
    "edit_distance_alignment",
    "empirical_cdf",
    "evaluate_transmission",
    "histogram",
    "manifest_table",
    "summarize_latencies",
    "summarize_manifest",
]
