"""Information-theoretic channel capacity estimates.

The paper reports raw transmission rates with their bit error rates; the
natural next question — how many *information* bits per second actually
get through — is answered by Shannon's noisy-channel bounds.  This module
provides:

* :func:`binary_symmetric_capacity` — capacity of a BSC with the measured
  flip probability, the standard model when errors are dominated by flips;
* :func:`confusion_matrix` / :func:`symbol_capacity` — the empirical
  symbol-level mutual information for multi-level codecs, which also
  captures adjacent-level confusion that bit-level BER hides;
* :func:`effective_rate_kbps` — raw rate times per-symbol capacity, the
  apples-to-apples number for comparing encodings (used by the
  ``extension_3bit`` discussion).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.common.errors import ConfigurationError


def _h2(p: float) -> float:
    """Binary entropy in bits."""
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -p * math.log2(p) - (1 - p) * math.log2(1 - p)


def binary_symmetric_capacity(flip_probability: float) -> float:
    """Capacity (bits per channel use) of a BSC with the given flip rate.

    >>> binary_symmetric_capacity(0.0)
    1.0
    >>> round(binary_symmetric_capacity(0.11), 3)
    0.5
    """
    if not 0.0 <= flip_probability <= 1.0:
        raise ConfigurationError(
            f"flip probability must be in [0, 1], got {flip_probability}"
        )
    return 1.0 - _h2(flip_probability)


def confusion_matrix(
    sent: Sequence[int], received: Sequence[int]
) -> Dict[Tuple[int, int], int]:
    """Counts of (sent symbol, received symbol) pairs.

    Requires equal-length aligned sequences (use the preamble-aligned
    output of a channel run).
    """
    if len(sent) != len(received):
        raise ConfigurationError(
            f"sequences differ in length ({len(sent)} vs {len(received)})"
        )
    if not sent:
        raise ConfigurationError("cannot build a confusion matrix from nothing")
    return dict(Counter(zip(sent, received)))


def symbol_capacity(matrix: Dict[Tuple[int, int], int]) -> float:
    """Empirical mutual information I(sent; received) in bits per symbol.

    This is a plug-in estimate from the joint histogram; with the message
    lengths used in the experiments (hundreds of symbols) it is accurate
    to a few hundredths of a bit.
    """
    total = sum(matrix.values())
    if total == 0:
        raise ConfigurationError("empty confusion matrix")
    sent_marginal: Dict[int, float] = {}
    received_marginal: Dict[int, float] = {}
    for (sent_symbol, received_symbol), count in matrix.items():
        sent_marginal[sent_symbol] = sent_marginal.get(sent_symbol, 0.0) + count
        received_marginal[received_symbol] = (
            received_marginal.get(received_symbol, 0.0) + count
        )
    information = 0.0
    for (sent_symbol, received_symbol), count in matrix.items():
        joint = count / total
        product = (
            sent_marginal[sent_symbol] / total
        ) * (received_marginal[received_symbol] / total)
        information += joint * math.log2(joint / product)
    return max(0.0, information)


def effective_rate_kbps(
    raw_rate_kbps: float,
    bits_per_symbol: int,
    capacity_bits_per_symbol: float,
) -> float:
    """Information throughput: raw rate scaled by per-symbol capacity.

    >>> effective_rate_kbps(4400.0, 2, 2.0)
    4400.0
    """
    if raw_rate_kbps <= 0:
        raise ConfigurationError("raw rate must be positive")
    if bits_per_symbol <= 0:
        raise ConfigurationError("bits_per_symbol must be positive")
    if capacity_bits_per_symbol < 0:
        raise ConfigurationError("capacity cannot be negative")
    return raw_rate_kbps * capacity_bits_per_symbol / bits_per_symbol


def bit_sequences_capacity(
    sent_bits: Sequence[int], received_bits: Sequence[int]
) -> float:
    """BSC capacity estimated from aligned bit sequences.

    A convenience wrapper: estimates the flip probability by Hamming
    comparison (the sequences must be aligned and equal-length) and
    returns the corresponding BSC capacity.
    """
    if len(sent_bits) != len(received_bits) or not sent_bits:
        raise ConfigurationError("need equal-length, non-empty sequences")
    flips = sum(1 for a, b in zip(sent_bits, received_bits) if a != b)
    return binary_symmetric_capacity(flips / len(sent_bits))


def summarize_channel_capacity(
    sent_levels: Sequence[int],
    received_levels: Sequence[int],
    raw_rate_kbps: float,
    bits_per_symbol: int,
) -> Dict[str, float]:
    """One-stop summary used by reports and the capacity tests."""
    matrix = confusion_matrix(sent_levels, received_levels)
    per_symbol = symbol_capacity(matrix)
    return {
        "bits_per_symbol": float(bits_per_symbol),
        "capacity_bits_per_symbol": per_symbol,
        "raw_rate_kbps": raw_rate_kbps,
        "effective_rate_kbps": effective_rate_kbps(
            raw_rate_kbps, bits_per_symbol, per_symbol
        ),
    }


__all__: List[str] = [
    "binary_symmetric_capacity",
    "bit_sequences_capacity",
    "confusion_matrix",
    "effective_rate_kbps",
    "symbol_capacity",
    "summarize_channel_capacity",
]
