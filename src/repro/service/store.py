"""Content-addressed result store: durable JSON blobs with LRU eviction.

One blob per cache key (:mod:`repro.service.keys`), stored as exactly the
``ExperimentResult.to_json()`` bytes — so a result served from the store
is *bit-identical* to the direct runner computation that produced it, and
``GET /results/{key}`` can stream the file without re-serialising.

Writes follow the runner manifest's durability discipline: serialise to a
temporary file in the same directory, then ``os.replace`` over the
destination, so readers never observe a half-written blob.  Reads apply
the same :class:`~repro.common.errors.ManifestError` discipline — a
truncated or mangled blob raises loudly instead of deserialising into
garbage; the scheduler treats that as a miss, discards the blob and
recomputes (self-healing).

Eviction is least-recently-*used* (gets refresh recency, mirrored to the
file mtime so recency survives restarts) and size-capped by bytes and/or
entry count.  The entry being inserted is never evicted by its own put,
so a single oversized blob degrades the cap instead of thrashing.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.common.errors import ConfigurationError, ManifestError
from repro.experiments.base import ExperimentResult

#: Keys are SHA-256 hex digests (see :func:`repro.service.keys.cache_key`).
_KEY_PATTERN = re.compile(r"^[0-9a-f]{64}$")

_BLOB_SUFFIX = ".json"


def validate_key(key: str) -> str:
    """Reject anything that is not a lowercase SHA-256 hex digest.

    Keys become file names, so this is also the path-traversal guard for
    the HTTP layer: ``../`` can never reach here.
    """
    if not isinstance(key, str) or not _KEY_PATTERN.match(key):
        raise ConfigurationError(
            f"result-store keys are 64-char lowercase hex digests "
            f"(repro.service.keys.cache_key), got {key!r}"
        )
    return key


@dataclass
class StoreStats:
    """Counters the metrics endpoint exports; all monotone but gauges."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    corrupt_discarded: int = 0
    #: Gauges (recomputed, not monotone).
    entries: int = 0
    bytes: int = 0

    def to_dict(self) -> Dict[str, int]:
        return dict(
            hits=self.hits,
            misses=self.misses,
            puts=self.puts,
            evictions=self.evictions,
            corrupt_discarded=self.corrupt_discarded,
            entries=self.entries,
            bytes=self.bytes,
        )

    @property
    def hit_rate(self) -> float:
        """Hits / lookups; 0.0 before the first lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


@dataclass
class _Evicted:
    """What one put pushed out (surfaced for telemetry)."""

    key: str
    size: int = 0


class ResultStore:
    """Directory of ``<key>.json`` result blobs with LRU size caps.

    ``capacity_bytes`` / ``capacity_entries`` of ``None`` mean unbounded.
    The store is not safe for *concurrent writers on one directory from
    multiple processes* (last replace wins — harmless, both wrote the
    same content-addressed bytes) but is safe for one service process
    with many threads when guarded by the scheduler's lock discipline:
    all store calls happen on the scheduler's event-loop thread.
    """

    def __init__(
        self,
        root: Union[str, pathlib.Path],
        capacity_bytes: Optional[int] = None,
        capacity_entries: Optional[int] = None,
    ) -> None:
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ConfigurationError(
                f"capacity_bytes must be positive or None, got {capacity_bytes}"
            )
        if capacity_entries is not None and capacity_entries <= 0:
            raise ConfigurationError(
                f"capacity_entries must be positive or None, "
                f"got {capacity_entries}"
            )
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.capacity_bytes = capacity_bytes
        self.capacity_entries = capacity_entries
        self.stats = StoreStats()
        #: key -> blob size in bytes, least-recently-used first.
        self._index: "OrderedDict[str, int]" = OrderedDict()
        self._load_index()

    # ------------------------------------------------------------------
    # Index bookkeeping
    # ------------------------------------------------------------------
    def _path(self, key: str) -> pathlib.Path:
        return self.root / (key + _BLOB_SUFFIX)

    def _load_index(self) -> None:
        """Rebuild recency order from the directory (mtime, then name)."""
        found: List[tuple] = []
        for path in self.root.glob("*" + _BLOB_SUFFIX):
            key = path.name[: -len(_BLOB_SUFFIX)]
            if not _KEY_PATTERN.match(key):
                continue
            try:
                status = path.stat()
            except OSError:
                continue
            found.append((status.st_mtime, key, status.st_size))
        for _mtime, key, size in sorted(found):
            self._index[key] = size
        self._refresh_gauges()

    def _refresh_gauges(self) -> None:
        self.stats.entries = len(self._index)
        self.stats.bytes = sum(self._index.values())

    def _touch(self, key: str) -> None:
        self._index.move_to_end(key)
        try:
            os.utime(self._path(key))
        except OSError:
            pass  # recency then only survives in memory; not fatal

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return validate_key(key) in self._index

    def __len__(self) -> int:
        return len(self._index)

    def keys(self) -> List[str]:
        """Keys, least-recently-used first."""
        return list(self._index)

    def get_bytes(self, key: str) -> Optional[bytes]:
        """The stored blob verbatim (the HTTP layer streams this).

        Counts a hit or a miss and refreshes recency.  Raises
        :class:`~repro.common.errors.ManifestError` when the blob exists
        but does not parse back into an
        :class:`~repro.experiments.base.ExperimentResult`.
        """
        validate_key(key)
        if key not in self._index:
            self.stats.misses += 1
            return None
        try:
            blob = self._path(key).read_bytes()
        except OSError:
            # The file vanished under us (external cleanup): heal the index.
            self._drop(key)
            self.stats.misses += 1
            return None
        try:
            ExperimentResult.from_json(blob.decode("utf-8"))
        except (json.JSONDecodeError, ConfigurationError, UnicodeDecodeError,
                KeyError, TypeError, ValueError) as exc:
            raise ManifestError(
                f"stored result blob {key} is corrupt (truncated write or "
                f"schema drift?): {exc!r}"
            ) from exc
        self.stats.hits += 1
        self._touch(key)
        return blob

    def get(self, key: str) -> Optional[ExperimentResult]:
        """Deserialised result, or ``None`` on a miss."""
        blob = self.get_bytes(key)
        if blob is None:
            return None
        return ExperimentResult.from_json(blob.decode("utf-8"))

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def put(self, key: str, result: ExperimentResult) -> List[_Evicted]:
        """Store ``result`` under ``key`` atomically; returns evictions.

        Idempotent: re-putting an existing key rewrites the same bytes
        (content addressing guarantees that) and refreshes recency.
        """
        validate_key(key)
        if not isinstance(result, ExperimentResult):
            raise ConfigurationError(
                f"store values must be ExperimentResult, "
                f"got {type(result).__name__}"
            )
        blob = result.to_json().encode("utf-8")
        path = self._path(key)
        temp_path = self.root / (key + _BLOB_SUFFIX + ".tmp")
        temp_path.write_bytes(blob)
        os.replace(temp_path, path)
        self._index[key] = len(blob)
        self._index.move_to_end(key)
        self.stats.puts += 1
        evicted = self._evict_over_capacity(exempt=key)
        self._refresh_gauges()
        return evicted

    def _over_capacity(self) -> bool:
        if self.capacity_entries is not None:
            if len(self._index) > self.capacity_entries:
                return True
        if self.capacity_bytes is not None:
            if sum(self._index.values()) > self.capacity_bytes:
                return True
        return False

    def _evict_over_capacity(self, exempt: str) -> List[_Evicted]:
        evicted: List[_Evicted] = []
        while self._over_capacity():
            victim = next(
                (key for key in self._index if key != exempt), None
            )
            if victim is None:
                break  # only the exempt entry remains; keep it
            size = self._index[victim]
            self._drop(victim)
            self.stats.evictions += 1
            evicted.append(_Evicted(victim, size))
        return evicted

    def _drop(self, key: str) -> None:
        self._index.pop(key, None)
        try:
            self._path(key).unlink()
        except OSError:
            pass
        self._refresh_gauges()

    def discard(self, key: str) -> bool:
        """Remove a blob (corrupt-blob healing); True when it existed."""
        validate_key(key)
        existed = key in self._index
        if existed:
            self._drop(key)
            self.stats.corrupt_discarded += 1
        return existed
