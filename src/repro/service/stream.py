"""The service's live event stream: one hub publisher, many HTTP clients.

A single :class:`~repro.telemetry.net.StreamPublisher` (the *hub*) is
the service-wide event spine:

* the scheduler publishes ``job`` frames on every state transition
  (queued → running → done/failed/cancelled, fleet re-dispatches);
* job execution binds a per-job stamped view of the hub as the thread's
  ambient publisher (:mod:`repro.service.progress`), so run-local
  telemetry — the closed-loop scenario's ``cache_event`` / ``score`` /
  ``alarm`` / ``flip`` frames, sweep ``progress`` marks — mirrors into
  the hub with a ``job_id`` stamp;
* HTTP handler threads attach bounded :class:`~repro.telemetry.net
  .StreamClient` queues and write frames out as SSE or NDJSON
  (see :func:`write_stream`).

The hub assigns its own monotonically increasing event ids, which are
the ``Last-Event-ID`` resume cursor of the HTTP endpoints.  A slow or
disconnected consumer overflows *its own* client queue (drop-oldest,
counted in ``repro_stream_dropped_total``) — it can never stall the
scheduler loop or a running engine, whose publishes are lock-plus-append
only.

Isolate-mode caveat: jobs running in the process pool cannot mirror
run-local telemetry across the process boundary; their ``job`` frames
still stream (the scheduler publishes those from the loop thread).
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Optional, Tuple

from repro.telemetry.net import (
    StreamClient,
    StreamFrame,
    StreamPublisher,
    ndjson_line,
    sse_block,
)

#: Frame type carrying scheduler job-state transitions.
JOB_FRAME = "job"

#: Content types of the two wire framings.
SSE_CONTENT_TYPE = "text/event-stream"
NDJSON_CONTENT_TYPE = "application/x-ndjson"


class ServiceStream:
    """The hub publisher plus the service-facing helpers around it."""

    def __init__(
        self, ring_capacity: int = 65536, client_capacity: int = 4096
    ) -> None:
        self.publisher = StreamPublisher(
            ring_capacity=ring_capacity, client_capacity=client_capacity
        )

    # -- scheduler side ------------------------------------------------
    def publish_job(self, job) -> StreamFrame:
        """Publish one job-state transition frame (scheduler loop only)."""
        spec = job.spec
        payload: Dict[str, object] = {
            "job_id": job.job_id,
            "state": job.state,
            "key": job.key,
            "experiment_id": (
                f"scenario:{spec.scenario.name}"
                if spec.scenario is not None
                else spec.experiment_id
            ),
        }
        if job.source is not None:
            payload["source"] = job.source
        if job.error is not None:
            payload["error"] = job.error
        return self.publisher.publish(JOB_FRAME, payload)

    # -- consumer side -------------------------------------------------
    def attach(
        self,
        last_event_id: Optional[int] = None,
        accepts: Optional[Callable[[StreamFrame], bool]] = None,
    ) -> StreamClient:
        return self.publisher.attach(
            last_event_id=last_event_id, accepts=accepts
        )

    def detach(self, client: StreamClient) -> None:
        self.publisher.detach(client)

    @staticmethod
    def job_filter(job_id: str) -> Callable[[StreamFrame], bool]:
        """Predicate keeping only frames stamped with ``job_id``."""

        def accepts(frame: StreamFrame) -> bool:
            return frame.payload.get("job_id") == job_id

        return accepts

    @staticmethod
    def job_state_filter(job_id: str) -> Callable[[StreamFrame], bool]:
        """Predicate keeping only ``job`` transition frames of ``job_id``."""

        def accepts(frame: StreamFrame) -> bool:
            return (
                frame.type == JOB_FRAME
                and frame.payload.get("job_id") == job_id
            )

        return accepts

    def snapshot(self) -> Dict[str, object]:
        """Gauge view for ``/healthz`` and ``/metrics``."""
        return self.publisher.snapshot()


def negotiate_framing(
    accept_header: str, params: Dict[str, list]
) -> Tuple[bool, str]:
    """Pick the wire framing: ``(sse, content_type)``.

    ``?format=sse|ndjson`` wins; otherwise an ``Accept`` header naming
    ``text/event-stream`` selects SSE and everything else gets NDJSON
    (the API-friendly default).
    """
    fmt = (params.get("format") or [None])[0]
    if fmt == "sse":
        return True, SSE_CONTENT_TYPE
    if fmt == "ndjson":
        return False, NDJSON_CONTENT_TYPE
    if SSE_CONTENT_TYPE in (accept_header or ""):
        return True, SSE_CONTENT_TYPE
    return False, NDJSON_CONTENT_TYPE


def write_chunk(wfile, data: bytes) -> None:
    """Write one HTTP/1.1 chunked-transfer chunk (empty = terminator)."""
    if data:
        wfile.write(b"%x\r\n" % len(data) + data + b"\r\n")
    else:
        wfile.write(b"0\r\n\r\n")
    wfile.flush()


def write_stream(
    wfile,
    client: StreamClient,
    sse: bool,
    max_events: Optional[int] = None,
    heartbeat_seconds: float = 15.0,
) -> int:
    """Drain ``client`` onto a chunked HTTP body; returns frames sent.

    Blocks in the handler thread until the client is closed, the
    connection breaks (``BrokenPipeError`` et al. — the caller detaches)
    or ``max_events`` frames have been written (then the chunked body is
    terminated cleanly, which is how tests and one-shot consumers get a
    finite response).  While idle, SSE consumers get ``: keep-alive``
    comment chunks every ``heartbeat_seconds`` so proxies keep the
    connection open; NDJSON consumers just wait.
    """
    sent = 0
    while max_events is None or sent < max_events:
        frame = client.get(timeout=heartbeat_seconds)
        if frame is None:
            if client.closed:
                break
            if sse:
                write_chunk(wfile, b": keep-alive\n\n")
            continue
        write_chunk(wfile, sse_block(frame) if sse else ndjson_line(frame))
        sent += 1
    write_chunk(wfile, b"")
    return sent


def parse_frame_line(line: str) -> Optional[Dict[str, object]]:
    """Decode one NDJSON stream line; ``None`` for blanks/comments."""
    text = line.strip()
    if not text or text.startswith(":"):
        return None
    return json.loads(text)


__all__ = [
    "JOB_FRAME",
    "NDJSON_CONTENT_TYPE",
    "SSE_CONTENT_TYPE",
    "ServiceStream",
    "negotiate_framing",
    "parse_frame_line",
    "write_chunk",
    "write_stream",
]
