"""Async job scheduler: priority queue + dedup + backpressure over the runner.

The scheduler is an asyncio front end over the existing
:mod:`repro.runner` execution engine.  One :class:`JobSpec` names an
experiment configuration; its canonical cache key
(:func:`repro.service.keys.cache_key`) drives three behaviours:

* **memoisation** — a submission whose key is already in the
  :class:`~repro.service.store.ResultStore` completes immediately from
  the store (no queue, no worker);
* **in-flight deduplication** — N identical submissions while one
  computation is queued or running coalesce onto that computation and
  all fan out its one result;
* **content addressing** — the finished result is written back under the
  key, so the *next* identical submission is a store hit.

Distinct keys queue behind a priority heap (higher ``priority`` first,
FIFO within a priority) of bounded depth: submissions beyond
``queue_depth`` raise :class:`QueueFullError` — the explicit 429-style
backpressure signal the HTTP layer translates.  Queued jobs can be
cancelled; cancellation never leaves a partial blob in the store because
results are stored only after a computation finishes.

Execution happens off the event loop in executor threads, each driving
the runner's engine for exactly one task.  With ``isolate=True`` the
task runs in a worker *process* through the same pool machinery the CLI
uses — inheriting its per-task timeout, crash retry with deterministic
backoff, and serial fallback; ``isolate=False`` runs in-process (cheap,
but timeouts are then advisory only).

With live *fleet* workers (external processes claiming jobs over HTTP
through the lease protocol in :mod:`repro.service.fleet`), the
in-process executor path stands down and workers pull queued
computations via :meth:`JobScheduler.fleet_claim`, heartbeat their
leases, and upload result blobs; a supervisor loop expires dead leases,
re-dispatches with capped deterministic backoff, and quarantines poison
jobs into the ``dead_letter`` state.  With zero live workers the
scheduler degrades gracefully back to the in-process pool.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.common.errors import ConfigurationError, ManifestError, ReproError
from repro.experiments.profiles import ProfileLike, RunProfile, resolve_profile
from repro.runner.manifest import ManifestEntry
from repro.runner.pool import execute_tasks
from repro.runner.sharding import TaskSpec
from repro.service.fleet import (
    DEAD_LETTER,
    FleetConfig,
    FleetState,
    FleetUnavailableError,
    LeaseError,
    lease_backoff_seconds,
)
from repro.service.keys import cache_key
from repro.service.metrics import ServiceTelemetry
from repro.service.store import ResultStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenario.spec import ScenarioSpec


class QueueFullError(ReproError):
    """The scheduler's bounded queue rejected a submission (HTTP 429)."""

    def __init__(self, queue_depth: int) -> None:
        super().__init__(
            f"job queue is full ({queue_depth} computation(s) queued); "
            f"retry after the backlog drains"
        )
        self.queue_depth = queue_depth


class UnknownJobError(ConfigurationError):
    """A job id that this scheduler never issued."""


class JobState:
    """Terminal and transient job states (plain strings, JSON-friendly)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    #: Quarantined after ``dead_letter_after`` failed fleet leases.
    DEAD_LETTER = DEAD_LETTER

    TERMINAL = frozenset({DONE, FAILED, CANCELLED, DEAD_LETTER})


#: How a DONE job's result was obtained.
SOURCE_COMPUTED = "computed"
SOURCE_STORE = "store"
SOURCE_COALESCED = "coalesced"


@dataclass(frozen=True)
class JobSpec:
    """One submittable experiment configuration.

    ``entry_point`` mirrors :class:`repro.runner.TaskSpec`'s dotted
    override and participates in the cache key (two different entry
    points must never collide on one content address).

    ``scenario`` makes the job a declarative scenario run
    (:mod:`repro.scenario`): ``experiment_id`` then holds the
    ``scenario:<name>`` label and the canonical spec dict joins the cache
    key, so two submissions dedup exactly when their specs canonicalise
    identically.

    ``batch_hint`` is an opaque coalescing label (see
    :mod:`repro.runner.batching`): queued jobs sharing a hint, a profile
    and an execution route are claimed together by one worker and run as
    a single batch group, with each result stored under its own
    unchanged cache key.  A scheduling affinity only — never part of the
    key.
    """

    experiment_id: str
    profile: RunProfile = field(default_factory=lambda: resolve_profile(None))
    seed: int = 0
    #: Wall-clock budget, enforced by the worker pool when the scheduler
    #: isolates jobs in processes.  Volatile: not part of the cache key.
    timeout: Optional[float] = None
    entry_point: Optional[str] = None
    scenario: Optional["ScenarioSpec"] = None
    #: Opaque batch-group label; volatile like ``timeout``, not keyed.
    batch_hint: Optional[str] = None

    def __post_init__(self) -> None:
        if self.scenario is not None and self.entry_point is not None:
            raise ConfigurationError(
                "a job carries either a scenario or an entry_point "
                "override, not both"
            )

    @staticmethod
    def create(
        experiment_id: Optional[str] = None,
        profile: ProfileLike = None,
        seed: int = 0,
        timeout: Optional[float] = None,
        entry_point: Optional[str] = None,
        scenario: Optional["ScenarioSpec"] = None,
        batch_hint: Optional[str] = None,
    ) -> "JobSpec":
        """Normalising constructor (accepts profile names).

        Scenario jobs may omit ``experiment_id``; it defaults to the
        spec's ``scenario:<name>`` label.
        """
        if scenario is not None and experiment_id is None:
            from repro.scenario.runner import scenario_experiment_id

            experiment_id = scenario_experiment_id(scenario)
        if experiment_id is None:
            raise ConfigurationError(
                "a job needs an experiment_id or a scenario spec"
            )
        return JobSpec(
            experiment_id=experiment_id,
            profile=resolve_profile(profile),
            seed=seed,
            timeout=timeout,
            entry_point=entry_point,
            scenario=scenario,
            batch_hint=batch_hint,
        )

    @property
    def key(self) -> str:
        """The content address of this configuration."""
        return cache_key(
            self.experiment_id,
            profile=self.profile,
            seed=self.seed,
            entry_point=self.entry_point,
            scenario=(
                None if self.scenario is None else self.scenario.to_dict()
            ),
        )


@dataclass
class Job:
    """One submission's lifecycle record (returned to API callers)."""

    job_id: str
    spec: JobSpec
    key: str
    priority: int
    state: str = JobState.QUEUED
    #: Where a DONE result came from: computed / store / coalesced.
    source: Optional[str] = None
    error: Optional[str] = None
    #: Runner provenance for computed jobs (attempts, wall seconds).
    attempts: int = 0
    wall_seconds: float = 0.0
    #: Fleet provenance: lease attempts this job's computation went
    #: through, each ``{attempt, worker_id, lease_id, outcome}``.
    lease_history: List[Dict[str, object]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """JSON view served by ``GET /jobs/{id}``."""
        data: Dict[str, object] = {
            "job_id": self.job_id,
            "experiment_id": self.spec.experiment_id,
            "profile": self.spec.profile.to_dict(),
            "seed": self.spec.seed,
            "priority": self.priority,
            "state": self.state,
            "source": self.source,
            "error": self.error,
            "attempts": self.attempts,
            "wall_seconds": round(self.wall_seconds, 6),
        }
        if self.spec.scenario is not None:
            data["scenario"] = {
                "name": self.spec.scenario.name,
                "kind": self.spec.scenario.kind,
            }
        if self.lease_history:
            data["lease_history"] = list(self.lease_history)
        data["result_key"] = self.key if self.state == JobState.DONE else None
        return data


@dataclass
class _Computation:
    """One deduplicated unit of work; many jobs can ride it."""

    key: str
    spec: JobSpec
    priority: int
    jobs: List[Job] = field(default_factory=list)
    state: str = JobState.QUEUED
    cancelled: bool = False
    #: Claimed into another computation's batch group: the claimer runs
    #: it, and a worker popping its own heap entry must skip it (same
    #: lazy-skip mechanism as ``cancelled``).
    claimed: bool = False
    #: Fleet lease bookkeeping: id of the live lease (None when not
    #: leased), how many leases have been granted, and the full attempt
    #: history (shared into each rider's ``Job.lease_history``).
    lease_id: Optional[str] = None
    lease_attempts: int = 0
    lease_history: List[Dict[str, object]] = field(default_factory=list)


def _batch_group_key(spec: JobSpec) -> Optional[tuple]:
    """Scheduler-side mirror of :func:`repro.runner.batching
    .batch_group_key`: hint + execution route + profile, else no group."""
    if spec.batch_hint is None:
        return None
    if spec.entry_point is not None:
        route = f"entry:{spec.entry_point}"
    elif spec.scenario is not None:
        route = "scenario"
    else:
        route = f"registry:{spec.experiment_id}"
    return (spec.batch_hint, route, spec.profile)


def compute_group(specs: List[JobSpec], isolate: bool) -> List[ManifestEntry]:
    """Run a batch group through the runner engine, one entry per spec.

    The specs' shared ``batch_hint`` flows into the task list, so with
    ``isolate=True`` the process pool coalesces them onto one worker
    process (see :mod:`repro.runner.batching`); ``isolate=False`` runs
    them back to back in-process.  Either way each spec computes from
    its own pinned configuration — grouping never mixes results.
    """
    tasks = [
        TaskSpec(
            task_id=(
                spec.experiment_id
                if len(specs) == 1
                else f"{spec.experiment_id}#g{index}"
            ),
            experiment_id=spec.experiment_id,
            seed=spec.seed,
            profile=spec.profile,
            timeout=spec.timeout,
            entry_point=spec.entry_point,
            scenario=(
                None if spec.scenario is None else spec.scenario.to_json()
            ),
            batch_hint=spec.batch_hint,
        )
        for index, spec in enumerate(specs)
    ]
    return execute_tasks(tasks, jobs=2 if isolate else 1)


def compute_entry(spec: JobSpec, isolate: bool) -> ManifestEntry:
    """Run one job through the runner engine; returns its manifest entry.

    ``isolate=True`` routes through the process pool (1 worker), which
    is what grants the runner's timeout enforcement and crash retry;
    ``isolate=False`` takes the in-process serial path.
    """
    return compute_group([spec], isolate)[0]


class JobScheduler:
    """The asyncio scheduler; use as an async context manager.

    All state mutation happens on the owning event loop, so no locks are
    needed; cross-thread callers go through
    :func:`asyncio.run_coroutine_threadsafe` (see the HTTP layer).
    """

    def __init__(
        self,
        store: ResultStore,
        workers: int = 2,
        queue_depth: int = 32,
        isolate: bool = False,
        telemetry: Optional[ServiceTelemetry] = None,
        fleet: Optional[FleetConfig] = None,
        stream: Optional[object] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {queue_depth}"
            )
        self.store = store
        self.workers = workers
        self.queue_depth = queue_depth
        self.isolate = isolate
        self.telemetry = telemetry or ServiceTelemetry()
        #: Optional :class:`repro.service.stream.ServiceStream`: every
        #: job-state transition publishes one ``job`` frame, and job
        #: execution binds the hub so run telemetry mirrors out live.
        self.stream = stream
        self.fleet = FleetState(config=fleet or FleetConfig())
        self._jobs: Dict[str, Job] = {}
        self._futures: Dict[str, asyncio.Future] = {}
        self._inflight: Dict[str, _Computation] = {}
        self._heap: List[tuple] = []
        self._queued = 0
        #: Expired-lease computations waiting out their re-dispatch
        #: backoff: ``(ready_at, computation)``, promoted by the
        #: supervisor.  They still count against ``queue_depth``.
        self._delayed: List[tuple] = []
        self._sequence = itertools.count()
        self._job_sequence = itertools.count(1)
        self._worker_tasks: List[asyncio.Task] = []
        self._supervisor_task: Optional[asyncio.Task] = None
        self._wakeup: Optional[asyncio.Condition] = None
        self._started = False
        #: EWMA of recent computation wall time, seeding the queue-depth
        #: derived ``Retry-After`` hint (seconds).
        self._recent_wall_seconds = 0.5
        # Counters surfaced by /metrics (telemetry holds the windowed view).
        self.counters: Dict[str, int] = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "rejected": 0,
            "deduplicated": 0,
            "store_served": 0,
            "computations": 0,
            # Batch coalescing (jobs sharing a batch_hint run as one
            # worker group): groups formed, replicas they carried, and
            # how many of those replicas rode along instead of waiting
            # for their own worker slot.
            "batch_groups": 0,
            "batch_replicas": 0,
            "batch_coalesced": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "JobScheduler":
        """Spawn the worker tasks (idempotent)."""
        if self._started:
            return self
        self._wakeup = asyncio.Condition()
        self._worker_tasks = [
            asyncio.get_running_loop().create_task(self._worker_loop(index))
            for index in range(self.workers)
        ]
        self._supervisor_task = asyncio.get_running_loop().create_task(
            self._supervisor_loop()
        )
        self._started = True
        return self

    async def stop(self, drain: bool = False) -> None:
        """Stop the workers; ``drain=True`` finishes the backlog first."""
        if not self._started:
            return
        if drain:
            await self.join()
        tasks = list(self._worker_tasks)
        if self._supervisor_task is not None:
            tasks.append(self._supervisor_task)
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        self._worker_tasks = []
        self._supervisor_task = None
        self._started = False
        # Fail anything still queued, leased out, or parked in re-dispatch
        # backoff, so waiters do not hang forever.
        for lease in list(self.fleet.leases.values()):
            self.fleet.release(lease.lease_id)
        self._delayed = []
        for computation in list(self._inflight.values()):
            if computation.state in (JobState.QUEUED, JobState.RUNNING):
                self._finish_computation(
                    computation,
                    state=JobState.CANCELLED,
                    error="scheduler stopped before this job finished",
                )

    async def join(self) -> None:
        """Wait until no computation is queued or running."""
        while self._inflight:
            pending = [
                self._futures[job.job_id]
                for computation in self._inflight.values()
                for job in computation.jobs
            ]
            if not pending:
                await asyncio.sleep(0)
                continue
            await asyncio.wait(pending)

    async def __aenter__(self) -> "JobScheduler":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Submission API
    # ------------------------------------------------------------------
    async def submit(self, spec: JobSpec, priority: int = 0) -> Job:
        """Submit one job; returns its (possibly already DONE) record.

        Raises :class:`QueueFullError` when the submission would need a
        new computation and the queue is at depth — memoised and
        coalesced submissions are never rejected (they cost no queue
        slot).  Raises :class:`FleetUnavailableError` (HTTP 503) when
        the service is draining or an unhealthy fleet is shedding load;
        memoised and coalesced submissions are still served.
        """
        if not self._started:
            raise ConfigurationError(
                "scheduler is not running; use 'async with JobScheduler(...)'"
            )
        self._validate(spec)
        key = spec.key
        tick = self.telemetry.submission()
        self.counters["submitted"] += 1
        job = Job(
            job_id=f"job-{next(self._job_sequence):06d}",
            spec=spec,
            key=key,
            priority=priority,
        )
        self._jobs[job.job_id] = job
        self._futures[job.job_id] = asyncio.get_running_loop().create_future()

        # 1. Memoised: serve straight from the content-addressed store.
        cached = self._store_probe(key)
        if cached:
            job.state = JobState.DONE
            job.source = SOURCE_STORE
            self.counters["store_served"] += 1
            self.counters["completed"] += 1
            self.telemetry.store_hit(key, tick)
            self._publish_job(job)
            self._resolve(job)
            return job

        # 2. Coalesce onto an identical computation already in flight.
        computation = self._inflight.get(key)
        if computation is not None and not computation.cancelled:
            job.source = SOURCE_COALESCED
            computation.jobs.append(job)
            self.counters["deduplicated"] += 1
            self.telemetry.coalesced(key, tick)
            self._publish_job(job)
            return job

        # 3. New computation: first the fleet's degradation ladder (a
        # draining or unhealthy fleet sheds load with 503), then the
        # bounded queue with explicit 429 backpressure.
        shed_reason = self._shed_reason()
        if shed_reason is not None:
            self.fleet.counters["shed"] += 1
            del self._jobs[job.job_id]
            del self._futures[job.job_id]
            raise FleetUnavailableError(
                shed_reason, retry_after=self.retry_after_seconds()
            )
        if self._queued >= self.queue_depth:
            self.counters["rejected"] += 1
            del self._jobs[job.job_id]
            del self._futures[job.job_id]
            raise QueueFullError(self.queue_depth)
        computation = _Computation(key=key, spec=spec, priority=priority)
        computation.jobs.append(job)
        self._inflight[key] = computation
        heapq.heappush(
            self._heap, (-priority, next(self._sequence), computation)
        )
        self._queued += 1
        self.counters["computations"] += 1
        self.telemetry.computation_enqueued(key, tick)
        self._publish_job(job)
        assert self._wakeup is not None
        async with self._wakeup:
            self._wakeup.notify()
        return job

    def _validate(self, spec: JobSpec) -> None:
        if spec.scenario is not None:
            spec.scenario.validate()  # loud schema/codec/policy failures
            return  # scenario jobs are not registry entries
        if spec.entry_point is not None:
            return  # dotted override: resolved (and rejected) at run time
        from repro.experiments.registry import available_experiments

        if spec.experiment_id not in available_experiments():
            raise ConfigurationError(
                f"unknown experiment {spec.experiment_id!r}; available: "
                f"{', '.join(available_experiments())}"
            )

    def _store_probe(self, key: str) -> bool:
        """True when the store holds a healthy blob for ``key``.

        A corrupt blob (:class:`~repro.common.errors.ManifestError`) is
        discarded and treated as a miss, so the service self-heals by
        recomputing instead of serving garbage or going down.
        """
        try:
            return self.store.get_bytes(key) is not None
        except ManifestError:
            self.store.discard(key)
            return False

    # ------------------------------------------------------------------
    # Waiting / inspection / cancellation
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> Job:
        """Current record of ``job_id`` (raises on unknown ids)."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJobError(f"no job {job_id!r} in this scheduler")

    async def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until ``job_id`` reaches a terminal state."""
        job = self.job(job_id)
        future = self._futures[job_id]
        if not future.done():
            await asyncio.wait_for(asyncio.shield(future), timeout)
        return job

    async def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; returns ``True`` when it took effect.

        Running computations are not interrupted (the runner may be
        mid-experiment in a worker process); their jobs report
        ``False``.  Cancelling one coalesced job detaches only that job
        — the computation keeps running for its other riders.  The store
        stays consistent: nothing is written for a computation whose
        every job was cancelled before it ran.
        """
        job = self.job(job_id)
        if job.state != JobState.QUEUED:
            return False
        computation = self._inflight.get(job.key)
        if computation is None or computation.state != JobState.QUEUED:
            return False
        if job in computation.jobs:
            computation.jobs.remove(job)
        job.state = JobState.CANCELLED
        self.counters["cancelled"] += 1
        self.telemetry.cancelled(job.key, self.telemetry.bus.time)
        self._publish_job(job)
        self._resolve(job)
        if not computation.jobs:
            # Last rider gone: the computation itself is abandoned (the
            # heap entry is skipped lazily when a worker pops it).
            computation.cancelled = True
            del self._inflight[computation.key]
            self._queued -= 1
        return True

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _fleet_engaged(self) -> bool:
        """True while external fleet workers own the queue.

        The in-process pool path stands down whenever live fleet
        workers exist (they claim over HTTP), when the operator pinned
        ``min_workers > 0`` (running in-process would dodge the
        shedding contract), or while draining.  With zero live workers
        and no such pin, the scheduler degrades gracefully back to the
        in-process pool — exactly the pre-fleet behaviour.
        """
        if self.fleet.draining:
            return True
        if self.fleet.config.min_workers > 0:
            return True
        return bool(self.fleet.live_workers())

    async def _worker_loop(self, worker_index: int) -> None:
        del worker_index
        assert self._wakeup is not None
        while True:
            async with self._wakeup:
                # Poll (rather than wait forever) so the loop notices
                # fleet workers appearing/expiring and delayed
                # computations being promoted without an explicit
                # notification for every such event.
                while not self._heap or self._fleet_engaged():
                    try:
                        await asyncio.wait_for(self._wakeup.wait(), 0.1)
                    except asyncio.TimeoutError:
                        pass
                _neg_priority, _seq, computation = heapq.heappop(self._heap)
            if computation.cancelled or computation.claimed:
                continue
            self._queued -= 1
            group = [computation]
            # Opportunistic batch coalescing: claim every queued
            # computation sharing this one's batch group (hint + route +
            # profile) so the whole set runs in one executor call.  The
            # claim happens synchronously on the event loop, so no other
            # worker can race for the same computations.
            group_key = _batch_group_key(computation.spec)
            if group_key is not None:
                from repro.runner.batching import MAX_GROUP_SIZE

                for _p, _s, other in self._heap:
                    if len(group) >= MAX_GROUP_SIZE:
                        break
                    if other.cancelled or other.claimed:
                        continue
                    if _batch_group_key(other.spec) == group_key:
                        other.claimed = True
                        self._queued -= 1
                        group.append(other)
                self.counters["batch_groups"] += 1
                self.counters["batch_replicas"] += len(group)
                self.counters["batch_coalesced"] += len(group) - 1
            for member in group:
                member.state = JobState.RUNNING
                for job in member.jobs:
                    job.state = JobState.RUNNING
                    self._publish_job(job)
            lead_job_id = group[0].jobs[0].job_id if group[0].jobs else ""
            loop = asyncio.get_running_loop()
            try:
                entries = await loop.run_in_executor(
                    None,
                    self._compute_group_bound,
                    [member.spec for member in group],
                    lead_job_id,
                )
            except Exception as exc:  # noqa: BLE001 - fan failure out
                for member in group:
                    self._finish_computation(
                        member,
                        state=JobState.FAILED,
                        error=f"scheduler execution error: {exc!r}",
                    )
                continue
            for member, entry in zip(group, entries):
                if entry.ok:
                    evicted = self.store.put(member.key, entry.result)
                    self.telemetry.result_stored(
                        member.key, self.telemetry.bus.time
                    )
                    for victim in evicted:
                        self.telemetry.store_evicted(
                            victim.key, self.telemetry.bus.time
                        )
                    self._finish_computation(
                        member, state=JobState.DONE, entry=entry
                    )
                else:
                    self._finish_computation(
                        member,
                        state=JobState.FAILED,
                        error=f"{entry.status}: {entry.error}",
                        entry=entry,
                    )

    def _finish_computation(
        self,
        computation: _Computation,
        state: str,
        error: Optional[str] = None,
        entry: Optional[ManifestEntry] = None,
        attempts: Optional[int] = None,
        wall_seconds: Optional[float] = None,
    ) -> None:
        computation.state = state
        self._inflight.pop(computation.key, None)
        if state == JobState.FAILED:
            self.telemetry.computation_failed(
                computation.key, self.telemetry.bus.time
            )
        wall = entry.wall_seconds if entry is not None else wall_seconds
        if state == JobState.DONE and wall is not None and wall > 0:
            self._recent_wall_seconds = (
                0.8 * self._recent_wall_seconds + 0.2 * wall
            )
        for job in computation.jobs:
            job.state = state
            job.error = error
            if state == JobState.DONE and job.source is None:
                job.source = SOURCE_COMPUTED
            if entry is not None:
                job.attempts = entry.attempts
                job.wall_seconds = entry.wall_seconds
            if attempts is not None:
                job.attempts = attempts
            if wall_seconds is not None:
                job.wall_seconds = wall_seconds
            if computation.lease_history:
                job.lease_history = list(computation.lease_history)
            if state == JobState.DONE:
                self.counters["completed"] += 1
            elif state == JobState.FAILED:
                self.counters["failed"] += 1
            elif state == JobState.CANCELLED:
                self.counters["cancelled"] += 1
            elif state == JobState.DEAD_LETTER:
                self.counters["failed"] += 1
            self._publish_job(job)
            self._resolve(job)

    def _resolve(self, job: Job) -> None:
        future = self._futures.get(job.job_id)
        if future is not None and not future.done():
            future.set_result(job)

    def _publish_job(self, job: Job) -> None:
        """One ``job`` frame per state transition (loop thread only).

        Publishing is lock-plus-append per attached stream client — a
        slow consumer overflows its own bounded queue, never this loop.
        """
        if self.stream is not None:
            self.stream.publish_job(job)

    def _compute_group_bound(self, specs: List[JobSpec], lead_job_id: str):
        """Executor-thread entry: run the group with the hub bound.

        Binding the job-stamped hub view around :func:`compute_group`
        lets in-process runs mirror their telemetry frames (closed-loop
        scores/alarms/flips, sweep progress marks) onto the service
        stream.  Isolate-mode groups run in the process pool where the
        binding cannot follow; they still stream their ``job`` frames.
        """
        from repro.service.progress import job_publisher_scope

        hub = self.stream.publisher if self.stream is not None else None
        with job_publisher_scope(hub, lead_job_id):
            return compute_group(specs, self.isolate)

    # ------------------------------------------------------------------
    # Fleet lease protocol (all coroutines run on the owning loop)
    # ------------------------------------------------------------------
    def _shed_reason(self) -> Optional[str]:
        """Why a new computation must be shed right now, or ``None``."""
        if self.fleet.draining:
            return "service is draining for shutdown"
        minimum = self.fleet.config.min_workers
        if minimum > 0:
            live = len(self.fleet.live_workers())
            if live < minimum:
                return (
                    f"fleet unhealthy: {live} live worker(s), "
                    f"{minimum} required"
                )
        return None

    def retry_after_seconds(self) -> int:
        """Backpressure hint (seconds) derived from queue depth and
        worker count: backlog × recent seconds-per-job ÷ capacity,
        clamped to [1, 60].  Served as ``Retry-After`` on 429/503."""
        running = sum(
            1
            for computation in self._inflight.values()
            if computation.state == JobState.RUNNING
        )
        backlog = self._queued + running + 1
        live = len(self.fleet.live_workers())
        capacity = live if live > 0 else self.workers
        hint = math.ceil(
            backlog * self._recent_wall_seconds / max(1, capacity)
        )
        return max(1, min(60, int(hint)))

    async def fleet_claim(self, worker_id: str) -> Dict[str, object]:
        """A fleet worker asks for work; returns a grant or an idle poll.

        The grant carries the lease (id, key, TTL, attempt) and the full
        job payload the worker needs to rebuild a
        :class:`~repro.runner.sharding.TaskSpec`.  With nothing
        claimable the response's ``lease`` is ``None`` and
        ``retry_seconds`` suggests a poll interval; ``draining`` tells
        the worker to finish up and exit.
        """
        if not worker_id:
            raise ConfigurationError("fleet claim needs a worker_id")
        info = self.fleet.touch_worker(worker_id)
        idle: Dict[str, object] = {
            "lease": None,
            "draining": self.fleet.draining,
            "retry_seconds": min(
                1.0, self.fleet.config.effective_supervisor_interval
            ),
        }
        if self.fleet.draining:
            return idle
        computation = self._pop_claimable()
        if computation is None:
            return idle
        self._queued -= 1
        computation.state = JobState.RUNNING
        for job in computation.jobs:
            job.state = JobState.RUNNING
            self._publish_job(job)
        computation.lease_attempts += 1
        lease = self.fleet.grant(
            computation.key, worker_id, computation.lease_attempts
        )
        computation.lease_id = lease.lease_id
        computation.lease_history.append(
            {
                "attempt": lease.attempt,
                "worker_id": worker_id,
                "lease_id": lease.lease_id,
                "outcome": "granted",
            }
        )
        info.claims += 1
        spec = computation.spec
        return {
            "lease": {
                "lease_id": lease.lease_id,
                "key": computation.key,
                "ttl": self.fleet.config.lease_ttl,
                "attempt": lease.attempt,
            },
            "draining": False,
            "job": {
                "experiment_id": spec.experiment_id,
                "profile": spec.profile.to_dict(),
                "seed": spec.seed,
                "timeout": spec.timeout,
                "entry_point": spec.entry_point,
                "scenario": (
                    None if spec.scenario is None else spec.scenario.to_json()
                ),
                "batch_hint": spec.batch_hint,
            },
        }

    def _pop_claimable(self) -> Optional[_Computation]:
        """Highest-priority queued computation, skipping dead entries."""
        while self._heap:
            _neg_priority, _seq, computation = heapq.heappop(self._heap)
            if computation.cancelled or computation.claimed:
                continue
            if computation.state != JobState.QUEUED:
                continue
            return computation
        return None

    async def fleet_heartbeat(
        self, lease_id: str, worker_id: Optional[str] = None
    ) -> Dict[str, object]:
        """Renew a lease (raises :class:`LeaseError` on a dead one)."""
        lease = self.fleet.renew(lease_id, worker_id)
        return lease.to_dict()

    async def fleet_complete(
        self,
        lease_id: str,
        worker_id: str,
        result: object,
        wall_seconds: float = 0.0,
    ) -> Dict[str, object]:
        """Upload the result blob for a leased computation.

        A malformed payload is rejected with 400 *without* releasing
        the lease — a torn upload looks exactly like a worker that died
        mid-upload, and the supervisor's expiry path re-dispatches it.
        A dead lease raises :class:`LeaseError` (409) and the upload is
        dropped: the re-dispatched attempt's bit-identical result is
        the one that gets stored.
        """
        try:
            lease = self.fleet.checked(lease_id, worker_id)
        except LeaseError:
            self.fleet.counters["uploads_rejected"] += 1
            raise
        computation = self._inflight.get(lease.key)
        if computation is None or computation.lease_id != lease_id:
            self.fleet.counters["uploads_rejected"] += 1
            self.fleet.release(lease_id)
            raise LeaseError(
                f"lease {lease_id!r} no longer maps to a live computation"
            )
        from repro.experiments.base import ExperimentResult

        if not isinstance(result, dict):
            raise ConfigurationError(
                "fleet upload payload must be a result object"
            )
        try:
            parsed = ExperimentResult.from_dict(result)
        except Exception as exc:  # noqa: BLE001 - torn/garbage upload
            # The lease stays live: a malformed blob is indistinguishable
            # from a worker dying mid-upload, and expiry re-dispatches it.
            raise ConfigurationError(
                f"fleet upload payload is not a valid result: {exc!r}"
            ) from exc
        self.fleet.release(lease_id)
        computation.lease_id = None
        self._lease_outcome(computation, lease_id, "completed")
        info = self.fleet.touch_worker(worker_id)
        info.completed += 1
        self.fleet.counters["fleet_completed"] += 1
        evicted = self.store.put(computation.key, parsed)
        self.telemetry.result_stored(computation.key, self.telemetry.bus.time)
        for victim in evicted:
            self.telemetry.store_evicted(victim.key, self.telemetry.bus.time)
        self._finish_computation(
            computation,
            state=JobState.DONE,
            attempts=lease.attempt,
            wall_seconds=wall_seconds,
        )
        return {"stored": True, "key": computation.key}

    async def fleet_fail(
        self, lease_id: str, worker_id: str, error: str
    ) -> Dict[str, object]:
        """Report a *deterministic* failure (the experiment itself
        raised).  Mirrors the pool's semantics: deterministic failures
        are not retried — retrying would fail identically."""
        lease = self.fleet.checked(lease_id, worker_id)
        computation = self._inflight.get(lease.key)
        self.fleet.release(lease_id)
        if computation is None or computation.lease_id != lease_id:
            raise LeaseError(
                f"lease {lease_id!r} no longer maps to a live computation"
            )
        computation.lease_id = None
        self._lease_outcome(computation, lease_id, "failed")
        info = self.fleet.touch_worker(worker_id)
        info.failed += 1
        self.fleet.counters["fleet_failed"] += 1
        self._finish_computation(
            computation,
            state=JobState.FAILED,
            error=error or "fleet worker reported failure",
            attempts=lease.attempt,
        )
        return {"state": JobState.FAILED, "key": computation.key}

    @staticmethod
    def _lease_outcome(
        computation: _Computation, lease_id: str, outcome: str
    ) -> None:
        for record in reversed(computation.lease_history):
            if record["lease_id"] == lease_id:
                record["outcome"] = outcome
                return

    def begin_drain(self) -> None:
        """Enter drain mode: shed new submissions, grant no new leases,
        let in-flight leases finish (SIGTERM handling)."""
        self.fleet.draining = True

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Drain in-flight leases; ``True`` when everything finished.

        Enters drain mode, then waits for live leases and running
        computations to complete (the supervisor keeps expiring dead
        leases; with ``dead_letter_after`` exhausted they dead-letter
        and the drain still terminates).  Queued-but-never-leased work
        is cancelled by the subsequent :meth:`stop`.
        """
        self.begin_drain()
        loop = asyncio.get_running_loop()
        deadline = None if timeout is None else loop.time() + timeout
        while True:
            busy = bool(self.fleet.leases) or any(
                computation.state == JobState.RUNNING
                for computation in self._inflight.values()
            )
            if not busy:
                return True
            if deadline is not None and loop.time() >= deadline:
                return False
            await asyncio.sleep(0.02)

    # ------------------------------------------------------------------
    # Supervisor: lease expiry, re-dispatch backoff, dead-lettering
    # ------------------------------------------------------------------
    async def _supervisor_loop(self) -> None:
        interval = self.fleet.config.effective_supervisor_interval
        while True:
            await asyncio.sleep(interval)
            self.supervise_once()

    def supervise_once(self) -> None:
        """One supervisor tick (synchronous; also driven by tests).

        Expires overdue leases — re-dispatching their computations with
        capped exponential backoff + deterministic jitter, or
        quarantining them into dead-letter after ``dead_letter_after``
        failed leases — and promotes delayed computations whose backoff
        has elapsed back onto the heap.
        """
        for lease in self.fleet.expired_leases():
            self.fleet.release(lease.lease_id)
            self.fleet.counters["leases_expired"] += 1
            computation = self._inflight.get(lease.key)
            if computation is None or computation.lease_id != lease.lease_id:
                continue  # completed/failed just before the tick
            computation.lease_id = None
            self._lease_outcome(computation, lease.lease_id, "expired")
            if computation.lease_attempts >= self.fleet.config.dead_letter_after:
                self.fleet.counters["dead_letter"] += 1
                self.fleet.dead_letters.append(
                    {
                        "key": computation.key,
                        "experiment_id": computation.spec.experiment_id,
                        "lease_attempts": computation.lease_attempts,
                        "lease_history": list(computation.lease_history),
                    }
                )
                self._finish_computation(
                    computation,
                    state=JobState.DEAD_LETTER,
                    error=(
                        f"dead-lettered after {computation.lease_attempts} "
                        f"failed lease(s)"
                    ),
                    attempts=computation.lease_attempts,
                )
                continue
            delay = lease_backoff_seconds(
                computation.key,
                computation.lease_attempts,
                self.fleet.config.backoff_cap,
            )
            computation.state = JobState.QUEUED
            for job in computation.jobs:
                job.state = JobState.QUEUED
                self._publish_job(job)
            self.fleet.counters["redispatches"] += 1
            self._queued += 1
            self._delayed.append((self.fleet.now() + delay, computation))
        if self._delayed:
            now = self.fleet.now()
            still_waiting = []
            for ready_at, computation in self._delayed:
                if computation.cancelled or computation.claimed:
                    continue  # cancel() already settled the accounting
                if ready_at <= now:
                    heapq.heappush(
                        self._heap,
                        (
                            -computation.priority,
                            next(self._sequence),
                            computation,
                        ),
                    )
                else:
                    still_waiting.append((ready_at, computation))
            self._delayed = still_waiting

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Counters plus gauges for ``/metrics`` and ``/healthz``."""
        running = sum(
            1
            for computation in self._inflight.values()
            if computation.state == JobState.RUNNING
        )
        data: Dict[str, object] = dict(self.counters)
        data["queued"] = self._queued
        data["running"] = running
        data["inflight_keys"] = len(self._inflight)
        data["workers"] = self.workers
        data["delayed"] = len(self._delayed)
        data["retry_after_seconds"] = self.retry_after_seconds()
        data["fleet"] = self.fleet.snapshot()
        return data


def spec_with_timeout(spec: JobSpec, timeout: Optional[float]) -> JobSpec:
    """A copy of ``spec`` with its (non-key) timeout replaced."""
    return replace(spec, timeout=timeout)
