"""Lease protocol state for the distributed worker fleet.

The scheduler hands work to external worker processes through *leases*:
a worker claims the highest-priority queued computation and receives a
TTL lease keyed by the job's content address.  While it computes, it
renews the lease with heartbeats; on completion it uploads the result
blob under the same lease.  A supervisor loop inside the scheduler
watches the clock: a lease whose TTL elapses without renewal — the
worker crashed, hung, or got partitioned — is *expired*, and its
computation re-enters the queue after a capped exponential backoff with
deterministic jitter (the runner pool's crash-retry curve, capped).
After ``dead_letter_after`` failed leases the computation is quarantined
into the ``dead_letter`` terminal state instead of retrying forever.

This module holds the passive state — configuration, lease and worker
records, the fleet counter set — plus the pure timing helpers.  All
mutation happens inside :class:`repro.service.scheduler.JobScheduler`
on its event loop, which keeps the protocol lock-free.

Correctness notes:

* **No double-run:** a computation is only ever *either* on the heap,
  *or* in the delayed (backoff) list, *or* held by exactly one live
  lease.  Expiry moves it lease → delayed; claim moves it heap → lease.
  A worker that keeps computing after its lease expired can finish, but
  its upload quotes a dead ``lease_id`` and is rejected — the re-run's
  result (bit-identical by construction) is the one stored.
* **No torn blobs:** uploads go through
  :meth:`repro.service.store.ResultStore.put` (atomic temp +
  ``os.replace``), and a worker dying mid-upload simply never completes
  its lease — the supervisor re-dispatches and the store's
  discard-and-recompute self-healing covers any corruption beyond that.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import ConfigurationError, ReproError
from repro.runner.pool import crash_backoff_seconds

#: Terminal state for poison jobs (lives beside the JobState strings).
DEAD_LETTER = "dead_letter"


class LeaseError(ReproError):
    """A lease operation quoted an unknown, expired, or foreign lease.

    Maps to HTTP 409: the worker's view of the lease diverged from the
    scheduler's (usually because the supervisor already expired it and
    re-dispatched the job).  The correct worker reaction is to drop the
    work item on the floor — someone else owns it now.
    """


class FleetUnavailableError(ReproError):
    """The fleet cannot accept new work right now (HTTP 503).

    Raised on submission when the service is draining for shutdown or
    when ``min_workers`` live workers are required but absent.  Carries
    the retry hint the HTTP layer surfaces as ``Retry-After``.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


@dataclass(frozen=True)
class FleetConfig:
    """Tuning knobs for the lease protocol (all times in seconds)."""

    #: Lease TTL: a worker must heartbeat within this window or the
    #: supervisor declares it dead and re-dispatches the job.
    lease_ttl: float = 10.0
    #: Quarantine a job into dead-letter after this many failed leases.
    dead_letter_after: int = 3
    #: With fewer live workers than this, submissions shed with 503
    #: instead of queueing (0 = degrade to the in-process pool instead).
    min_workers: int = 0
    #: A worker with no heartbeat or claim for this long is dropped from
    #: the live set (``None``: same as the lease TTL).
    worker_ttl: Optional[float] = None
    #: Cap on the exponential re-dispatch backoff base.
    backoff_cap: float = 5.0
    #: Supervisor tick period (``None``: lease_ttl / 4, clamped).
    supervisor_interval: Optional[float] = None

    def __post_init__(self) -> None:
        if self.lease_ttl <= 0:
            raise ConfigurationError(
                f"lease_ttl must be positive, got {self.lease_ttl}"
            )
        if self.dead_letter_after < 1:
            raise ConfigurationError(
                f"dead_letter_after must be >= 1, got {self.dead_letter_after}"
            )
        if self.min_workers < 0:
            raise ConfigurationError(
                f"min_workers must be >= 0, got {self.min_workers}"
            )
        if self.backoff_cap <= 0:
            raise ConfigurationError(
                f"backoff_cap must be positive, got {self.backoff_cap}"
            )

    @property
    def effective_worker_ttl(self) -> float:
        return self.worker_ttl if self.worker_ttl is not None else self.lease_ttl

    @property
    def effective_supervisor_interval(self) -> float:
        if self.supervisor_interval is not None:
            return self.supervisor_interval
        return min(1.0, max(0.02, self.lease_ttl / 4.0))


@dataclass
class Lease:
    """One live claim of one computation by one worker."""

    lease_id: str
    key: str
    worker_id: str
    attempt: int
    granted_at: float
    expires_at: float
    renewals: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "lease_id": self.lease_id,
            "key": self.key,
            "worker_id": self.worker_id,
            "attempt": self.attempt,
            "renewals": self.renewals,
        }


@dataclass
class WorkerInfo:
    """Liveness record and per-worker counters for one fleet worker."""

    worker_id: str
    first_seen: float
    last_seen: float
    claims: int = 0
    completed: int = 0
    failed: int = 0

    def to_dict(self, now: float, ttl: float) -> Dict[str, object]:
        return {
            "worker_id": self.worker_id,
            "live": (now - self.last_seen) <= ttl,
            "age_seconds": round(now - self.last_seen, 3),
            "claims": self.claims,
            "completed": self.completed,
            "failed": self.failed,
        }


def new_lease_id() -> str:
    """Opaque lease token; unguessable so a stale worker cannot forge a
    successor lease after expiry re-dispatch."""
    return f"lease-{uuid.uuid4().hex}"


def lease_backoff_seconds(key: str, attempt: int, cap: float) -> float:
    """Re-dispatch delay after ``attempt`` failed leases of job ``key``.

    The runner pool's deterministic crash-retry curve (exponential with
    seeded jitter derived from the id), capped so a poison-adjacent job
    never parks for minutes: attempt 1 → ~0.25 s, doubling up to
    ``cap`` (pre-jitter).
    """
    return crash_backoff_seconds(f"lease/{key}", attempt + 1, cap=cap)


@dataclass
class FleetState:
    """All lease-protocol state, owned by the scheduler's event loop.

    ``clock`` is injectable (defaults to :func:`time.monotonic`) so the
    expiry tests can march time forward without sleeping.
    """

    config: FleetConfig = field(default_factory=FleetConfig)
    clock: object = time.monotonic
    leases: Dict[str, Lease] = field(default_factory=dict)
    workers: Dict[str, WorkerInfo] = field(default_factory=dict)
    #: Dead-letter records: {key, experiment_id, lease_history}.
    dead_letters: List[Dict[str, object]] = field(default_factory=list)
    draining: bool = False
    counters: Dict[str, int] = field(
        default_factory=lambda: {
            "leases_granted": 0,
            "leases_renewed": 0,
            "leases_expired": 0,
            "redispatches": 0,
            "dead_letter": 0,
            "uploads_rejected": 0,
            "fleet_completed": 0,
            "fleet_failed": 0,
            "shed": 0,
        }
    )

    def now(self) -> float:
        return self.clock()  # type: ignore[operator]

    def touch_worker(self, worker_id: str) -> WorkerInfo:
        """Record a sign of life from ``worker_id`` (registering it)."""
        now = self.now()
        info = self.workers.get(worker_id)
        if info is None:
            info = WorkerInfo(
                worker_id=worker_id, first_seen=now, last_seen=now
            )
            self.workers[worker_id] = info
        else:
            info.last_seen = now
        return info

    def live_workers(self) -> List[WorkerInfo]:
        """Workers heard from within the worker TTL."""
        now = self.now()
        ttl = self.config.effective_worker_ttl
        return [
            info
            for info in self.workers.values()
            if (now - info.last_seen) <= ttl
        ]

    def grant(self, key: str, worker_id: str, attempt: int) -> Lease:
        """Mint a lease for ``key`` held by ``worker_id``."""
        now = self.now()
        lease = Lease(
            lease_id=new_lease_id(),
            key=key,
            worker_id=worker_id,
            attempt=attempt,
            granted_at=now,
            expires_at=now + self.config.lease_ttl,
        )
        self.leases[lease.lease_id] = lease
        self.counters["leases_granted"] += 1
        return lease

    def checked(self, lease_id: str, worker_id: Optional[str] = None) -> Lease:
        """The live lease ``lease_id``, or a loud :class:`LeaseError`."""
        lease = self.leases.get(lease_id)
        if lease is None:
            raise LeaseError(
                f"no live lease {lease_id!r} (expired and re-dispatched, "
                f"or never granted); drop the work item"
            )
        if worker_id is not None and lease.worker_id != worker_id:
            raise LeaseError(
                f"lease {lease_id!r} belongs to worker "
                f"{lease.worker_id!r}, not {worker_id!r}"
            )
        return lease

    def renew(self, lease_id: str, worker_id: Optional[str] = None) -> Lease:
        """Heartbeat: push the lease's expiry out by one TTL."""
        lease = self.checked(lease_id, worker_id)
        lease.expires_at = self.now() + self.config.lease_ttl
        lease.renewals += 1
        self.counters["leases_renewed"] += 1
        if worker_id is not None:
            self.touch_worker(worker_id)
        return lease

    def release(self, lease_id: str) -> Optional[Lease]:
        """Drop a lease from the live set (completion, failure, expiry)."""
        return self.leases.pop(lease_id, None)

    def expired_leases(self) -> List[Lease]:
        """Leases whose TTL has elapsed, oldest expiry first."""
        now = self.now()
        stale = [
            lease for lease in self.leases.values() if lease.expires_at < now
        ]
        stale.sort(key=lambda lease: lease.expires_at)
        return stale

    def snapshot(self) -> Dict[str, object]:
        """JSON view for ``/healthz``, ``/metrics`` and ``GET /fleet``."""
        now = self.now()
        ttl = self.config.effective_worker_ttl
        workers = [
            info.to_dict(now, ttl)
            for info in sorted(self.workers.values(), key=lambda w: w.worker_id)
        ]
        return {
            "workers": workers,
            "workers_live": sum(1 for w in workers if w["live"]),
            "leases_active": len(self.leases),
            "leases": [
                lease.to_dict()
                for lease in sorted(
                    self.leases.values(), key=lambda item: item.lease_id
                )
            ],
            "dead_letters": list(self.dead_letters),
            "draining": self.draining,
            "counters": dict(self.counters),
        }
