"""Deterministic sleep-bound stub experiment for service benchmarks.

The saturation benchmark (``scripts/load_test_service.py --bench``) and
the fleet smoke need a job whose cost is *known and tunable* — real
experiments would make throughput numbers hostage to simulation speed
on the host.  ``stub_experiment`` sleeps ``BASE_SECONDS × profile.scale``
and returns a result that depends only on the seed, so:

* wall-clock per job is controlled by the submitted profile;
* blobs are bit-identical across runs, workers, and fault regimes —
  exactly the property the chaos invariant checks;
* it is importable by dotted ``entry_point`` path from worker
  processes, like the fixtures in ``tests/fake_experiments.py``.
"""

from __future__ import annotations

import time

from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import resolve_profile

#: Nominal cost of one stub job at ``scale=1.0``, in seconds.
BASE_SECONDS = 0.05


def stub_experiment(profile=None, seed: int = 0) -> ExperimentResult:
    """Sleep a profile-scaled beat, then return a seed-keyed result."""
    resolved = resolve_profile(profile)
    time.sleep(BASE_SECONDS * resolved.scale)
    # A couple of derived cells so the blob is not a bare echo (torn or
    # mixed-up uploads cannot accidentally collide with another seed).
    return ExperimentResult(
        experiment_id="service_bench_stub",
        title="service bench stub",
        paper_reference="benchmarks",
        columns=["seed", "square", "parity"],
        rows=[[seed, seed * seed, seed % 2]],
        params={"scale": resolved.scale},
    )
