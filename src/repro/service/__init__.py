"""Experiment service layer: memoised serving of experiment results.

Three layers turn the offline reproduction into something that can sit
behind traffic (the ROADMAP's north star):

* :mod:`repro.service.store` — a **content-addressed result store**: one
  durable JSON blob per canonical cache key (see
  :mod:`repro.service.keys`), with LRU size-capped eviction and hit/miss
  counters.  Blobs are exactly ``ExperimentResult.to_json()`` bytes, so a
  stored result is bit-identical to a direct :mod:`repro.runner` run.
* :mod:`repro.service.scheduler` — an **async job scheduler**: an asyncio
  front end over the existing runner execution engine with a priority
  queue, per-key in-flight deduplication (N identical submissions
  coalesce into one computation), bounded queue depth with explicit
  backpressure, cancellation, and the runner's per-job timeout / crash
  retry when process isolation is on.
* :mod:`repro.service.http` — a **stdlib-only HTTP/JSON API**
  (``POST /jobs``, ``GET /jobs/{id}``, ``GET /results/{key}``,
  ``GET /experiments``, ``GET /healthz``, ``GET /metrics``) whose
  Prometheus metrics are fed by the telemetry
  :class:`~repro.telemetry.subscribers.WindowedCounters` /
  :class:`~repro.telemetry.subscribers.BusProfiler` machinery
  (:mod:`repro.service.metrics`).
* :mod:`repro.service.stream` + :mod:`repro.service.progress` — **live
  event streaming**: a hub :class:`~repro.telemetry.net.StreamPublisher`
  carrying scheduler ``job`` transitions plus per-job mirrored run
  telemetry (closed-loop scores/alarms/flips, sweep progress marks),
  served as SSE/NDJSON over ``GET /events`` and
  ``GET /jobs/{id}/events`` with ``Last-Event-ID`` resume and bounded
  per-client queues — a slow consumer drops frames, never stalls a run.
* :mod:`repro.service.fleet` + :mod:`repro.service.worker` — a
  **crash-safe distributed worker fleet**: external worker processes
  claim jobs through a TTL lease protocol (``POST /fleet/claim``),
  renew with heartbeats and upload result blobs; a supervisor loop
  expires dead leases, re-dispatches with capped deterministic backoff,
  and quarantines poison jobs into a ``dead_letter`` state.  With zero
  live workers the scheduler degrades gracefully back to the in-process
  pool path.

Quick start::

    from repro.service import JobScheduler, JobSpec, ResultStore

    store = ResultStore("results-store")
    async with JobScheduler(store, workers=2) as scheduler:
        job = await scheduler.submit(JobSpec("fig6", profile="quick"))
        job = await scheduler.wait(job.job_id)
        print(store.get(job.key).render())

or, over HTTP: ``python -m repro.service --port 8321`` and see the
README's "Serving experiments" section for curl examples.
"""

from repro.service.fleet import (
    FleetConfig,
    FleetUnavailableError,
    LeaseError,
)
from repro.service.keys import (
    KEY_SCHEMA_VERSION,
    cache_key,
    key_material,
    wb_config_fingerprint,
)
from repro.service.metrics import ServiceTelemetry, render_prometheus
from repro.service.scheduler import (
    JobScheduler,
    JobSpec,
    JobState,
    QueueFullError,
    UnknownJobError,
)
from repro.service.store import ResultStore, StoreStats
from repro.service.stream import ServiceStream
from repro.service.worker import FleetWorker

__all__ = [
    "KEY_SCHEMA_VERSION",
    "FleetConfig",
    "FleetUnavailableError",
    "FleetWorker",
    "JobScheduler",
    "JobSpec",
    "JobState",
    "LeaseError",
    "QueueFullError",
    "ResultStore",
    "ServiceStream",
    "ServiceTelemetry",
    "StoreStats",
    "UnknownJobError",
    "cache_key",
    "key_material",
    "render_prometheus",
    "wb_config_fingerprint",
]
