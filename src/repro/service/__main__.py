"""``python -m repro.service`` — run the experiment service.

Example::

    python -m repro.service --port 8321 --store results-store --workers 4
    curl -s -X POST localhost:8321/jobs \\
        -d '{"experiment_id": "fig6", "profile": "quick", "wait": true}'
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.common.errors import ReproError
from repro.service.fleet import FleetConfig
from repro.service.http import serve


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description=(
            "Serve experiments over HTTP with a content-addressed result "
            "store and an async job scheduler (memoised, deduplicated)."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: %(default)s)")
    parser.add_argument("--port", type=int, default=8321,
                        help="bind port, 0 for ephemeral (default: %(default)s)")
    parser.add_argument("--store", default="results-store", metavar="DIR",
                        help="result-store directory (default: %(default)s)")
    parser.add_argument("--capacity-mb", type=float, default=None,
                        metavar="MB",
                        help="LRU store size cap in MiB (default: unbounded)")
    parser.add_argument("--workers", type=int, default=2,
                        help="concurrent computations (default: %(default)s)")
    parser.add_argument("--queue-depth", type=int, default=32,
                        help="queued computations before 429 "
                             "(default: %(default)s)")
    parser.add_argument("--isolate", action="store_true",
                        help="run each computation in a worker process "
                             "(enables the runner's timeout and crash retry)")
    parser.add_argument("--window", type=int, default=64,
                        help="telemetry window size in submissions "
                             "(default: %(default)s)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-request access logging")
    fleet = parser.add_argument_group("fleet (distributed workers)")
    fleet.add_argument("--lease-ttl", type=float, default=10.0,
                       help="fleet lease TTL in seconds (default: %(default)s)")
    fleet.add_argument("--dead-letter-after", type=int, default=3,
                       help="quarantine a job after this many failed "
                            "leases (default: %(default)s)")
    fleet.add_argument("--min-workers", type=int, default=0,
                       help="shed load with 503 below this many live fleet "
                            "workers; 0 falls back to the in-process pool "
                            "(default: %(default)s)")
    fleet.add_argument("--drain-timeout", type=float, default=30.0,
                       help="seconds SIGTERM waits for in-flight leases "
                            "(default: %(default)s)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    capacity_bytes = (
        None if args.capacity_mb is None
        else max(1, int(args.capacity_mb * 1024 * 1024))
    )
    try:
        serve(
            args.store,
            host=args.host,
            port=args.port,
            capacity_bytes=capacity_bytes,
            workers=args.workers,
            queue_depth=args.queue_depth,
            isolate=args.isolate,
            window=args.window,
            verbose=not args.quiet,
            fleet=FleetConfig(
                lease_ttl=args.lease_ttl,
                dead_letter_after=args.dead_letter_after,
                min_workers=args.min_workers,
            ),
            drain_timeout=args.drain_timeout,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
