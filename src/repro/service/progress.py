"""Per-job ambient stream binding and progress frames.

The scheduler runs job groups on executor threads; wrapping the
computation in :func:`job_publisher_scope` binds a job-stamped view of
the service hub as that thread's ambient publisher
(:func:`repro.telemetry.net.bind_publisher`).  Everything published
through the ambient binding — a closed-loop run mirroring its
``cache_event`` / ``score`` / ``alarm`` / ``flip`` frames, a sweep
calling :func:`publish_progress` between points — lands on the hub
stamped with ``job_id``, which is what the ``GET /jobs/{id}/events``
filter selects on.

Deep layers never import the service: they call
:func:`publish_progress` (or mirror into
:func:`~repro.telemetry.net.active_publisher`), which is a no-op when
nothing is bound — zero cost outside the service, no effect on run
determinism inside it (the hub assigns its own event ids; run-local id
sequences are untouched).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.telemetry.net import (
    StreamPublisher,
    bind_publisher,
    publish_ambient,
)


class JobStampedPublisher:
    """A publisher view that stamps every payload with one ``job_id``."""

    def __init__(self, hub: StreamPublisher, job_id: str) -> None:
        self.hub = hub
        self.job_id = job_id

    def publish(self, type: str, payload: Dict[str, object]):
        stamped = dict(payload)
        stamped.setdefault("job_id", self.job_id)
        return self.hub.publish(type, stamped)


@contextmanager
def job_publisher_scope(
    hub: Optional[StreamPublisher], job_id: str
) -> Iterator[None]:
    """Bind a job-stamped hub view as this thread's ambient publisher."""
    if hub is None:
        yield
        return
    previous = bind_publisher(JobStampedPublisher(hub, job_id))
    try:
        yield
    finally:
        bind_publisher(previous)


def publish_progress(stage: str, **fields: object) -> None:
    """Publish one ``progress`` frame to the ambient publisher, if any.

    Sprinkled through long-running measurement loops (one frame per
    sweep point / suspect) so a streaming consumer can watch a job
    advance.  Outside a bound scope this is a cheap no-op.  Deep layers
    use :func:`repro.telemetry.net.publish_ambient` directly; this
    wrapper just fixes the frame shape.
    """
    payload: Dict[str, object] = {"stage": stage}
    payload.update(fields)
    publish_ambient("progress", payload)


__all__ = ["JobStampedPublisher", "job_publisher_scope", "publish_progress"]
