"""Service observability: the result store *is* a cache, so meter it as one.

Rather than inventing a parallel metrics stack, the service maps its
lifecycle onto the existing cache-event vocabulary and feeds the same
:class:`~repro.telemetry.subscribers.WindowedCounters` /
:class:`~repro.telemetry.subscribers.BusProfiler` subscribers every
simulated hierarchy feeds — one :class:`~repro.telemetry.bus.TelemetryBus`
whose logical clock ticks once per job submission:

========================  =============================================
Event kind                Service meaning
========================  =============================================
``HIT``                   submission served without a new computation
                          (store hit, or coalesced onto one in flight;
                          ``dirty=True`` marks the coalesced case)
``MISS``                  submission enqueued a new computation
``WRITEBACK``             a computation finished and its result was
                          written back into the store
``EVICT``                 the store's LRU cap pushed a blob out
``FLUSH``                 a queued computation was cancelled
``FAULT``                 a computation failed (error / timeout / crash)
========================  =============================================

``WindowedCounters`` then gives hit/miss rates per submission window for
free (the same maths the detectors use), and ``BusProfiler`` gives
events/sec — both rendered into Prometheus text by
:func:`render_prometheus` for ``GET /metrics``.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro.telemetry.bus import TelemetryBus
from repro.telemetry.events import CacheEvent, EventKind
from repro.telemetry.subscribers import BusProfiler, WindowedCounters

#: The pseudo-"cache level" service events carry (1-based like L1D).
STORE_LEVEL = 1

#: How many hex chars of the content address ride in ``event.address``.
_ADDRESS_HEX_CHARS = 12


class ServiceTelemetry:
    """The service's telemetry bus plus its two standing subscribers."""

    def __init__(self, window: int = 64) -> None:
        self.bus = TelemetryBus(enabled=True)
        self.counters = WindowedCounters(window=window)
        self.profiler = BusProfiler()
        self.bus.subscribe(self.counters)
        self.bus.subscribe(self.profiler)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _emit(
        self,
        kind: EventKind,
        key: str,
        time_: int,
        write: bool = False,
        dirty: bool = False,
    ) -> None:
        # The content address's leading hex rides in the address field,
        # so a trace of service events still says *which* result moved.
        address = int(key[:_ADDRESS_HEX_CHARS], 16) if key else 0
        self.bus.emit(
            CacheEvent(time_, kind, STORE_LEVEL, 0, 0, address, write, dirty)
        )

    def submission(self) -> int:
        """Tick the logical clock for one job submission; returns it."""
        return self.bus.tick()

    def store_hit(self, key: str, time_: int) -> None:
        self._emit(EventKind.HIT, key, time_)

    def coalesced(self, key: str, time_: int) -> None:
        self._emit(EventKind.HIT, key, time_, dirty=True)

    def computation_enqueued(self, key: str, time_: int) -> None:
        self._emit(EventKind.MISS, key, time_)

    def result_stored(self, key: str, time_: int) -> None:
        self._emit(EventKind.WRITEBACK, key, time_, write=True, dirty=True)

    def store_evicted(self, key: str, time_: int) -> None:
        self._emit(EventKind.EVICT, key, time_)

    def cancelled(self, key: str, time_: int) -> None:
        self._emit(EventKind.FLUSH, key, time_)

    def computation_failed(self, key: str, time_: int) -> None:
        self._emit(EventKind.FAULT, key, time_)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """JSON view (healthz): totals plus profiler throughput."""
        self.counters.finish()
        totals = self.counters.totals(STORE_LEVEL)
        return {
            "submissions": totals.accesses,
            "served_without_computation": totals.hits,
            "computations_enqueued": totals.misses,
            "results_stored": totals.writebacks,
            "store_evictions": totals.evictions - totals.writebacks,
            "cancellations": totals.flushes,
            "failures": totals.faults,
            "events_per_second": round(self.profiler.events_per_second, 3),
        }


def _prometheus_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_prometheus(
    scheduler_counters: Dict[str, object],
    store_counters: Dict[str, int],
    telemetry: Optional[ServiceTelemetry] = None,
    uptime_seconds: Optional[float] = None,
    stream: Optional[Dict[str, object]] = None,
    orchestration: Optional[Dict[str, int]] = None,
) -> str:
    """Render all service metrics in Prometheus text exposition format."""
    lines: List[str] = []

    def metric(
        name: str,
        kind: str,
        help_text: str,
        samples: Iterable[Tuple[Dict[str, str], float]],
    ) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, value in samples:
            label_text = ""
            if labels:
                rendered = ",".join(
                    f'{key}="{_prometheus_escape(str(val))}"'
                    for key, val in sorted(labels.items())
                )
                label_text = "{" + rendered + "}"
            if isinstance(value, float) and not value.is_integer():
                value_text = repr(value)
            else:
                value_text = str(int(value))
            lines.append(f"{name}{label_text} {value_text}")

    gauge_names = {
        "queued",
        "running",
        "inflight_keys",
        "workers",
        "delayed",
        "retry_after_seconds",
    }
    batch_names = {"batch_groups", "batch_replicas", "batch_coalesced"}
    for name, value in sorted(scheduler_counters.items()):
        if not isinstance(value, (int, float)):
            continue
        if name in batch_names:
            continue  # rendered below with their derived gauges
        if name in gauge_names:
            metric(
                f"repro_service_{name}",
                "gauge",
                f"Scheduler gauge: {name}.",
                [({}, float(value))],
            )
        else:
            metric(
                f"repro_service_jobs_{name}_total",
                "counter",
                f"Scheduler counter: {name} jobs.",
                [({}, float(value))],
            )

    # Batch-group coalescing: counters plus the two ratios operators
    # actually watch (how full groups run, how much queue time riding a
    # group saved).
    groups = float(scheduler_counters.get("batch_groups", 0) or 0)
    replicas = float(scheduler_counters.get("batch_replicas", 0) or 0)
    coalesced = float(scheduler_counters.get("batch_coalesced", 0) or 0)
    metric(
        "repro_service_batch_groups_total",
        "counter",
        "Batch groups formed by the scheduler (hinted computations run).",
        [({}, groups)],
    )
    metric(
        "repro_service_batch_replicas_total",
        "counter",
        "Computations carried by batch groups (group leaders included).",
        [({}, replicas)],
    )
    metric(
        "repro_service_batch_coalesced_total",
        "counter",
        "Queued computations claimed into another computation's group.",
        [({}, coalesced)],
    )
    metric(
        "repro_service_batch_replicas_per_group",
        "gauge",
        "Mean replicas per batch group since start.",
        [({}, round(replicas / groups, 6) if groups else 0.0)],
    )
    metric(
        "repro_service_batch_coalesce_hit_rate",
        "gauge",
        "Share of batch-group replicas that rode along instead of "
        "waiting for their own worker slot.",
        [({}, round(coalesced / replicas, 6) if replicas else 0.0)],
    )

    # Fleet lease protocol: per-worker liveness, live lease gauge, and
    # the failure-handling counters (expirations, re-dispatches,
    # dead-letter quarantines, rejected stale uploads, shed load).
    fleet = scheduler_counters.get("fleet")
    if isinstance(fleet, dict):
        fleet_counters = fleet.get("counters", {})
        fleet_workers = fleet.get("workers", [])
        metric(
            "repro_service_fleet_workers_live",
            "gauge",
            "Fleet workers heard from within the worker TTL.",
            [({}, float(fleet.get("workers_live", 0)))],
        )
        metric(
            "repro_service_fleet_worker_up",
            "gauge",
            "Per-worker liveness (1 = heartbeat/claim within TTL).",
            [
                ({"worker_id": worker["worker_id"]}, 1.0 if worker["live"] else 0.0)
                for worker in fleet_workers
            ]
            or [({}, 0.0)],
        )
        metric(
            "repro_service_fleet_leases_active",
            "gauge",
            "Leases currently held by fleet workers.",
            [({}, float(fleet.get("leases_active", 0)))],
        )
        metric(
            "repro_service_fleet_draining",
            "gauge",
            "1 while the service drains for shutdown (shedding load).",
            [({}, 1.0 if fleet.get("draining") else 0.0)],
        )
        for name in (
            "leases_granted",
            "leases_renewed",
            "leases_expired",
            "redispatches",
            "dead_letter",
            "uploads_rejected",
            "fleet_completed",
            "fleet_failed",
            "shed",
        ):
            metric(
                f"repro_service_fleet_{name}_total",
                "counter",
                f"Fleet lease-protocol counter: {name}.",
                [({}, float(fleet_counters.get(name, 0)))],
            )

    for name in ("hits", "misses", "puts", "evictions", "corrupt_discarded"):
        metric(
            f"repro_service_store_{name}_total",
            "counter",
            f"Result store counter: {name}.",
            [({}, float(store_counters.get(name, 0)))],
        )
    for name in ("entries", "bytes"):
        metric(
            f"repro_service_store_{name}",
            "gauge",
            f"Result store gauge: {name}.",
            [({}, float(store_counters.get(name, 0)))],
        )
    lookups = store_counters.get("hits", 0) + store_counters.get("misses", 0)
    hit_rate = store_counters.get("hits", 0) / lookups if lookups else 0.0
    metric(
        "repro_service_store_hit_rate",
        "gauge",
        "Store hits / lookups since start.",
        [({}, round(hit_rate, 6))],
    )

    if telemetry is not None:
        telemetry.counters.finish()
        totals = telemetry.counters.totals(STORE_LEVEL)
        metric(
            "repro_service_bus_events_total",
            "counter",
            "Cache-vocabulary service events on the telemetry bus.",
            [
                ({"kind": "hit"}, float(totals.hits)),
                ({"kind": "miss"}, float(totals.misses)),
                ({"kind": "writeback"}, float(totals.writebacks)),
                ({"kind": "evict"}, float(totals.evictions - totals.writebacks)),
                ({"kind": "flush"}, float(totals.flushes)),
                ({"kind": "fault"}, float(totals.faults)),
            ],
        )
        metric(
            "repro_service_bus_windows",
            "gauge",
            "Completed submission windows (WindowedCounters).",
            [({}, float(len(telemetry.counters.windows)))],
        )
        metric(
            "repro_service_bus_events_per_second",
            "gauge",
            "Observed bus throughput (BusProfiler).",
            [({}, round(telemetry.profiler.events_per_second, 3))],
        )

    # Live event stream (the hub publisher) and closed-loop orchestration.
    if stream is not None:
        metric(
            "repro_stream_clients",
            "gauge",
            "Stream clients currently attached to the hub publisher.",
            [({}, float(stream.get("clients", 0)))],
        )
        metric(
            "repro_stream_dropped_total",
            "counter",
            "Frames dropped across all stream clients (bounded queues).",
            [({}, float(stream.get("dropped_total", 0)))],
        )
        metric(
            "repro_stream_last_event_id",
            "gauge",
            "Highest event id the hub publisher has assigned.",
            [({}, float(stream.get("last_event_id", 0)))],
        )
    if orchestration is not None:
        metric(
            "repro_alarms_total",
            "counter",
            "Fused k-of-n alarms fired by fleet aggregators.",
            [({}, float(orchestration.get("alarms_total", 0)))],
        )
        metric(
            "repro_defense_flips_total",
            "counter",
            "Defense flips applied by closed-loop responders.",
            [({}, float(orchestration.get("defense_flips_total", 0)))],
        )

    if uptime_seconds is not None:
        metric(
            "repro_service_uptime_seconds",
            "gauge",
            "Seconds since the service started.",
            [({}, round(uptime_seconds, 3))],
        )
    return "\n".join(lines) + "\n"


def now() -> float:
    """Monotonic-ish wall clock for uptime (isolated for tests)."""
    return time.time()
