"""Canonical cache keys: the content addresses of the result store.

A key is the SHA-256 of the :func:`repro.common.canonical_json` form of
the *key material*: everything that determines an experiment's output
bits — ``(experiment_id, RunProfile, seed, optional WBChannelConfig
fingerprint, optional entry-point override)`` — plus two explicit schema
versions:

* ``key_schema_version`` — the layout of the key material itself;
* ``result_schema_version`` — the layout of the stored
  :class:`~repro.experiments.base.ExperimentResult` JSON.

Bumping either retires every previously stored blob (the addresses
change), which is exactly the wanted behaviour: a schema change must
never let an old blob masquerade as a fresh result.

Registered experiments derive all their internal configuration
deterministically from ``(profile, seed)``, so those three fields plus
the schema stamps are a complete content address for them.  Callers
memoising *direct channel runs* additionally fold the
:class:`~repro.channels.wb.WBChannelConfig` in through
:func:`wb_config_fingerprint`, which refuses configs carrying live
injected objects (decoders, hierarchies, noise models) — those cannot be
canonicalised, and silently colliding on them would serve wrong results.

Declarative scenario jobs (``repro.scenario``) fold the complete
canonical spec dict into the material via ``scenario=``: two scenario
submissions dedup onto one computation exactly when their specs
canonicalise identically, regardless of JSON formatting or field order.
The spec carries its own ``schema_version``, so a spec-layout change
retires scenario keys without touching experiment keys.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.common.canonical import canonical_digest, canonical_json
from repro.common.errors import ConfigurationError
from repro.experiments.base import SCHEMA_VERSION as RESULT_SCHEMA_VERSION
from repro.experiments.profiles import ProfileLike, resolve_profile

#: Bump on any change to the key-material layout below.
#: v2: added the ``scenario`` field (declarative scenario jobs).
KEY_SCHEMA_VERSION = 2

#: WBChannelConfig fields that are declarative data (canonicalisable).
_WB_PLAIN_FIELDS = (
    "period_cycles",
    "message_bits",
    "message",
    "preamble",
    "target_set",
    "replacement_set_size",
    "receiver_phase",
    "alignment_slack_symbols",
    "start_time",
    "seed",
    "hierarchy_overrides",
    "sender_ensure_resident",
    "calibration_repetitions",
)

#: WBChannelConfig fields holding live objects a key cannot represent.
_WB_LIVE_FIELDS = ("scheduler_noise", "tsc", "hierarchy_factory", "decoder")


def wb_config_fingerprint(config) -> Dict[str, object]:
    """Canonicalisable fingerprint of a ``WBChannelConfig``.

    Covers every declarative field, the codec (by its stable ``repr``)
    and the fault spec (a frozen dataclass of plain numbers).  Raises
    :class:`~repro.common.errors.ConfigurationError` when the config
    carries live injected objects — two configs differing only in an
    injected decoder would otherwise collide on one key.
    """
    live = [name for name in _WB_LIVE_FIELDS if getattr(config, name) is not None]
    if live:
        raise ConfigurationError(
            f"WBChannelConfig with injected live object(s) "
            f"{', '.join(live)} cannot be fingerprinted for a cache key; "
            f"construct the config declaratively instead"
        )
    fingerprint: Dict[str, object] = {
        name: getattr(config, name) for name in _WB_PLAIN_FIELDS
    }
    fingerprint["message"] = (
        None if config.message is None else list(config.message)
    )
    fingerprint["preamble"] = list(config.preamble)
    fingerprint["codec"] = repr(config.codec)
    fingerprint["faults"] = (
        None if config.faults is None else dataclasses.asdict(config.faults)
    )
    # Prove the fingerprint canonicalises now, with a config-specific
    # message, rather than letting cache_key fail later with a vague one.
    try:
        canonical_json(fingerprint)
    except ConfigurationError as exc:
        raise ConfigurationError(
            f"WBChannelConfig does not fingerprint to canonical JSON "
            f"(non-plain hierarchy_overrides?): {exc}"
        ) from exc
    return fingerprint


def key_material(
    experiment_id: str,
    profile: ProfileLike = None,
    seed: int = 0,
    wb_config=None,
    entry_point: Optional[str] = None,
    scenario: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The versioned dict a cache key hashes; stable across processes.

    ``scenario`` is the canonical ``ScenarioSpec.to_dict()`` payload of a
    declarative scenario job (``None`` for registered experiments).
    """
    resolved = resolve_profile(profile)
    return {
        "key_schema_version": KEY_SCHEMA_VERSION,
        "result_schema_version": RESULT_SCHEMA_VERSION,
        "experiment_id": experiment_id,
        "profile": resolved.to_dict(),
        "seed": seed,
        "wb_config": (
            None if wb_config is None else wb_config_fingerprint(wb_config)
        ),
        "entry_point": entry_point,
        "scenario": scenario,
    }


def cache_key(
    experiment_id: str,
    profile: ProfileLike = None,
    seed: int = 0,
    wb_config=None,
    entry_point: Optional[str] = None,
    scenario: Optional[Dict[str, object]] = None,
) -> str:
    """Content address of one experiment configuration (SHA-256 hex)."""
    return canonical_digest(
        key_material(
            experiment_id,
            profile=profile,
            seed=seed,
            wb_config=wb_config,
            entry_point=entry_point,
            scenario=scenario,
        ),
        require_version=True,
    )
