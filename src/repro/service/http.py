"""Stdlib-only HTTP/JSON API over the scheduler and result store.

The server is a :class:`http.server.ThreadingHTTPServer`; the scheduler
lives on a dedicated asyncio event-loop thread, and every handler thread
crosses into it through :func:`asyncio.run_coroutine_threadsafe`.  All
scheduler *and store* state is therefore touched only on the loop thread
— the handler threads just marshal JSON.

Routes
======

==================================  =========================================
``POST /jobs``                      submit a job; ``202`` queued/coalesced,
                                    ``200`` when memoised or ``wait`` given
                                    and the job finished, ``400`` invalid,
                                    ``429`` + ``Retry-After`` queue full,
                                    ``503`` + ``Retry-After`` draining or
                                    unhealthy fleet shedding load
``GET /jobs/{id}``                  job record; ``404`` unknown id; with
                                    ``?stream=1`` or an SSE ``Accept``,
                                    a live stream of the job's state
                                    transitions instead
``GET /jobs/{id}/events``           live SSE/NDJSON stream of every hub
                                    frame stamped with this job id
                                    (state transitions, mirrored run
                                    telemetry, progress marks)
``GET /events``                     the server-wide live event stream;
                                    ``Last-Event-ID`` (header or query)
                                    resumes, ``?max_events=N`` bounds,
                                    ``?format=sse|ndjson`` selects
                                    framing
``GET /results/{key}``              the stored result blob, verbatim bytes
``GET /experiments``                registered experiment ids
``GET /healthz``                    liveness + queue/store/fleet/stream
                                    summary; ``503`` while draining
``GET /metrics``                    Prometheus text exposition
``GET /fleet``                      fleet view: workers, leases, dead letters
``POST /fleet/claim``               fleet worker asks for a leased job
``POST /fleet/leases/{id}/heartbeat``  renew a lease (``409`` when dead)
``POST /fleet/leases/{id}/complete``   upload the result blob for a lease
``POST /fleet/leases/{id}/fail``       report a deterministic failure
==================================  =========================================

The ``Retry-After`` hint on 429/503 is not a constant: it derives from
current queue depth, live worker count and the recent seconds-per-job
average (see :meth:`repro.service.scheduler.JobScheduler
.retry_after_seconds`).

``POST /jobs`` body::

    {"experiment_id": "fig6",          # either this ...
     "scenario": {...},                # ... or an inline ScenarioSpec dict
     "profile": "quick",               # name or RunProfile dict
     "seed": 0,
     "priority": 0,
     "timeout": null,                  # per-job seconds (isolate mode)
     "batch_hint": null,               # coalesce same-hint queued jobs
     "wait": false}                    # true/seconds: block for result

A ``scenario`` submission runs an arbitrary declarative
:class:`repro.scenario.ScenarioSpec` — no registry entry needed.  The
spec is schema-checked up front (malformed specs are a ``400``) and its
canonical form joins the cache key, so identical scenarios memoise and
dedup exactly like registered experiments.

Errors
======

Every non-2xx response carries one JSON envelope::

    {"error": {"code": "bad_request", "message": "..."}}

with ``code`` one of ``bad_request`` (400), ``not_found`` (404),
``conflict`` (409), ``queue_full`` (429), ``unavailable`` (503) or
``internal`` (500).
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import signal
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple, Union

from repro.common.errors import ConfigurationError, ManifestError, ReproError
from repro.experiments.profiles import RunProfile
from repro.service.fleet import FleetConfig, FleetUnavailableError, LeaseError
from repro.service.metrics import ServiceTelemetry, now, render_prometheus
from repro.service.scheduler import (
    JobScheduler,
    JobSpec,
    JobState,
    QueueFullError,
    UnknownJobError,
)
from repro.service.store import ResultStore
from repro.service.stream import (
    ServiceStream,
    negotiate_framing,
    write_stream,
)

#: Cross-thread bridge timeout for calls that do not run experiments.
_CONTROL_TIMEOUT = 30.0

#: Machine-readable error codes in the JSON error envelope, by status.
_ERROR_CODES = {
    400: "bad_request",
    404: "not_found",
    409: "conflict",
    429: "queue_full",
    500: "internal",
    503: "unavailable",
}


class ServiceApp:
    """The service's composition root: store + scheduler + loop thread."""

    def __init__(
        self,
        store: ResultStore,
        workers: int = 2,
        queue_depth: int = 32,
        isolate: bool = False,
        telemetry: Optional[ServiceTelemetry] = None,
        fleet: Optional[FleetConfig] = None,
        stream: Optional[ServiceStream] = None,
    ) -> None:
        self.store = store
        self.telemetry = telemetry or ServiceTelemetry()
        self.stream = stream or ServiceStream()
        self.scheduler = JobScheduler(
            store,
            workers=workers,
            queue_depth=queue_depth,
            isolate=isolate,
            telemetry=self.telemetry,
            fleet=fleet,
            stream=self.stream,
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self.started_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServiceApp":
        if self._loop is not None:
            return self
        loop = asyncio.new_event_loop()
        thread = threading.Thread(
            target=self._run_loop, args=(loop,), name="repro-service-loop",
            daemon=True,
        )
        self._loop = loop
        self._thread = thread
        thread.start()
        self._call(self.scheduler.start())
        self.started_at = now()
        return self

    @staticmethod
    def _run_loop(loop: asyncio.AbstractEventLoop) -> None:
        asyncio.set_event_loop(loop)
        loop.run_forever()

    def stop(self) -> None:
        if self._loop is None:
            return
        self._call(self.scheduler.stop())
        self._loop.call_soon_threadsafe(self._loop.stop)
        assert self._thread is not None
        self._thread.join(timeout=_CONTROL_TIMEOUT)
        self._loop.close()
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ServiceApp":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _call(self, coroutine, timeout: float = _CONTROL_TIMEOUT):
        """Run a coroutine on the scheduler loop from a handler thread."""
        if self._loop is None:
            raise ConfigurationError("service app is not started")
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        return future.result(timeout)

    # ------------------------------------------------------------------
    # Request handling (each returns (status, body-dict-or-bytes))
    # ------------------------------------------------------------------
    def submit(self, payload: Dict[str, object]) -> Tuple[int, Dict[str, object]]:
        spec = _spec_from_payload(payload)
        priority = _int_field(payload, "priority", 0)
        wait = payload.get("wait", False)
        job = self._call(self.scheduler.submit(spec, priority=priority))
        if wait and job.state not in JobState.TERMINAL:
            wait_seconds = None if wait is True else float(wait)  # type: ignore[arg-type]
            try:
                job = self._call(
                    self.scheduler.wait(job.job_id, timeout=wait_seconds),
                    timeout=(wait_seconds or 3600.0) + _CONTROL_TIMEOUT,
                )
            except asyncio.TimeoutError:
                pass  # fall through: report the still-running job as 202
        status = 200 if job.state in JobState.TERMINAL else 202
        return status, job.to_dict()

    def job(self, job_id: str) -> Tuple[int, Dict[str, object]]:
        async def lookup():
            return self.scheduler.job(job_id)

        return 200, self._call(lookup()).to_dict()

    def cancel(self, job_id: str) -> Tuple[int, Dict[str, object]]:
        cancelled = self._call(self.scheduler.cancel(job_id))
        job = self._call_job(job_id)
        body = job.to_dict()
        body["cancelled"] = cancelled
        return (200 if cancelled else 409), body

    def _call_job(self, job_id: str):
        async def lookup():
            return self.scheduler.job(job_id)

        return self._call(lookup())

    def result_bytes(self, key: str) -> Optional[bytes]:
        async def fetch():
            try:
                return self.store.get_bytes(key)
            except ManifestError:
                # Same self-healing as the scheduler: discard, miss.
                self.store.discard(key)
                return None

        return self._call(fetch())

    def experiments(self) -> Tuple[int, Dict[str, object]]:
        from repro.experiments.registry import available_experiments

        return 200, {"experiments": available_experiments()}

    def healthz(self) -> Tuple[int, Dict[str, object]]:
        from repro.orchestration import live_snapshots, orchestration_counters

        async def snapshot():
            # A draining service is deliberately not-ready: report 503 so
            # load balancers stop routing while in-flight work finishes.
            draining = bool(self.scheduler.fleet.draining)
            body = {
                "status": "draining" if draining else "ok",
                "uptime_seconds": round(now() - (self.started_at or now()), 3),
                "scheduler": self.scheduler.snapshot(),
                "store": self.store.stats.to_dict(),
                "telemetry": self.telemetry.summary(),
                "orchestration": {
                    "stream": self.stream.snapshot(),
                    "counters": orchestration_counters(),
                    "live": live_snapshots(),
                },
            }
            return (503 if draining else 200), body

        return self._call(snapshot())

    def metrics_text(self) -> str:
        from repro.orchestration import orchestration_counters

        async def render():
            return render_prometheus(
                self.scheduler.snapshot(),
                self.store.stats.to_dict(),
                telemetry=self.telemetry,
                uptime_seconds=now() - (self.started_at or now()),
                stream=self.stream.snapshot(),
                orchestration=orchestration_counters(),
            )

        return self._call(render())

    # ------------------------------------------------------------------
    # Fleet lease protocol (worker-facing)
    # ------------------------------------------------------------------
    def fleet_view(self) -> Tuple[int, Dict[str, object]]:
        async def snapshot():
            return self.scheduler.fleet.snapshot()

        return 200, self._call(snapshot())

    def fleet_claim(self, payload: Dict[str, object]) -> Tuple[int, Dict[str, object]]:
        worker_id = _worker_id(payload)
        # Always 200: an idle poll is a successful claim attempt whose
        # body says "no work" (a 204 could not carry the JSON hints).
        return 200, self._call(self.scheduler.fleet_claim(worker_id))

    def fleet_heartbeat(
        self, lease_id: str, payload: Dict[str, object]
    ) -> Tuple[int, Dict[str, object]]:
        worker_id = _worker_id(payload)
        return 200, self._call(
            self.scheduler.fleet_heartbeat(lease_id, worker_id)
        )

    def fleet_complete(
        self, lease_id: str, payload: Dict[str, object]
    ) -> Tuple[int, Dict[str, object]]:
        worker_id = _worker_id(payload)
        result = payload.get("result")
        wall = payload.get("wall_seconds", 0.0)
        if not isinstance(wall, (int, float)) or isinstance(wall, bool):
            raise ConfigurationError(
                f"'wall_seconds' must be a number, got {wall!r}"
            )
        return 200, self._call(
            self.scheduler.fleet_complete(
                lease_id, worker_id, result, wall_seconds=float(wall)
            )
        )

    def fleet_fail(
        self, lease_id: str, payload: Dict[str, object]
    ) -> Tuple[int, Dict[str, object]]:
        worker_id = _worker_id(payload)
        error = payload.get("error")
        if not isinstance(error, str) or not error:
            raise ConfigurationError(
                "'error' must be a non-empty string describing the failure"
            )
        return 200, self._call(
            self.scheduler.fleet_fail(lease_id, worker_id, error)
        )

    def retry_after(self) -> int:
        """Current backpressure hint, computed on the scheduler loop."""
        async def hint():
            return self.scheduler.retry_after_seconds()

        return self._call(hint())


def _worker_id(payload: Dict[str, object]) -> str:
    worker_id = payload.get("worker_id")
    if not isinstance(worker_id, str) or not worker_id:
        raise ConfigurationError(
            "fleet requests require a non-empty string 'worker_id'"
        )
    return worker_id


def _int_field(payload: Dict[str, object], name: str, default: int) -> int:
    value = payload.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{name!r} must be an integer, got {value!r}")
    return value


def _spec_from_payload(payload: Dict[str, object]) -> JobSpec:
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"job submission body must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    scenario = None
    if payload.get("scenario") is not None:
        from repro.scenario.spec import ScenarioSpec

        if "experiment_id" in payload:
            raise ConfigurationError(
                "submit either 'experiment_id' or 'scenario', not both"
            )
        # from_dict is strict: unknown fields, missing/stale
        # schema_version and unknown kinds all raise ConfigurationError,
        # which this layer reports as a 400 bad_request.
        scenario = ScenarioSpec.from_dict(payload["scenario"])
        experiment_id = None
    else:
        experiment_id = payload.get("experiment_id")
        if not isinstance(experiment_id, str) or not experiment_id:
            raise ConfigurationError(
                "job submission requires a non-empty string 'experiment_id' "
                "or an inline 'scenario' spec object"
            )
    profile = payload.get("profile")
    if isinstance(profile, dict):
        profile = RunProfile.from_dict(profile)
    timeout = payload.get("timeout")
    if timeout is not None and not isinstance(timeout, (int, float)):
        raise ConfigurationError(
            f"'timeout' must be a number of seconds or null, got {timeout!r}"
        )
    entry_point = payload.get("entry_point")
    if entry_point is not None and not isinstance(entry_point, str):
        raise ConfigurationError(
            f"'entry_point' must be a dotted-path string, got {entry_point!r}"
        )
    batch_hint = payload.get("batch_hint")
    if batch_hint is not None and not isinstance(batch_hint, str):
        raise ConfigurationError(
            f"'batch_hint' must be a string label or null, got {batch_hint!r}"
        )
    return JobSpec.create(
        experiment_id,
        profile=profile,
        seed=_int_field(payload, "seed", 0),
        timeout=None if timeout is None else float(timeout),
        entry_point=entry_point,
        scenario=scenario,
        batch_hint=batch_hint,
    )


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests into the :class:`ServiceApp` on ``self.server``."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    @property
    def app(self) -> ServiceApp:
        return self.server.app  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(self, status: int, body: Dict[str, object],
                   headers: Optional[Dict[str, str]] = None) -> None:
        blob = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(blob)

    def _send_error_json(self, status: int, message: str,
                         headers: Optional[Dict[str, str]] = None,
                         code: Optional[str] = None) -> None:
        """One error envelope for every endpoint: ``{"error": {code, message}}``."""
        self._send_json(
            status,
            {"error": {"code": code or _ERROR_CODES.get(status, "internal"),
                       "message": message}},
            headers,
        )

    def _read_body(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ConfigurationError("request body must be a JSON object")
        try:
            body = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ConfigurationError(f"request body is not valid JSON: {exc}")
        if not isinstance(body, dict):
            raise ConfigurationError("request body must be a JSON object")
        return body

    # -- methods -------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            if self.path == "/jobs":
                status, body = self.app.submit(self._read_body())
                self._send_json(status, body)
            elif self.path.startswith("/jobs/") and self.path.endswith("/cancel"):
                job_id = self.path[len("/jobs/"):-len("/cancel")]
                status, body = self.app.cancel(job_id)
                self._send_json(status, body)
            elif self.path == "/fleet/claim":
                self._send_json(*self.app.fleet_claim(self._read_body()))
            elif self.path.startswith("/fleet/leases/"):
                rest = self.path[len("/fleet/leases/"):]
                lease_id, _, action = rest.rpartition("/")
                body = self._read_body()
                if action == "heartbeat":
                    self._send_json(*self.app.fleet_heartbeat(lease_id, body))
                elif action == "complete":
                    self._send_json(*self.app.fleet_complete(lease_id, body))
                elif action == "fail":
                    self._send_json(*self.app.fleet_fail(lease_id, body))
                else:
                    self._send_error_json(
                        404, f"no fleet lease action {action!r}"
                    )
            else:
                self._send_error_json(404, f"no POST route {self.path!r}")
        except QueueFullError as exc:
            self._send_error_json(
                429, str(exc), {"Retry-After": str(self.app.retry_after())}
            )
        except FleetUnavailableError as exc:
            self._send_error_json(
                503, str(exc),
                {"Retry-After": str(int(max(1, exc.retry_after)))},
            )
        except LeaseError as exc:
            self._send_error_json(409, str(exc))
        except UnknownJobError as exc:
            self._send_error_json(404, str(exc))
        except ConfigurationError as exc:
            self._send_error_json(400, str(exc))
        except ReproError as exc:
            self._send_error_json(500, str(exc))

    # -- live event streaming ------------------------------------------
    def _wants_stream(self, params: Dict[str, list]) -> bool:
        """``?stream=1`` or an SSE ``Accept`` upgrades a job GET."""
        flag = (params.get("stream") or ["0"])[0]
        if flag not in ("", "0", "false", "no"):
            return True
        return "text/event-stream" in (self.headers.get("Accept") or "")

    def _stream_events(
        self,
        params: Dict[str, list],
        accepts=None,
        default_replay: bool = False,
    ) -> None:
        """Serve one chunked SSE/NDJSON stream off the hub publisher.

        ``Last-Event-ID`` (header or ``?last_event_id=``) resumes past
        frames the replay ring still holds; ``default_replay`` starts
        per-job streams from the beginning of the ring so a late
        subscriber still sees the job's earlier transitions.
        ``?max_events=N`` terminates the chunked body after N frames —
        the finite-response mode tests and one-shot consumers use.
        The handler thread blocks here; a slow consumer overflows its
        own bounded queue and can never back-pressure the scheduler.
        """
        last_raw = self.headers.get("Last-Event-ID")
        if last_raw is None:
            last_raw = (params.get("last_event_id") or [None])[0]
        if last_raw is not None:
            try:
                last_event_id: Optional[int] = int(last_raw)
            except ValueError:
                raise ConfigurationError(
                    f"Last-Event-ID must be an integer, got {last_raw!r}"
                )
        else:
            last_event_id = 0 if default_replay else None
        max_raw = (params.get("max_events") or [None])[0]
        max_events: Optional[int] = None
        if max_raw is not None:
            try:
                max_events = int(max_raw)
            except ValueError:
                raise ConfigurationError(
                    f"max_events must be an integer, got {max_raw!r}"
                )
            if max_events <= 0:
                raise ConfigurationError(
                    f"max_events must be positive, got {max_events}"
                )
        sse, content_type = negotiate_framing(
            self.headers.get("Accept") or "", params
        )
        client = self.app.stream.attach(
            last_event_id=last_event_id, accepts=accepts
        )
        try:
            self.send_response(200)
            self.send_header("Content-Type", content_type)
            self.send_header("Cache-Control", "no-store")
            self.send_header("Transfer-Encoding", "chunked")
            self.end_headers()
            write_stream(
                self.wfile, client, sse, max_events=max_events
            )
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # consumer went away; detach below
        finally:
            self.app.stream.detach(client)
            self.close_connection = True

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urllib.parse.urlsplit(self.path)
        path = parsed.path
        params = urllib.parse.parse_qs(parsed.query)
        try:
            if path == "/healthz":
                self._send_json(*self.app.healthz())
            elif path == "/metrics":
                text = self.app.metrics_text().encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                )
                self.send_header("Content-Length", str(len(text)))
                self.end_headers()
                self.wfile.write(text)
            elif path == "/experiments":
                self._send_json(*self.app.experiments())
            elif path == "/fleet":
                self._send_json(*self.app.fleet_view())
            elif path == "/events":
                self._stream_events(params)
            elif path.startswith("/jobs/") and path.endswith("/events"):
                job_id = path[len("/jobs/"):-len("/events")]
                self.app.job(job_id)  # 404 before committing to a stream
                self._stream_events(
                    params,
                    accepts=ServiceStream.job_filter(job_id),
                    default_replay=True,
                )
            elif path.startswith("/jobs/"):
                job_id = path[len("/jobs/"):]
                if self._wants_stream(params):
                    self.app.job(job_id)
                    self._stream_events(
                        params,
                        accepts=ServiceStream.job_state_filter(job_id),
                        default_replay=True,
                    )
                else:
                    self._send_json(*self.app.job(job_id))
            elif path.startswith("/results/"):
                key = path[len("/results/"):]
                blob = self.app.result_bytes(key)
                if blob is None:
                    self._send_error_json(
                        404,
                        f"no stored result for key {key!r}; "
                        f"submit the job to (re)compute it",
                    )
                else:
                    self.send_response(200)
                    self.send_header("Content-Type", "application/json")
                    self.send_header("Content-Length", str(len(blob)))
                    self.end_headers()
                    self.wfile.write(blob)
            else:
                self._send_error_json(404, f"no GET route {path!r}")
        except UnknownJobError as exc:
            self._send_error_json(404, str(exc))
        except ConfigurationError as exc:
            self._send_error_json(400, str(exc))
        except ReproError as exc:
            self._send_error_json(500, str(exc))


class ServiceServer(ThreadingHTTPServer):
    """HTTP server carrying its :class:`ServiceApp` for the handler."""

    daemon_threads = True
    #: Accept backlog.  The stdlib default of 5 drops connections
    #: (ECONNRESET) under saturation bursts — a whole fleet of workers
    #: claiming/heartbeating while a submission burst lands.
    request_queue_size = 128

    def __init__(self, address, app: ServiceApp, verbose: bool = False) -> None:
        super().__init__(address, ServiceHandler)
        self.app = app
        self.verbose = verbose


def make_server(
    app: ServiceApp,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> ServiceServer:
    """Bind (port ``0`` = ephemeral) without starting the accept loop."""
    return ServiceServer((host, port), app, verbose=verbose)


def serve(
    store_root: Union[str, pathlib.Path],
    host: str = "127.0.0.1",
    port: int = 8321,
    capacity_bytes: Optional[int] = None,
    workers: int = 2,
    queue_depth: int = 32,
    isolate: bool = False,
    window: int = 64,
    verbose: bool = True,
    fleet: Optional[FleetConfig] = None,
    drain_timeout: float = 30.0,
) -> None:
    """Blocking entry point used by ``python -m repro.service``.

    SIGTERM triggers a graceful drain (mirroring the runner's SIGINT
    handling): new submissions shed with 503, no new leases are
    granted, in-flight leases get up to ``drain_timeout`` seconds to
    finish, then the server exits.
    """
    store = ResultStore(store_root, capacity_bytes=capacity_bytes)
    app = ServiceApp(
        store,
        workers=workers,
        queue_depth=queue_depth,
        isolate=isolate,
        telemetry=ServiceTelemetry(window=window),
        fleet=fleet,
    )
    with app:
        server = make_server(app, host=host, port=port, verbose=verbose)
        bound_host, bound_port = server.server_address[:2]
        print(
            f"repro-service listening on http://{bound_host}:{bound_port} "
            f"(store={store.root}, workers={workers}, "
            f"queue_depth={queue_depth}, isolate={isolate})",
            flush=True,
        )

        def _drain_then_stop() -> None:
            drained = app._call(
                app.scheduler.drain(timeout=drain_timeout),
                timeout=drain_timeout + _CONTROL_TIMEOUT,
            )
            print(
                "drained cleanly" if drained
                else "drain timed out; stopping with leases outstanding",
                flush=True,
            )
            # shutdown() must come from another thread than serve_forever.
            server.shutdown()

        def _handle_sigterm(signum, frame) -> None:
            del signum, frame
            print("SIGTERM: draining in-flight leases", flush=True)
            threading.Thread(target=_drain_then_stop, daemon=True).start()

        previous = signal.signal(signal.SIGTERM, _handle_sigterm)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("shutting down")
        finally:
            signal.signal(signal.SIGTERM, previous)
            server.shutdown()
            server.server_close()
