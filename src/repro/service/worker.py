"""Fleet worker: claims leased jobs over HTTP and computes them.

One :class:`FleetWorker` is one worker process (or thread, in tests)
driving the lease protocol end to end against a running service:

1. ``POST /fleet/claim`` — claim the highest-priority queued job; the
   grant carries a TTL lease and the full job payload.
2. A heartbeat thread renews the lease every ``ttl / 3`` seconds while
   the experiment computes in the main thread (through the same
   :func:`repro.runner.pool.execute_task_payload` path the in-process
   scheduler uses, so results are bit-identical by construction).
3. ``POST /fleet/leases/{id}/complete`` uploads the result blob; a 409
   means the lease expired underneath us and someone else owns the job
   now — the worker drops the result on the floor, *never* retries the
   upload (the re-dispatched attempt recomputes the same bytes).
4. Deterministic experiment failures report through ``.../fail``.

Chaos: given a :class:`~repro.faults.spec.FaultSpec` and a seed, the
worker materialises :func:`repro.faults.fleet.fleet_fault_decision` per
``(job key, lease attempt)`` and misbehaves accordingly — crash
(abandon silently), hang (sit out the TTL), stale heartbeat (compute
but stop renewing, then watch the late upload bounce), dropped upload,
slow store (stall, then upload normally).  Because the decision is a
pure function of the spec, seed, key and attempt, a chaos campaign is
reproducible regardless of worker count or claim order.

Run one from the command line::

    python -m repro.service.worker --url http://127.0.0.1:8321 \
        --worker-id w0 --idle-exit 30

SIGTERM drains: the worker finishes (and uploads) its current lease,
then exits without claiming another.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
import time
import urllib.error
from typing import Dict, Optional

from repro.common.errors import ConfigurationError
from repro.experiments.profiles import RunProfile
from repro.faults.fleet import FleetFaultDecision, fleet_fault_decision
from repro.faults.spec import FaultSpec
from repro.runner.pool import execute_task_payload
from repro.runner.sharding import TaskSpec
from repro.service.client import ServiceClient, ServiceError

#: Transport-error retry delay (the service restarting, a partition).
_TRANSPORT_RETRY_SECONDS = 0.5


class FleetWorker:
    """One lease-protocol worker; ``run()`` blocks until drained/stopped."""

    def __init__(
        self,
        url: str,
        worker_id: str,
        poll_seconds: float = 0.2,
        faults: Optional[FaultSpec] = None,
        fault_seed: int = 0,
        max_jobs: Optional[int] = None,
        idle_exit_seconds: Optional[float] = None,
        client_timeout: float = 60.0,
    ) -> None:
        if not worker_id:
            raise ConfigurationError("fleet worker needs a worker_id")
        self.client = ServiceClient(url, timeout=client_timeout)
        self.worker_id = worker_id
        self.poll_seconds = poll_seconds
        self.faults = faults
        self.fault_seed = fault_seed
        self.max_jobs = max_jobs
        self.idle_exit_seconds = idle_exit_seconds
        self._stop = threading.Event()
        #: Local tallies (the scheduler keeps the authoritative ones).
        self.counters: Dict[str, int] = {
            "claims": 0,
            "completed": 0,
            "failed": 0,
            "chaos_crash": 0,
            "chaos_hang": 0,
            "chaos_stale_heartbeat": 0,
            "chaos_drop_upload": 0,
            "chaos_slow_store": 0,
            "uploads_rejected": 0,
            "transport_errors": 0,
        }

    def stop(self) -> None:
        """Ask the worker to drain: finish the current lease, then exit."""
        self._stop.set()

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> Dict[str, int]:
        """Claim/compute/upload until drained, stopped, or idle-expired."""
        idle_since: Optional[float] = None
        while not self._stop.is_set():
            try:
                grant = self.client.fleet_claim(self.worker_id)
            except (ServiceError, urllib.error.URLError, OSError):
                self.counters["transport_errors"] += 1
                if self._sleep(_TRANSPORT_RETRY_SECONDS):
                    break
                continue
            if grant.get("draining"):
                break
            if not grant.get("lease"):
                now = time.monotonic()
                idle_since = idle_since if idle_since is not None else now
                if (
                    self.idle_exit_seconds is not None
                    and now - idle_since >= self.idle_exit_seconds
                ):
                    break
                retry = grant.get("retry_seconds") or self.poll_seconds
                if self._sleep(min(float(retry), self.poll_seconds)):
                    break
                continue
            idle_since = None
            self.counters["claims"] += 1
            self._run_lease(grant)
            if (
                self.max_jobs is not None
                and self.counters["claims"] >= self.max_jobs
            ):
                break
        return dict(self.counters)

    def _sleep(self, seconds: float) -> bool:
        """Interruptible sleep; ``True`` when a stop was requested."""
        return self._stop.wait(seconds)

    # ------------------------------------------------------------------
    # One lease
    # ------------------------------------------------------------------
    def _run_lease(self, grant: Dict[str, object]) -> None:
        lease = grant["lease"]  # type: ignore[assignment]
        lease_id = lease["lease_id"]  # type: ignore[index]
        key = lease["key"]  # type: ignore[index]
        attempt = int(lease["attempt"])  # type: ignore[index]
        ttl = float(lease["ttl"])  # type: ignore[index]
        decision = self._decide(key, attempt)

        if decision.crash:
            # A crashed worker says nothing: no heartbeat, no upload.
            # The lease expires and the supervisor re-dispatches.
            self.counters["chaos_crash"] += 1
            return
        if decision.hang:
            # A wedged worker holds the lease past its TTL doing nothing.
            self.counters["chaos_hang"] += 1
            self._sleep(ttl * 1.5)
            return

        task = _task_from_grant(grant["job"])  # type: ignore[arg-type]
        heartbeats = not decision.stale_heartbeat
        beat = _Heartbeat(self.client, lease_id, self.worker_id, ttl / 3.0)
        if heartbeats:
            beat.start()
        try:
            started = time.perf_counter()
            try:
                payload = execute_task_payload(task)
            except Exception as exc:  # noqa: BLE001 - deterministic failure
                beat.stop()
                self._report_failure(lease_id, f"{type(exc).__name__}: {exc}")
                return
            wall = time.perf_counter() - started

            if decision.stale_heartbeat:
                # Heartbeats never ran: wait out the TTL so the lease is
                # dead, then try the upload anyway — it must bounce 409.
                self.counters["chaos_stale_heartbeat"] += 1
                self._sleep(ttl * 1.5)
            if decision.drop_upload:
                self.counters["chaos_drop_upload"] += 1
                return
            if decision.slow_store:
                # Store interaction stalls but heartbeats keep flowing,
                # so the lease survives and the upload lands normally.
                self.counters["chaos_slow_store"] += 1
                self._sleep(decision.store_slow_seconds)
            try:
                self.client.fleet_complete(
                    lease_id,
                    self.worker_id,
                    payload["result"],
                    wall_seconds=wall,
                )
                self.counters["completed"] += 1
            except ServiceError as exc:
                if exc.status == 409:
                    self.counters["uploads_rejected"] += 1
                else:
                    raise
            except (urllib.error.URLError, OSError):
                self.counters["transport_errors"] += 1
        finally:
            beat.stop()

    def _decide(self, key: str, attempt: int) -> FleetFaultDecision:
        if self.faults is None:
            return FleetFaultDecision()
        return fleet_fault_decision(self.faults, self.fault_seed, key, attempt)

    def _report_failure(self, lease_id: str, error: str) -> None:
        try:
            self.client.fleet_fail(lease_id, self.worker_id, error)
            self.counters["failed"] += 1
        except (ServiceError, urllib.error.URLError, OSError):
            self.counters["transport_errors"] += 1


class _Heartbeat:
    """Daemon thread renewing one lease until stopped (or it dies)."""

    def __init__(
        self,
        client: ServiceClient,
        lease_id: str,
        worker_id: str,
        interval: float,
    ) -> None:
        self._client = client
        self._lease_id = lease_id
        self._worker_id = worker_id
        self._interval = max(0.01, interval)
        self._done = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._done.set()
        if self._thread.is_alive():
            self._thread.join(timeout=2.0)

    def _loop(self) -> None:
        while not self._done.wait(self._interval):
            try:
                self._client.fleet_heartbeat(self._lease_id, self._worker_id)
            except ServiceError as exc:
                if exc.status == 409:
                    return  # lease expired underneath us; stop renewing
            except (urllib.error.URLError, OSError):
                continue  # transient; the next beat may get through


def _task_from_grant(job: Dict[str, object]) -> TaskSpec:
    """Rebuild the runner task from a claim grant's job payload."""
    return TaskSpec(
        task_id=str(job["experiment_id"]),
        experiment_id=str(job["experiment_id"]),
        seed=int(job["seed"]),  # type: ignore[arg-type]
        profile=RunProfile.from_dict(job["profile"]),  # type: ignore[arg-type]
        timeout=job.get("timeout"),  # type: ignore[arg-type]
        entry_point=job.get("entry_point"),  # type: ignore[arg-type]
        scenario=job.get("scenario"),  # type: ignore[arg-type]
        batch_hint=job.get("batch_hint"),  # type: ignore[arg-type]
    )


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.worker",
        description="Fleet worker: pull leased jobs from a repro service.",
    )
    parser.add_argument("--url", default="http://127.0.0.1:8321")
    parser.add_argument("--worker-id", default=None)
    parser.add_argument(
        "--poll", type=float, default=0.2,
        help="idle poll interval in seconds (default 0.2)",
    )
    parser.add_argument(
        "--max-jobs", type=int, default=None,
        help="exit after claiming this many jobs",
    )
    parser.add_argument(
        "--idle-exit", type=float, default=None,
        help="exit after this many consecutive idle seconds",
    )
    parser.add_argument(
        "--fault-intensity", type=float, default=0.0,
        help="scale the default fleet chaos regime (0 = no chaos)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for deterministic chaos decisions",
    )
    args = parser.parse_args(argv)

    worker_id = args.worker_id or f"worker-{int(time.time() * 1000) % 100000}"
    faults = None
    if args.fault_intensity > 0:
        from repro.faults.fleet import DEFAULT_FLEET_FAULT_SPEC

        faults = DEFAULT_FLEET_FAULT_SPEC.scaled(args.fault_intensity)
    worker = FleetWorker(
        args.url,
        worker_id,
        poll_seconds=args.poll,
        faults=faults,
        fault_seed=args.fault_seed,
        max_jobs=args.max_jobs,
        idle_exit_seconds=args.idle_exit,
    )

    def _handle_sigterm(signum, frame) -> None:
        del signum, frame
        worker.stop()

    signal.signal(signal.SIGTERM, _handle_sigterm)
    counters = worker.run()
    print(
        f"{worker_id}: claims={counters['claims']} "
        f"completed={counters['completed']} failed={counters['failed']} "
        f"uploads_rejected={counters['uploads_rejected']}",
        flush=True,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
