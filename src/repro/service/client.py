"""Minimal stdlib client for the service API (urllib, no dependencies).

Used by the load-test script and the test suite; handy interactively::

    from repro.service.client import ServiceClient
    client = ServiceClient("http://127.0.0.1:8321")
    job = client.submit("fig6", profile="quick", wait=True)
    result = client.result(job["result_key"])
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Dict, Iterator, List, Optional, Union

from repro.common.errors import ReproError
from repro.experiments.base import ExperimentResult

#: Job states a poll loop can stop on (mirrors ``JobState.TERMINAL``).
TERMINAL_STATES = ("done", "failed", "cancelled", "dead_letter")


class ServiceError(ReproError):
    """An API call failed; carries the HTTP status, code and message.

    ``code`` is the machine-readable value from the service's JSON error
    envelope ``{"error": {"code": ..., "message": ...}}`` (or
    ``"unknown"`` when the response was not an envelope).
    """

    def __init__(self, status: int, message: str, code: str = "unknown") -> None:
        super().__init__(f"HTTP {status} [{code}]: {message}")
        self.status = status
        self.code = code


def _envelope(payload) -> tuple:
    """``(code, message)`` from an error response of any shape."""
    if isinstance(payload, dict):
        error = payload.get("error", payload)
        if isinstance(error, dict):
            return (
                str(error.get("code", "unknown")),
                str(error.get("message", error)),
            )
        return "unknown", str(error)
    return "unknown", str(payload)


class ServiceClient:
    """Blocking JSON client for one service endpoint."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]] = None,
        timeout: Optional[float] = None,
    ) -> tuple:
        """Returns ``(status, raw_bytes)``; raises only on transport errors."""
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout or self.timeout
            ) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read()

    def _json(self, method: str, path: str,
              body: Optional[Dict[str, object]] = None,
              ok: tuple = (200,),
              timeout: Optional[float] = None) -> Dict[str, object]:
        status, raw = self._request(method, path, body, timeout=timeout)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            payload = raw.decode("utf-8", "replace")
        if status not in ok:
            code, message = _envelope(payload)
            raise ServiceError(status, message, code)
        return payload

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def submit(
        self,
        experiment_id: str,
        profile: Union[str, Dict[str, object], None] = None,
        seed: int = 0,
        priority: int = 0,
        timeout: Optional[float] = None,
        entry_point: Optional[str] = None,
        batch_hint: Optional[str] = None,
        wait: Union[bool, float] = False,
    ) -> Dict[str, object]:
        """``POST /jobs``; returns the job record (maybe already done)."""
        body: Dict[str, object] = {
            "experiment_id": experiment_id,
            "seed": seed,
            "priority": priority,
            "wait": wait,
        }
        if profile is not None:
            body["profile"] = profile
        if timeout is not None:
            body["timeout"] = timeout
        if entry_point is not None:
            body["entry_point"] = entry_point
        if batch_hint is not None:
            body["batch_hint"] = batch_hint
        http_timeout = self.timeout
        if wait:
            http_timeout += 3600.0 if wait is True else float(wait)
        return self._json(
            "POST", "/jobs", body, ok=(200, 202), timeout=http_timeout
        )

    def submit_scenario(
        self,
        scenario: Union[Dict[str, object], object],
        profile: Union[str, Dict[str, object], None] = None,
        seed: int = 0,
        priority: int = 0,
        timeout: Optional[float] = None,
        batch_hint: Optional[str] = None,
        wait: Union[bool, float] = False,
    ) -> Dict[str, object]:
        """``POST /jobs`` with an inline declarative scenario spec.

        ``scenario`` is a spec dict or anything with ``to_dict()`` (a
        :class:`repro.scenario.ScenarioSpec`).  ``batch_hint`` lets
        same-geometry submissions (e.g. one campaign's sweep points)
        coalesce into a scheduler batch group.
        """
        spec_dict = (
            scenario if isinstance(scenario, dict) else scenario.to_dict()
        )
        body: Dict[str, object] = {
            "scenario": spec_dict,
            "seed": seed,
            "priority": priority,
            "wait": wait,
        }
        if profile is not None:
            body["profile"] = profile
        if timeout is not None:
            body["timeout"] = timeout
        if batch_hint is not None:
            body["batch_hint"] = batch_hint
        http_timeout = self.timeout
        if wait:
            http_timeout += 3600.0 if wait is True else float(wait)
        return self._json(
            "POST", "/jobs", body, ok=(200, 202), timeout=http_timeout
        )

    def job(self, job_id: str) -> Dict[str, object]:
        return self._json("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._json("POST", f"/jobs/{job_id}/cancel", {}, ok=(200, 409))

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll_seconds: float = 0.1,
    ) -> Dict[str, object]:
        """Poll ``GET /jobs/{id}`` until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in TERMINAL_STATES:
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    408, f"job {job_id} still {record['state']} after "
                    f"{timeout:.1f}s"
                )
            time.sleep(poll_seconds)

    def result_bytes(self, key: str) -> bytes:
        status, raw = self._request("GET", f"/results/{key}")
        if status != 200:
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                payload = raw.decode("utf-8", "replace")
            code, message = _envelope(payload)
            raise ServiceError(status, message, code)
        return raw

    def result(self, key: str) -> ExperimentResult:
        return ExperimentResult.from_json(
            self.result_bytes(key).decode("utf-8")
        )

    def experiments(self) -> List[str]:
        return list(self._json("GET", "/experiments")["experiments"])

    # ------------------------------------------------------------------
    # Fleet lease protocol (used by repro.service.worker)
    # ------------------------------------------------------------------
    def fleet(self) -> Dict[str, object]:
        """``GET /fleet``: workers, live leases, dead letters, counters."""
        return self._json("GET", "/fleet")

    def fleet_claim(self, worker_id: str) -> Dict[str, object]:
        """Claim a leased job; the response's ``lease`` is ``None`` when
        the queue is empty or the service is draining."""
        return self._json(
            "POST", "/fleet/claim", {"worker_id": worker_id}
        )

    def fleet_heartbeat(
        self, lease_id: str, worker_id: str
    ) -> Dict[str, object]:
        """Renew a lease (``ServiceError`` with status 409 when dead)."""
        return self._json(
            "POST",
            f"/fleet/leases/{lease_id}/heartbeat",
            {"worker_id": worker_id},
        )

    def fleet_complete(
        self,
        lease_id: str,
        worker_id: str,
        result: Dict[str, object],
        wall_seconds: float = 0.0,
    ) -> Dict[str, object]:
        """Upload the result blob for a held lease."""
        return self._json(
            "POST",
            f"/fleet/leases/{lease_id}/complete",
            {
                "worker_id": worker_id,
                "result": result,
                "wall_seconds": wall_seconds,
            },
        )

    def fleet_fail(
        self, lease_id: str, worker_id: str, error: str
    ) -> Dict[str, object]:
        """Report a deterministic failure for a held lease."""
        return self._json(
            "POST",
            f"/fleet/leases/{lease_id}/fail",
            {"worker_id": worker_id, "error": error},
        )

    def healthz(self) -> Dict[str, object]:
        """``GET /healthz``; a draining service answers 503 with the
        same body shape (``status: "draining"``), which is still a
        successful health read — not an error."""
        return self._json("GET", "/healthz", ok=(200, 503))

    # ------------------------------------------------------------------
    # Live event streaming
    # ------------------------------------------------------------------
    def stream_events(
        self,
        job_id: Optional[str] = None,
        last_event_id: Optional[int] = None,
        max_events: Optional[int] = None,
        reconnect: bool = True,
        max_reconnects: int = 5,
        timeout: Optional[float] = None,
    ) -> Iterator[Dict[str, object]]:
        """Yield decoded frames from the NDJSON event stream.

        ``job_id=None`` follows the server-wide ``GET /events``;
        otherwise ``GET /jobs/{id}/events``.  Each yielded dict carries
        ``id`` and ``type`` plus the frame payload.  On a broken
        connection the generator transparently reconnects (up to
        ``max_reconnects`` times) with ``Last-Event-ID`` set to the
        last frame it delivered, so the server replays what its ring
        still holds past that cursor — a clean end-of-stream (the
        server honoured ``max_events``, or closed the finite response)
        ends the iteration instead.
        """
        path = "/events" if job_id is None else f"/jobs/{job_id}/events"
        cursor = last_event_id
        delivered = 0
        attempts = 0
        while max_events is None or delivered < max_events:
            query: Dict[str, str] = {"format": "ndjson"}
            if max_events is not None:
                query["max_events"] = str(max_events - delivered)
            url = (
                self.base_url + path + "?"
                + urllib.parse.urlencode(query)
            )
            headers = {"Accept": "application/x-ndjson"}
            if cursor is not None:
                headers["Last-Event-ID"] = str(cursor)
            request = urllib.request.Request(url, headers=headers)
            try:
                with urllib.request.urlopen(
                    request, timeout=timeout or self.timeout
                ) as response:
                    if response.status != 200:
                        raise ServiceError(
                            response.status, "event stream refused"
                        )
                    for raw in response:
                        line = raw.decode("utf-8").strip()
                        if not line or line.startswith(":"):
                            continue
                        frame = json.loads(raw.decode("utf-8"))
                        cursor = frame.get("id", cursor)
                        attempts = 0  # progress resets the retry budget
                        delivered += 1
                        yield frame
                        if max_events is not None and delivered >= max_events:
                            return
                # Clean EOF: the server ended the chunked body.
                return
            except (
                urllib.error.URLError,
                ConnectionError,
                TimeoutError,
                http.client.HTTPException,
            ) as exc:
                if not reconnect or attempts >= max_reconnects:
                    raise ServiceError(
                        503, f"event stream lost: {exc}"
                    ) from exc
                attempts += 1
                time.sleep(min(0.1 * attempts, 1.0))

    def metrics_text(self) -> str:
        status, raw = self._request("GET", "/metrics")
        if status != 200:
            raise ServiceError(status, raw.decode("utf-8", "replace"))
        return raw.decode("utf-8")
