"""Run any scenario spec to a generic :class:`ExperimentResult`.

:func:`run_scenario` is the service-facing entry point: it compiles the
spec, executes it under the profile's engine/telemetry context (the same
wrapping :func:`repro.experiments.run_experiment` applies) and shapes the
measurement into a kind-generic result table whose ``experiment_id`` is
``scenario:<name>``.  The registered experiments keep their own bespoke
shaping on top of the same compiled measurements.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.units import cycles_to_kbps
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ProfileLike, resolve_profile
from repro.scenario.compile import (
    BerSweepMeasurement,
    DefenseEvalMeasurement,
    FaultSweepMeasurement,
    LevelCompareMeasurement,
    compile_scenario,
)
from repro.scenario.spec import ScenarioSpec, scenario_key

#: Prefix distinguishing scenario jobs from registered experiment ids in
#: job records, manifests and metrics labels.
SCENARIO_ID_PREFIX = "scenario:"


def scenario_experiment_id(spec: ScenarioSpec) -> str:
    """The experiment-id-shaped label of a scenario job."""
    return f"{SCENARIO_ID_PREFIX}{spec.name}"


def _shape_wb_ber_sweep(spec, measurement: BerSweepMeasurement, seed):
    bits = measurement.bits_per_symbol
    if measurement.d_values is not None:
        value_columns = [f"d={d}" for d in measurement.d_values]
        series = {
            f"ber_d{entry.d}": [entry.curve[p] for p in measurement.periods]
            for entry in measurement.curves
        }
    else:
        value_columns = ["BER"]
        series = {
            "ber": [measurement.curves[0].curve[p] for p in measurement.periods]
        }
    rows: List[List[object]] = []
    for period in measurement.periods:
        rows.append(
            [period, f"{cycles_to_kbps(period, bits):.0f}"]
            + [f"{entry.curve[period]:.2%}" for entry in measurement.curves]
        )
    return {
        "columns": ["Ts (cycles)", "rate (Kbps)"] + value_columns,
        "rows": rows,
        "series": series,
        "params": {
            "messages_per_point": measurement.messages,
            "message_bits": measurement.message_bits,
            "seed": seed,
        },
    }


def _shape_wb_trace(spec, result, seed):
    codec = spec.channel.codec.build()
    rows = [
        [level, f"{median:.0f}"]
        for level, median in zip(sorted(codec.levels), result.decoder.medians)
    ]
    return {
        "columns": ["dirty lines (d)", "median latency (cy)"],
        "rows": rows,
        "series": {
            "trace": [latency for _, latency in result.samples],
            "thresholds": list(result.decoder.thresholds),
            "sent_bits": list(result.sent_bits),
            "received_bits": list(result.received_bits),
        },
        "params": {
            "period_cycles": result.period_cycles,
            "ber": result.bit_error_rate,
            "rate_kbps": result.rate_kbps,
            "seed": seed,
        },
    }


def _shape_wb_level_compare(spec, measurement: LevelCompareMeasurement, seed):
    rows = [
        [
            point.level,
            point.period_cycles,
            f"{point.rate_kbps:.0f}",
            f"{point.ber:.2%}",
        ]
        for point in measurement.points
    ]
    return {
        "columns": ["level", "Ts (cycles)", "rate (Kbps)", "BER"],
        "rows": rows,
        "series": {"ber": [point.ber for point in measurement.points]},
        "params": {
            "messages_per_point": measurement.messages,
            "message_bits": measurement.message_bits,
            "seed": seed,
        },
    }


def _shape_wb_fault_sweep(spec, measurement: FaultSweepMeasurement, seed):
    rows = [
        [
            f"{point.intensity:.1f}",
            f"{point.raw_ber:.2%}",
            f"{point.intact_count}/{point.runs}",
            f"{point.mean_rounds:.1f}",
            f"{point.mean_retransmissions:.1f}",
            f"{point.mean_goodput_kbps:.0f}",
        ]
        for point in measurement.points
    ]
    return {
        "columns": [
            "intensity",
            "raw BER",
            "hardened intact",
            "rounds",
            "retransmissions",
            "goodput (Kbps)",
        ],
        "rows": rows,
        "series": {
            "raw_ber": [point.raw_ber for point in measurement.points],
            "goodput_kbps": [
                point.mean_goodput_kbps for point in measurement.points
            ],
        },
        "params": {
            "intensities": list(measurement.intensities),
            "runs_per_point": measurement.runs_per_point,
            "demonstration": measurement.demonstration,
            "fault_spec": spec.params.fault.to_dict(),
            "seed": seed,
        },
    }


def _shape_online_detection(spec, measurement, seed):
    rows = []
    for name in measurement.detector_names:
        rates = measurement.rates[name]
        rows.append(
            [name, f"{measurement.thresholds[name]:.2f}"]
            + [f"{rates[s]:.1%}" for s in measurement.suspects]
        )
    return {
        "columns": ["detector", "threshold"]
        + [f"{s} flagged" for s in measurement.suspects],
        "rows": rows,
        "series": measurement.series,
        "params": {
            "num_symbols": measurement.num_symbols,
            "detection_rates": measurement.rates,
            "stealth_holds": measurement.stealth_holds,
            "seed": seed,
        },
    }


def _shape_defense_eval(spec, measurement: DefenseEvalMeasurement, seed):
    rows = []
    for report in measurement.reports:
        naive = "no signal" if report.naive_ber is None else f"{report.naive_ber:.1%}"
        adaptive = "-" if report.adaptive_ber is None else f"{report.adaptive_ber:.1%}"
        rows.append(
            [
                report.name,
                naive,
                adaptive,
                "ALIVE" if report.channel_alive else "mitigated",
                f"x{report.overhead_ratio:.3f}",
            ]
        )
    return {
        "columns": ["defense", "naive BER", "adaptive BER", "verdict", "overhead"],
        "rows": rows,
        "series": {},
        "params": {"seeds": list(measurement.seeds)},
    }


def _shape_cross_core_wb(spec, measurement, seed):
    rows = [
        [
            name,
            f"{measurement.thresholds[name]:.2f}",
            f"{measurement.alarm_rates[name]:.1%}",
        ]
        for name in measurement.detector_names
    ]
    return {
        "columns": ["detector", "threshold", "channel flagged"],
        "rows": rows,
        "series": measurement.series,
        "params": {
            "cores": measurement.cores,
            "messages": measurement.messages,
            "message_bits": measurement.message_bits,
            "rate_kbps": measurement.rate_kbps,
            "mean_ber": measurement.mean_ber,
            "all_payloads_intact": measurement.all_payloads_intact,
            "coherence": measurement.coherence,
            "alarm_rates": measurement.alarm_rates,
            "stealth_holds": measurement.stealth_holds,
            "seed": seed,
        },
    }


def _shape_closed_loop_defense(spec, measurement, seed):
    rows = []
    for suspect in measurement.suspects:
        outcome = measurement.outcomes[suspect]
        pre = outcome.pre
        post = outcome.post
        rows.append(
            [
                suspect,
                "-" if outcome.alarm_time is None else str(outcome.alarm_time),
                "-" if outcome.flip_time is None else str(outcome.flip_time),
                "-" if pre is None else f"{pre.capacity:.3f}",
                "-" if post is None else f"{post.capacity:.3f}",
                "-" if pre is None else f"{pre.ber:.1%}",
                "-" if post is None else f"{post.ber:.1%}",
            ]
        )
    outcomes = {
        suspect: {
            "alarm_time": outcome.alarm_time,
            "alarm_sources": list(outcome.alarm_sources),
            "flip_time": outcome.flip_time,
            "flip_event_id": outcome.flip_event_id,
            "boundary_symbol": outcome.boundary_symbol,
            "payload_intact": outcome.payload_intact,
            "stream_events": outcome.stream_events,
            "stream_dropped": outcome.stream_dropped,
            "pre": None
            if outcome.pre is None
            else {
                "symbols": outcome.pre.symbols,
                "errors": outcome.pre.errors,
                "ber": outcome.pre.ber,
                "capacity": outcome.pre.capacity,
            },
            "post": None
            if outcome.post is None
            else {
                "symbols": outcome.post.symbols,
                "errors": outcome.post.errors,
                "ber": outcome.post.ber,
                "capacity": outcome.post.capacity,
            },
        }
        for suspect, outcome in measurement.outcomes.items()
    }
    return {
        "columns": [
            "suspect",
            "alarm clock",
            "flip clock",
            "pre capacity",
            "post capacity",
            "pre BER",
            "post BER",
        ],
        "rows": rows,
        "series": measurement.series,
        "params": {
            "num_symbols": measurement.num_symbols,
            "defense": measurement.defense,
            "fusion_rule": measurement.fusion_rule,
            "thresholds": measurement.thresholds,
            "outcomes": outcomes,
            "asymmetry_holds": measurement.asymmetry_holds,
            "seed": seed,
        },
    }


_SHAPERS = {
    "wb_ber_sweep": _shape_wb_ber_sweep,
    "wb_trace": _shape_wb_trace,
    "wb_level_compare": _shape_wb_level_compare,
    "wb_fault_sweep": _shape_wb_fault_sweep,
    "online_detection": _shape_online_detection,
    "defense_eval": _shape_defense_eval,
    "cross_core_wb": _shape_cross_core_wb,
    "closed_loop_defense": _shape_closed_loop_defense,
}


def run_scenario(
    spec: ScenarioSpec, *, profile: ProfileLike = None, seed: int = 0
) -> ExperimentResult:
    """Compile, execute and shape one scenario spec.

    The run happens inside the profile's engine/telemetry context,
    mirroring :func:`repro.experiments.run_experiment`, so scenario jobs
    behave identically to registered experiments under the service.
    """
    from repro.engine.selection import engine_context
    from repro.telemetry.session import telemetry_session

    resolved = resolve_profile(profile)
    compiled = compile_scenario(spec, resolved, seed)
    with engine_context(resolved.engine):
        with telemetry_session(enabled=resolved.telemetry) as session:
            measurement = compiled.measure()
    shaped = _SHAPERS[spec.kind](spec, measurement, seed)
    params: Dict[str, object] = dict(shaped["params"])
    params["scenario"] = {
        "name": spec.name,
        "kind": spec.kind,
        "key": scenario_key(spec),
    }
    if session is not None:
        params["telemetry"] = session.summary()
    return ExperimentResult(
        experiment_id=scenario_experiment_id(spec),
        title=spec.title or f"Scenario {spec.name}",
        paper_reference=spec.paper_reference or "declarative scenario",
        columns=shaped["columns"],
        rows=shaped["rows"],
        params=params,
        series=shaped["series"],
        notes=spec.description,
    )


def run_scenario_json(
    scenario_json: str, *, profile: ProfileLike = None, seed: int = 0
) -> ExperimentResult:
    """Entry point for runner tasks carrying a serialised spec."""
    return run_scenario(
        ScenarioSpec.from_json(scenario_json), profile=profile, seed=seed
    )
