"""The committed ``scenarios/`` zoo: load, validate, expand.

The zoo is the repository's catalogue of ready-to-serve scenario specs:
one JSON file per spec (file stem == spec name) plus ``KEYS.json``
pinning every spec's canonical hash.  :func:`zoo_specs` is the in-code
source of truth — the library specs behind the registered experiments
plus the variant specs below — and the drift test
(``tests/test_scenario_spec.py``) plus the ``scenario-zoo`` CI job keep
the committed files and the code in lockstep.

Campaigns: a ``wb_ber_sweep`` spec naturally factors into one job per
period.  :func:`expand_campaign` performs that split so a scheduler can
fan the sweep out as independent, individually memoised scenario jobs
(see ``scripts/run_campaign.py``).
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Callable, Dict, List

from repro.cache.configs import HierarchyParams
from repro.common.errors import ConfigurationError
from repro.faults.spec import FaultSpec
from repro.scenario.library import LIBRARY, PAPER_PERIODS
from repro.scenario.spec import (
    Axis,
    BerSweepParams,
    ChannelSpec,
    CodecSpec,
    Counts,
    CrossCoreParams,
    FaultSweepParams,
    ScenarioSpec,
    TraceParams,
    scenario_key,
)

#: Name of the canonical-hash pin file inside a zoo directory.
KEYS_FILENAME = "KEYS.json"


def campaign_ts_sweep_spec() -> ScenarioSpec:
    """A small sweep campaign: one expandable job per paper period."""
    return ScenarioSpec(
        name="campaign-ts-sweep",
        kind="wb_ber_sweep",
        title="Campaign: d=2 binary BER across the paper's Ts sweep",
        paper_reference="Figure 6 (campaign example)",
        description=(
            "Sweep-campaign example: expand_campaign() splits this spec "
            "into one scenario job per period so a scheduler can fan the "
            "sweep out and memoise each point independently."
        ),
        channel=ChannelSpec(codec=CodecSpec(kind="binary", d_on=2)),
        params=BerSweepParams(
            periods=PAPER_PERIODS,
            messages=Counts(2, 12),
            message_bits=Counts(32, 64),
            calibration_repetitions=Counts(10, 40),
        ),
    )


def random_l1_trace_spec() -> ScenarioSpec:
    """The Figure 7 trace on a random-replacement L1 (custom topology)."""
    return ScenarioSpec(
        name="random-l1-trace",
        kind="wb_trace",
        title="Receiver trace with a random-replacement L1D",
        paper_reference="Section 6.1 (random replacement), Figure 7 setup",
        description=(
            "The instrumented trace run on a non-default topology: the "
            "Xeon hierarchy with the L1D flipped to random replacement. "
            "Exercises the spec-level hierarchy override end to end."
        ),
        hierarchy=HierarchyParams.xeon(l1_policy="random"),
        channel=ChannelSpec(codec=CodecSpec(kind="binary", d_on=8)),
        params=TraceParams(
            period=5500,
            message_bits=Counts(48, 128),
            calibration_repetitions=Counts(20, 60),
        ),
    )


def fault_storm_spec() -> ScenarioSpec:
    """The fault sweep pushed past the paper-adjacent intensity range."""
    return ScenarioSpec(
        name="fault-storm",
        kind="wb_fault_sweep",
        title="Raw vs hardened protocol under doubled fault pressure",
        paper_reference="robustness extension (beyond the paper)",
        description=(
            "The fault_tolerance sweep with the intensity axis extended "
            "to 4x: descheduling windows, probe drops/duplicates, drift "
            "and co-runner bursts all scaled together."
        ),
        channel=ChannelSpec(codec=CodecSpec(kind="binary", d_on=1)),
        params=FaultSweepParams(
            period=5500,
            raw_message_bits=80,
            payload_bits=64,
            intensities=Axis(quick=(0.0, 2.0), full=(0.0, 1.0, 2.0, 4.0)),
            runs_per_point=Counts(1, 2),
            fault=FaultSpec(),
        ),
    )


def cross_core_quad_spec() -> ScenarioSpec:
    """The cross-core channel on a 4-core topology (idle cores 2 and 3).

    Same sender/receiver pair as the library spec; the extra cores add
    directory-state breadth (4-way sharing vectors) and two more
    per-core detector instances to the stealth check.
    """
    return ScenarioSpec(
        name="cross-core-quad",
        kind="cross_core_wb",
        title="Cross-core WB channel on a 4-core MESI topology",
        paper_reference="coherence extension (beyond the paper's SMT setting)",
        description=(
            "The cross_core_wb run with cores=4: sender on core 0, "
            "receiver on core 1, cores 2-3 idle but coherent. Exercises "
            "the N-core directory and the per-core detector fan-out."
        ),
        channel=ChannelSpec(codec=CodecSpec(kind="binary", d_on=4)),
        hierarchy=HierarchyParams.xeon(cores=4),
        params=CrossCoreParams(
            period=9000,
            messages=Counts(1, 2),
            message_bits=Counts(24, 48),
            calibration_repetitions=Counts(12, 24),
        ),
    )


#: Variant specs committed to the zoo beyond the experiment library.
VARIANTS: Dict[str, Callable[[], ScenarioSpec]] = {
    "campaign-ts-sweep": campaign_ts_sweep_spec,
    "random-l1-trace": random_l1_trace_spec,
    "fault-storm": fault_storm_spec,
    "cross-core-quad": cross_core_quad_spec,
}


def zoo_specs() -> Dict[str, ScenarioSpec]:
    """Every spec the committed zoo must contain, keyed by name."""
    specs: Dict[str, ScenarioSpec] = {}
    for factory in list(LIBRARY.values()) + list(VARIANTS.values()):
        spec = factory()
        specs[spec.name] = spec
    return specs


def zoo_keys(specs: Dict[str, ScenarioSpec]) -> Dict[str, str]:
    """Canonical hash per spec name (the ``KEYS.json`` payload)."""
    return {name: scenario_key(spec) for name, spec in sorted(specs.items())}


def load_spec_file(path: str) -> ScenarioSpec:
    """Load and validate one spec file; the stem must match the name."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    spec = ScenarioSpec.from_json(text)
    spec.validate()
    stem = os.path.splitext(os.path.basename(path))[0]
    if stem != spec.name:
        raise ConfigurationError(
            f"scenario file {os.path.basename(path)!r} holds spec named "
            f"{spec.name!r}; the file stem must equal the spec name"
        )
    return spec


def load_zoo(directory: str) -> Dict[str, ScenarioSpec]:
    """Load every ``*.json`` spec in ``directory`` (except KEYS.json)."""
    if not os.path.isdir(directory):
        raise ConfigurationError(f"scenario zoo directory not found: {directory}")
    specs: Dict[str, ScenarioSpec] = {}
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(".json") or entry == KEYS_FILENAME:
            continue
        spec = load_spec_file(os.path.join(directory, entry))
        specs[spec.name] = spec
    if not specs:
        raise ConfigurationError(f"scenario zoo is empty: {directory}")
    return specs


def load_pinned_keys(directory: str) -> Dict[str, str]:
    """The committed ``KEYS.json`` hash pins for a zoo directory."""
    path = os.path.join(directory, KEYS_FILENAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            keys = json.load(handle)
    except FileNotFoundError:
        raise ConfigurationError(f"missing {KEYS_FILENAME} in {directory}") from None
    if not isinstance(keys, dict):
        raise ConfigurationError(f"{path} must hold a name -> key object")
    return keys


def verify_zoo(directory: str) -> Dict[str, ScenarioSpec]:
    """Validate a zoo directory against its pinned keys.

    Checks that every committed file parses, validates, matches the
    in-code :func:`zoo_specs` and hashes to its pinned key — loudly
    reporting drift in either direction (edited file, edited code, or a
    stale ``KEYS.json``).
    """
    specs = load_zoo(directory)
    pinned = load_pinned_keys(directory)
    expected = zoo_specs()

    missing = sorted(set(expected) - set(specs))
    extra = sorted(set(specs) - set(expected))
    if missing or extra:
        raise ConfigurationError(
            "scenario zoo drift: "
            + (f"missing files for {', '.join(missing)}; " if missing else "")
            + (f"unexpected files {', '.join(extra)}" if extra else "")
        )
    problems: List[str] = []
    for name, spec in sorted(specs.items()):
        if spec != expected[name]:
            problems.append(f"{name}: committed file differs from zoo_specs()")
            continue
        key = scenario_key(spec)
        if name not in pinned:
            problems.append(f"{name}: no pinned key in {KEYS_FILENAME}")
        elif pinned[name] != key:
            problems.append(
                f"{name}: canonical key drift (pinned {pinned[name][:12]}..., "
                f"computed {key[:12]}...)"
            )
    stale = sorted(set(pinned) - set(specs))
    if stale:
        problems.append(f"stale pinned keys: {', '.join(stale)}")
    if problems:
        raise ConfigurationError("scenario zoo drift:\n  " + "\n  ".join(problems))
    return specs


def write_zoo(directory: str) -> List[str]:
    """(Re)generate the committed zoo files from :func:`zoo_specs`."""
    os.makedirs(directory, exist_ok=True)
    written: List[str] = []
    specs = zoo_specs()
    for name, spec in sorted(specs.items()):
        path = os.path.join(directory, f"{name}.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(spec.to_json(indent=2) + "\n")
        written.append(path)
    keys_path = os.path.join(directory, KEYS_FILENAME)
    with open(keys_path, "w", encoding="utf-8") as handle:
        json.dump(zoo_keys(specs), handle, indent=2, sort_keys=True)
        handle.write("\n")
    written.append(keys_path)
    return written


def expand_campaign(spec: ScenarioSpec) -> List[ScenarioSpec]:
    """Split a multi-period sweep into one single-period spec per point.

    Each child is a complete, independently hashable scenario — a
    scheduler submits them as separate jobs and the result store
    memoises each period on its own key.
    """
    if spec.kind != "wb_ber_sweep":
        raise ConfigurationError(
            f"only wb_ber_sweep scenarios expand into campaigns, "
            f"got kind {spec.kind!r}"
        )
    if len(spec.params.periods) < 2:
        return [spec]
    children: List[ScenarioSpec] = []
    for period in spec.params.periods:
        children.append(
            dataclasses.replace(
                spec,
                name=f"{spec.name}--ts{period}",
                title=f"{spec.title} [Ts={period}]" if spec.title else "",
                params=dataclasses.replace(spec.params, periods=(period,)),
            )
        )
    return children
