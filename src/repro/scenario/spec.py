"""Declarative scenario specifications.

A :class:`ScenarioSpec` is the complete, versioned description of one
covert-channel scenario as *data*: hierarchy topology, channel geometry,
codec, sender/receiver/co-runner programs, fault regime, detector set,
defense selection and sweep parameters.  Specs serialise through
:func:`repro.common.canonical.canonical_json`, so every spec has a stable
content address (:func:`scenario_key`) the service uses to memoise runs,
and compile via :func:`repro.scenario.compile.compile_scenario` into the
exact call sequences the historic experiment modules performed — the
rebased experiments are bit-identical to their pre-spec output.

Design rules:

* every node is a frozen dataclass with plain-data fields only;
* ``from_dict`` is strict — unknown fields and stale ``schema_version``
  values raise :class:`~repro.common.errors.ConfigurationError` instead
  of being silently dropped (a typo must never silently change what a
  key hashes);
* profile-dependent quantities are explicit :class:`Counts` /
  :class:`Axis` pairs, resolved against a
  :class:`~repro.experiments.profiles.RunProfile` at compile time, so
  one spec describes both the CI-speed and the full-budget run.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Type

from repro.cache.configs import HierarchyParams
from repro.common.canonical import canonical_digest, canonical_json
from repro.common.errors import ConfigurationError
from repro.experiments.profiles import RunProfile
from repro.faults.spec import FaultSpec

#: Bump on any change to the spec layout below; stale specs fail loudly.
SCENARIO_SCHEMA_VERSION = 1

#: Scenario kinds with a compiled runner (see repro.scenario.compile).
SCENARIO_KINDS = (
    "wb_ber_sweep",
    "wb_trace",
    "wb_level_compare",
    "wb_fault_sweep",
    "online_detection",
    "defense_eval",
    "cross_core_wb",
    "closed_loop_defense",
)


def _check_fields(cls, data, context: str) -> None:
    """Reject non-dicts and unknown keys loudly."""
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"{context} must be a JSON object, got {type(data).__name__}"
        )
    valid = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - valid
    if unknown:
        raise ConfigurationError(
            f"unknown {context} field(s): {', '.join(sorted(unknown))}; "
            f"valid fields: {', '.join(sorted(valid))}"
        )


# ----------------------------------------------------------------------
# Profile-dependent quantities
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Counts:
    """A repetition count with explicit quick and full budgets.

    Resolved through :meth:`RunProfile.count`, so custom-scaled profiles
    behave exactly as they did for the imperative experiments.
    """

    quick: int
    full: int

    def resolve(self, profile: RunProfile) -> int:
        return profile.count(quick=self.quick, full=self.full)

    def to_dict(self) -> Dict[str, object]:
        return {"quick": self.quick, "full": self.full}

    @classmethod
    def from_dict(cls, data) -> "Counts":
        _check_fields(cls, data, "counts")
        return cls(quick=int(data["quick"]), full=int(data["full"]))


@dataclass(frozen=True)
class Axis:
    """A sweep axis with explicit quick and full point sets."""

    quick: Tuple[float, ...]
    full: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.quick or not self.full:
            raise ConfigurationError("axis needs at least one point per budget")

    def resolve(self, profile: RunProfile) -> Tuple[float, ...]:
        return self.quick if profile.is_reduced else self.full

    def to_dict(self) -> Dict[str, object]:
        return {"quick": list(self.quick), "full": list(self.full)}

    @classmethod
    def from_dict(cls, data) -> "Axis":
        _check_fields(cls, data, "axis")
        return cls(quick=tuple(data["quick"]), full=tuple(data["full"]))


# ----------------------------------------------------------------------
# Channel building blocks
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CodecSpec:
    """Symbol encoding: which dirty-line counts mean which bits."""

    kind: str = "binary"  # "binary" | "multibit"
    #: Binary encoding: dirty lines for a 1-bit (paper's ``d``).
    d_on: int = 1
    #: Multi-bit encoding: symbol value -> dirty-line count; ``None``
    #: selects the paper's 2-bit scheme {0, 3, 5, 8}.
    level_map: Optional[Dict[str, int]] = None

    def build(self):
        """Construct the live codec this spec describes."""
        from repro.channels.encoding import BinaryDirtyCodec, MultiBitDirtyCodec

        if self.kind == "binary":
            return BinaryDirtyCodec(d_on=self.d_on)
        if self.kind == "multibit":
            if self.level_map is None:
                return MultiBitDirtyCodec()
            return MultiBitDirtyCodec(
                {int(symbol): int(count) for symbol, count in self.level_map.items()}
            )
        raise ConfigurationError(
            f"unknown codec kind {self.kind!r}; valid: binary, multibit"
        )

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "d_on": self.d_on, "level_map": self.level_map}

    @classmethod
    def from_dict(cls, data) -> "CodecSpec":
        _check_fields(cls, data, "codec")
        level_map = data.get("level_map")
        return cls(
            kind=str(data.get("kind", "binary")),
            d_on=int(data.get("d_on", 1)),
            level_map=None if level_map is None else dict(level_map),
        )


@dataclass(frozen=True)
class SenderSpec:
    """The transmitting program (paper's Algorithm 1 sender)."""

    kind: str = "wb_paced_store"
    #: Re-load evicted lines before storing (slower, more reliable).
    ensure_resident: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "ensure_resident": self.ensure_resident}

    @classmethod
    def from_dict(cls, data) -> "SenderSpec":
        _check_fields(cls, data, "sender")
        return cls(
            kind=str(data.get("kind", "wb_paced_store")),
            ensure_resident=bool(data.get("ensure_resident", False)),
        )


@dataclass(frozen=True)
class ReceiverSpec:
    """The probing program (paper's Algorithm 2/3 receiver)."""

    kind: str = "wb_probe"
    #: Fixed phase offset in periods; ``None`` = preamble alignment.
    phase: Optional[float] = None
    alignment_slack_symbols: int = 4

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "phase": self.phase,
            "alignment_slack_symbols": self.alignment_slack_symbols,
        }

    @classmethod
    def from_dict(cls, data) -> "ReceiverSpec":
        _check_fields(cls, data, "receiver")
        phase = data.get("phase")
        return cls(
            kind=str(data.get("kind", "wb_probe")),
            phase=None if phase is None else float(phase),
            alignment_slack_symbols=int(data.get("alignment_slack_symbols", 4)),
        )


@dataclass(frozen=True)
class CoRunnerSpec:
    """A third-party program sharing the machine (e.g. a set prober)."""

    kind: str = "periodic_prober"
    lines: int = 10
    sweeps_per_period: int = 10

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "lines": self.lines,
            "sweeps_per_period": self.sweeps_per_period,
        }

    @classmethod
    def from_dict(cls, data) -> "CoRunnerSpec":
        _check_fields(cls, data, "co-runner")
        return cls(
            kind=str(data.get("kind", "periodic_prober")),
            lines=int(data.get("lines", 10)),
            sweeps_per_period=int(data.get("sweeps_per_period", 10)),
        )


@dataclass(frozen=True)
class ChannelSpec:
    """Structural channel parameters shared by every run of a scenario.

    Defaults mirror :class:`~repro.channels.wb.WBChannelConfig`; the L2
    deployment has its own defaults
    (:class:`~repro.channels.wb.l2.L2WBChannelConfig`) which the
    ``wb_level_compare`` compiler applies for its L2 legs.
    """

    level: str = "l1"  # "l1" | "l2"
    codec: CodecSpec = field(default_factory=CodecSpec)
    target_set: int = 21
    replacement_set_size: int = 10
    start_time: int = 30000
    sender: SenderSpec = field(default_factory=SenderSpec)
    receiver: ReceiverSpec = field(default_factory=ReceiverSpec)

    def __post_init__(self) -> None:
        if self.level not in ("l1", "l2"):
            raise ConfigurationError(
                f"channel level must be 'l1' or 'l2', got {self.level!r}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "level": self.level,
            "codec": self.codec.to_dict(),
            "target_set": self.target_set,
            "replacement_set_size": self.replacement_set_size,
            "start_time": self.start_time,
            "sender": self.sender.to_dict(),
            "receiver": self.receiver.to_dict(),
        }

    @classmethod
    def from_dict(cls, data) -> "ChannelSpec":
        _check_fields(cls, data, "channel")
        return cls(
            level=str(data.get("level", "l1")),
            codec=CodecSpec.from_dict(data.get("codec", {})),
            target_set=int(data.get("target_set", 21)),
            replacement_set_size=int(data.get("replacement_set_size", 10)),
            start_time=int(data.get("start_time", 30000)),
            sender=SenderSpec.from_dict(data.get("sender", {})),
            receiver=ReceiverSpec.from_dict(data.get("receiver", {})),
        )


@dataclass(frozen=True)
class DetectorSpec:
    """One online detector attachment (see repro.telemetry.detectors)."""

    kind: str  # "miss_rate" | "writeback_burst"
    name: str
    window: int
    segment: int = 0
    max_lag: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("miss_rate", "writeback_burst"):
            raise ConfigurationError(
                f"unknown detector kind {self.kind!r}; "
                f"valid: miss_rate, writeback_burst"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "name": self.name,
            "window": self.window,
            "segment": self.segment,
            "max_lag": self.max_lag,
        }

    @classmethod
    def from_dict(cls, data) -> "DetectorSpec":
        _check_fields(cls, data, "detector")
        return cls(
            kind=str(data["kind"]),
            name=str(data["name"]),
            window=int(data["window"]),
            segment=int(data.get("segment", 0)),
            max_lag=int(data.get("max_lag", 0)),
        )


# ----------------------------------------------------------------------
# Kind-specific parameter blocks
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BerSweepParams:
    """BER vs transmission-rate sweep (Figures 6 and 8).

    When ``d_values`` is set the sweep runs one *binary* codec per ``d``
    (Figure 6); otherwise it runs the scenario's single channel codec
    (Figure 8).
    """

    periods: Tuple[int, ...]
    d_values: Optional[Axis] = None
    messages: Counts = field(default_factory=lambda: Counts(6, 90))
    message_bits: Counts = field(default_factory=lambda: Counts(64, 128))
    calibration_repetitions: Counts = field(default_factory=lambda: Counts(20, 60))
    seed_stride: int = 10007

    def __post_init__(self) -> None:
        if not self.periods:
            raise ConfigurationError("ber sweep needs at least one period")

    def to_dict(self) -> Dict[str, object]:
        return {
            "periods": list(self.periods),
            "d_values": None if self.d_values is None else self.d_values.to_dict(),
            "messages": self.messages.to_dict(),
            "message_bits": self.message_bits.to_dict(),
            "calibration_repetitions": self.calibration_repetitions.to_dict(),
            "seed_stride": self.seed_stride,
        }

    @classmethod
    def from_dict(cls, data) -> "BerSweepParams":
        _check_fields(cls, data, "wb_ber_sweep params")
        d_values = data.get("d_values")
        return cls(
            periods=tuple(int(p) for p in data["periods"]),
            d_values=None if d_values is None else Axis.from_dict(d_values),
            messages=Counts.from_dict(data.get("messages", {"quick": 6, "full": 90})),
            message_bits=Counts.from_dict(
                data.get("message_bits", {"quick": 64, "full": 128})
            ),
            calibration_repetitions=Counts.from_dict(
                data.get("calibration_repetitions", {"quick": 20, "full": 60})
            ),
            seed_stride=int(data.get("seed_stride", 10007)),
        )


@dataclass(frozen=True)
class TraceParams:
    """Single instrumented run capturing the receiver trace (Figure 7)."""

    period: int = 4000
    message_bits: Counts = field(default_factory=lambda: Counts(64, 256))
    calibration_repetitions: Counts = field(default_factory=lambda: Counts(20, 60))

    def to_dict(self) -> Dict[str, object]:
        return {
            "period": self.period,
            "message_bits": self.message_bits.to_dict(),
            "calibration_repetitions": self.calibration_repetitions.to_dict(),
        }

    @classmethod
    def from_dict(cls, data) -> "TraceParams":
        _check_fields(cls, data, "wb_trace params")
        return cls(
            period=int(data.get("period", 4000)),
            message_bits=Counts.from_dict(
                data.get("message_bits", {"quick": 64, "full": 256})
            ),
            calibration_repetitions=Counts.from_dict(
                data.get("calibration_repetitions", {"quick": 20, "full": 60})
            ),
        )


@dataclass(frozen=True)
class LevelCompareParams:
    """L1 vs L2 deployment comparison (Section 3 extension)."""

    l1_periods: Tuple[int, ...] = (5500, 11000)
    l2_periods: Tuple[int, ...] = (22000, 44000)
    messages: Counts = field(default_factory=lambda: Counts(4, 20))
    message_bits: Counts = field(default_factory=lambda: Counts(48, 128))
    l1_calibration_repetitions: int = 40
    seed_stride: int = 41

    def to_dict(self) -> Dict[str, object]:
        return {
            "l1_periods": list(self.l1_periods),
            "l2_periods": list(self.l2_periods),
            "messages": self.messages.to_dict(),
            "message_bits": self.message_bits.to_dict(),
            "l1_calibration_repetitions": self.l1_calibration_repetitions,
            "seed_stride": self.seed_stride,
        }

    @classmethod
    def from_dict(cls, data) -> "LevelCompareParams":
        _check_fields(cls, data, "wb_level_compare params")
        return cls(
            l1_periods=tuple(int(p) for p in data.get("l1_periods", (5500, 11000))),
            l2_periods=tuple(int(p) for p in data.get("l2_periods", (22000, 44000))),
            messages=Counts.from_dict(data.get("messages", {"quick": 4, "full": 20})),
            message_bits=Counts.from_dict(
                data.get("message_bits", {"quick": 48, "full": 128})
            ),
            l1_calibration_repetitions=int(data.get("l1_calibration_repetitions", 40)),
            seed_stride=int(data.get("seed_stride", 41)),
        )


@dataclass(frozen=True)
class FaultSweepParams:
    """Raw vs hardened protocol under a fault-intensity sweep."""

    period: int = 5500
    raw_message_bits: int = 80
    payload_bits: int = 64
    intensities: Axis = field(
        default_factory=lambda: Axis(quick=(0.0, 1.0), full=(0.0, 0.5, 1.0, 2.0, 3.0))
    )
    runs_per_point: Counts = field(default_factory=lambda: Counts(1, 3))
    fault: FaultSpec = field(default_factory=FaultSpec)
    collapse_threshold: float = 0.10
    seed_stride: int = 991

    def to_dict(self) -> Dict[str, object]:
        return {
            "period": self.period,
            "raw_message_bits": self.raw_message_bits,
            "payload_bits": self.payload_bits,
            "intensities": self.intensities.to_dict(),
            "runs_per_point": self.runs_per_point.to_dict(),
            "fault": self.fault.to_dict(),
            "collapse_threshold": self.collapse_threshold,
            "seed_stride": self.seed_stride,
        }

    @classmethod
    def from_dict(cls, data) -> "FaultSweepParams":
        _check_fields(cls, data, "wb_fault_sweep params")
        return cls(
            period=int(data.get("period", 5500)),
            raw_message_bits=int(data.get("raw_message_bits", 80)),
            payload_bits=int(data.get("payload_bits", 64)),
            intensities=Axis.from_dict(
                data.get(
                    "intensities",
                    {"quick": [0.0, 1.0], "full": [0.0, 0.5, 1.0, 2.0, 3.0]},
                )
            ),
            runs_per_point=Counts.from_dict(
                data.get("runs_per_point", {"quick": 1, "full": 3})
            ),
            fault=FaultSpec.from_dict(data.get("fault", FaultSpec().to_dict())),
            collapse_threshold=float(data.get("collapse_threshold", 0.10)),
            seed_stride=int(data.get("seed_stride", 991)),
        )


@dataclass(frozen=True)
class OnlineDetectionParams:
    """WB vs LRU vs benign suspects under live detectors (Section 7)."""

    period: int = 11000
    target_set: int = 21
    start_time: int = 2_000_000
    num_symbols: Counts = field(default_factory=lambda: Counts(48, 192))
    prober: CoRunnerSpec = field(default_factory=CoRunnerSpec)
    detectors: Tuple[DetectorSpec, ...] = field(
        default_factory=lambda: (
            DetectorSpec(kind="miss_rate", name="monitor", window=100),
            DetectorSpec(
                kind="writeback_burst", name="burst", window=20, segment=30, max_lag=12
            ),
        )
    )
    suspects: Tuple[str, ...] = ("benign", "wb", "lru")
    threshold_sigmas: float = 3.0
    calibration_seed_offset: int = 7919
    roc_points: int = 13

    def __post_init__(self) -> None:
        if not self.detectors:
            raise ConfigurationError("online detection needs at least one detector")
        for suspect in self.suspects:
            if suspect not in ("benign", "wb", "lru"):
                raise ConfigurationError(
                    f"unknown suspect {suspect!r}; valid: benign, wb, lru"
                )

    def to_dict(self) -> Dict[str, object]:
        return {
            "period": self.period,
            "target_set": self.target_set,
            "start_time": self.start_time,
            "num_symbols": self.num_symbols.to_dict(),
            "prober": self.prober.to_dict(),
            "detectors": [d.to_dict() for d in self.detectors],
            "suspects": list(self.suspects),
            "threshold_sigmas": self.threshold_sigmas,
            "calibration_seed_offset": self.calibration_seed_offset,
            "roc_points": self.roc_points,
        }

    @classmethod
    def from_dict(cls, data) -> "OnlineDetectionParams":
        _check_fields(cls, data, "online_detection params")
        defaults = cls()
        detectors = data.get("detectors")
        return cls(
            period=int(data.get("period", 11000)),
            target_set=int(data.get("target_set", 21)),
            start_time=int(data.get("start_time", 2_000_000)),
            num_symbols=Counts.from_dict(
                data.get("num_symbols", {"quick": 48, "full": 192})
            ),
            prober=CoRunnerSpec.from_dict(data.get("prober", defaults.prober.to_dict())),
            detectors=(
                defaults.detectors
                if detectors is None
                else tuple(DetectorSpec.from_dict(d) for d in detectors)
            ),
            suspects=tuple(data.get("suspects", ("benign", "wb", "lru"))),
            threshold_sigmas=float(data.get("threshold_sigmas", 3.0)),
            calibration_seed_offset=int(data.get("calibration_seed_offset", 7919)),
            roc_points=int(data.get("roc_points", 13)),
        )


@dataclass(frozen=True)
class DefenseEvalParams:
    """Section 8 defense evaluation over a seed range."""

    num_seeds: Counts = field(default_factory=lambda: Counts(2, 6))
    #: ``None`` = every registered defense; else a subset by name.
    defenses: Optional[Tuple[str, ...]] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "num_seeds": self.num_seeds.to_dict(),
            "defenses": None if self.defenses is None else list(self.defenses),
        }

    @classmethod
    def from_dict(cls, data) -> "DefenseEvalParams":
        _check_fields(cls, data, "defense_eval params")
        defenses = data.get("defenses")
        return cls(
            num_seeds=Counts.from_dict(data.get("num_seeds", {"quick": 2, "full": 6})),
            defenses=None if defenses is None else tuple(str(d) for d in defenses),
        )


@dataclass(frozen=True)
class CrossCoreParams:
    """Cross-core WB channel over MESI downgrade write-backs.

    Requires a multi-core hierarchy (``cores >= 2`` in the spec's
    :class:`~repro.cache.configs.HierarchyParams`); sender runs on
    core 0, receiver on core 1.  The channel structure (codec,
    target set, start time, receiver phase/slack) comes from the
    spec's :class:`ChannelSpec`; the per-core stealth re-run of the
    Section 7 question is configured here.
    """

    period: int = 9000
    #: Independent messages, seeded ``seed * seed_stride + index``.
    messages: Counts = field(default_factory=lambda: Counts(1, 3))
    message_bits: Counts = field(default_factory=lambda: Counts(24, 64))
    calibration_repetitions: Counts = field(default_factory=lambda: Counts(12, 30))
    seed_stride: int = 101
    #: Detectors attached per core during transmissions (stealth check).
    #: Windows are counted in clock-anchor accesses; the cross-core
    #: receiver only touches ``d_on`` lines per period (no sweeps), so
    #: the burst geometry is much smaller than the single-core default
    #: or segments would never complete.
    detectors: Tuple[DetectorSpec, ...] = field(
        default_factory=lambda: (
            DetectorSpec(kind="miss_rate", name="monitor", window=100),
            DetectorSpec(
                kind="writeback_burst", name="burst", window=4, segment=6, max_lag=3
            ),
        )
    )
    threshold_sigmas: float = 3.0
    calibration_seed_offset: int = 7919
    #: Benign co-run length (periods) used to fit detector baselines.
    benign_periods: Counts = field(default_factory=lambda: Counts(48, 160))

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigurationError(f"period must be positive, got {self.period}")
        if not self.detectors:
            raise ConfigurationError(
                "cross_core_wb needs at least one detector for the stealth check"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "period": self.period,
            "messages": self.messages.to_dict(),
            "message_bits": self.message_bits.to_dict(),
            "calibration_repetitions": self.calibration_repetitions.to_dict(),
            "seed_stride": self.seed_stride,
            "detectors": [d.to_dict() for d in self.detectors],
            "threshold_sigmas": self.threshold_sigmas,
            "calibration_seed_offset": self.calibration_seed_offset,
            "benign_periods": self.benign_periods.to_dict(),
        }

    @classmethod
    def from_dict(cls, data) -> "CrossCoreParams":
        _check_fields(cls, data, "cross_core_wb params")
        defaults = cls()
        detectors = data.get("detectors")
        return cls(
            period=int(data.get("period", 9000)),
            messages=Counts.from_dict(data.get("messages", {"quick": 1, "full": 3})),
            message_bits=Counts.from_dict(
                data.get("message_bits", {"quick": 24, "full": 64})
            ),
            calibration_repetitions=Counts.from_dict(
                data.get("calibration_repetitions", {"quick": 12, "full": 30})
            ),
            seed_stride=int(data.get("seed_stride", 101)),
            detectors=(
                defaults.detectors
                if detectors is None
                else tuple(DetectorSpec.from_dict(d) for d in detectors)
            ),
            threshold_sigmas=float(data.get("threshold_sigmas", 3.0)),
            calibration_seed_offset=int(data.get("calibration_seed_offset", 7919)),
            benign_periods=Counts.from_dict(
                data.get("benign_periods", {"quick": 48, "full": 160})
            ),
        )


@dataclass(frozen=True)
class ClosedLoopParams:
    """Live detect→fuse→respond loop around one suspect (Section 7, closed).

    One co-run per suspect: the suspect modulates the dirty-state
    channel on ``target_set``, a receiver thread decodes it (one
    replacement-set chase per period, doubling as the detectors' pacing
    clock), the configured detectors stream z-scores into a
    :class:`~repro.orchestration.aggregator.FleetAggregator`
    (``fusion_k``-of-n sources with ``fusion_min_hits`` over-threshold
    scores within ``fusion_window`` clock units), and on the fused alarm
    a :class:`~repro.orchestration.responder.DefenseResponder` flips the
    hierarchy to ``defense``.  Channel capacity and BER are measured
    before vs. after the flip.

    Detector windows are denominated in receiver L1 accesses (the
    receiver chases ``replacement_set_size`` lines once per period, so
    ``window == replacement_set_size`` means one window per period).
    """

    period: int = 11000
    target_set: int = 21
    start_time: int = 2_000_000
    num_symbols: Counts = field(default_factory=lambda: Counts(48, 192))
    replacement_set_size: int = 10
    receiver_phase: float = 0.5
    detectors: Tuple[DetectorSpec, ...] = field(
        default_factory=lambda: (
            DetectorSpec(kind="miss_rate", name="monitor_fast", window=10),
            DetectorSpec(kind="miss_rate", name="monitor_slow", window=30),
            DetectorSpec(
                kind="writeback_burst", name="burst", window=10, segment=12, max_lag=6
            ),
        )
    )
    suspects: Tuple[str, ...] = ("wb", "lru")
    threshold_sigmas: float = 3.0
    calibration_seed_offset: int = 7919
    decoder_repetitions: Counts = field(default_factory=lambda: Counts(12, 30))
    fusion_k: int = 2
    fusion_window: int = 300
    fusion_min_hits: int = 1
    #: Clock readings at or below this are published but never count as
    #: hits: the first windows after the stats reset straddle the
    #: suspects' startup transient and score as spurious outliers for
    #: benign and channel processes alike.
    fusion_warmup: int = 40
    defense: str = "write_through"

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigurationError(f"period must be positive, got {self.period}")
        if not self.detectors:
            raise ConfigurationError(
                "closed_loop_defense needs at least one detector"
            )
        for suspect in self.suspects:
            if suspect not in ("benign", "wb", "lru"):
                raise ConfigurationError(
                    f"unknown suspect {suspect!r}; valid: benign, wb, lru"
                )
        if self.fusion_k <= 0 or self.fusion_k > len(self.detectors):
            raise ConfigurationError(
                f"fusion_k must be in 1..{len(self.detectors)} "
                f"(the source count), got {self.fusion_k}"
            )
        if self.fusion_window <= 0:
            raise ConfigurationError(
                f"fusion_window must be positive, got {self.fusion_window}"
            )
        if self.fusion_min_hits <= 0:
            raise ConfigurationError(
                f"fusion_min_hits must be positive, got {self.fusion_min_hits}"
            )
        if self.fusion_warmup < 0:
            raise ConfigurationError(
                f"fusion_warmup must be >= 0, got {self.fusion_warmup}"
            )
        if self.defense not in ("write_through", "partition"):
            raise ConfigurationError(
                f"defense must be write_through or partition, got {self.defense!r}"
            )
        if not 0.0 <= self.receiver_phase < 1.0:
            raise ConfigurationError(
                f"receiver_phase must be in [0, 1), got {self.receiver_phase}"
            )
        if self.replacement_set_size <= 0:
            raise ConfigurationError(
                f"replacement_set_size must be positive, "
                f"got {self.replacement_set_size}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "period": self.period,
            "target_set": self.target_set,
            "start_time": self.start_time,
            "num_symbols": self.num_symbols.to_dict(),
            "replacement_set_size": self.replacement_set_size,
            "receiver_phase": self.receiver_phase,
            "detectors": [d.to_dict() for d in self.detectors],
            "suspects": list(self.suspects),
            "threshold_sigmas": self.threshold_sigmas,
            "calibration_seed_offset": self.calibration_seed_offset,
            "decoder_repetitions": self.decoder_repetitions.to_dict(),
            "fusion_k": self.fusion_k,
            "fusion_window": self.fusion_window,
            "fusion_min_hits": self.fusion_min_hits,
            "fusion_warmup": self.fusion_warmup,
            "defense": self.defense,
        }

    @classmethod
    def from_dict(cls, data) -> "ClosedLoopParams":
        _check_fields(cls, data, "closed_loop_defense params")
        defaults = cls()
        detectors = data.get("detectors")
        return cls(
            period=int(data.get("period", 11000)),
            target_set=int(data.get("target_set", 21)),
            start_time=int(data.get("start_time", 2_000_000)),
            num_symbols=Counts.from_dict(
                data.get("num_symbols", {"quick": 48, "full": 192})
            ),
            replacement_set_size=int(data.get("replacement_set_size", 10)),
            receiver_phase=float(data.get("receiver_phase", 0.5)),
            detectors=(
                defaults.detectors
                if detectors is None
                else tuple(DetectorSpec.from_dict(d) for d in detectors)
            ),
            suspects=tuple(data.get("suspects", ("wb", "lru"))),
            threshold_sigmas=float(data.get("threshold_sigmas", 3.0)),
            calibration_seed_offset=int(data.get("calibration_seed_offset", 7919)),
            decoder_repetitions=Counts.from_dict(
                data.get("decoder_repetitions", {"quick": 12, "full": 30})
            ),
            fusion_k=int(data.get("fusion_k", 2)),
            fusion_window=int(data.get("fusion_window", 300)),
            fusion_min_hits=int(data.get("fusion_min_hits", 1)),
            fusion_warmup=int(data.get("fusion_warmup", 40)),
            defense=str(data.get("defense", "write_through")),
        )


_PARAMS_TYPES: Dict[str, Type] = {
    "wb_ber_sweep": BerSweepParams,
    "wb_trace": TraceParams,
    "wb_level_compare": LevelCompareParams,
    "wb_fault_sweep": FaultSweepParams,
    "online_detection": OnlineDetectionParams,
    "defense_eval": DefenseEvalParams,
    "cross_core_wb": CrossCoreParams,
    "closed_loop_defense": ClosedLoopParams,
}


# ----------------------------------------------------------------------
# The spec root
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ScenarioSpec:
    """One complete scenario, as canonicalisable data."""

    name: str
    kind: str
    params: object
    channel: ChannelSpec = field(default_factory=ChannelSpec)
    #: ``None`` = the default Xeon E5-2650 hierarchy (the paper's).
    hierarchy: Optional[HierarchyParams] = None
    title: str = ""
    paper_reference: str = ""
    description: str = ""
    schema_version: int = SCENARIO_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        if self.schema_version != SCENARIO_SCHEMA_VERSION:
            raise ConfigurationError(
                f"scenario {self.name!r} has schema_version "
                f"{self.schema_version}; this build understands only "
                f"{SCENARIO_SCHEMA_VERSION} — regenerate the spec"
            )
        expected = _PARAMS_TYPES.get(self.kind)
        if expected is None:
            raise ConfigurationError(
                f"unknown scenario kind {self.kind!r}; valid: "
                f"{', '.join(SCENARIO_KINDS)}"
            )
        if not isinstance(self.params, expected):
            raise ConfigurationError(
                f"scenario {self.name!r}: kind {self.kind!r} requires "
                f"{expected.__name__} params, got {type(self.params).__name__}"
            )

    def validate(self) -> None:
        """Check parts that only fail on construction of live objects."""
        self.channel.codec.build()
        if self.hierarchy is not None:
            for level in self.hierarchy.levels:
                from repro.replacement.registry import make_policy_factory

                make_policy_factory(level.policy)

    # -- serialisation --------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "kind": self.kind,
            "title": self.title,
            "paper_reference": self.paper_reference,
            "description": self.description,
            "hierarchy": None if self.hierarchy is None else self.hierarchy.to_dict(),
            "channel": self.channel.to_dict(),
            "params": self.params.to_dict(),
        }

    @classmethod
    def from_dict(cls, data) -> "ScenarioSpec":
        _check_fields(cls, data, "scenario")
        if "schema_version" not in data:
            raise ConfigurationError(
                "scenario spec is missing schema_version; refusing to guess"
            )
        kind = str(data.get("kind", ""))
        params_type = _PARAMS_TYPES.get(kind)
        if params_type is None:
            raise ConfigurationError(
                f"unknown scenario kind {kind!r}; valid: {', '.join(SCENARIO_KINDS)}"
            )
        hierarchy = data.get("hierarchy")
        return cls(
            name=str(data.get("name", "")),
            kind=kind,
            params=params_type.from_dict(data.get("params", {})),
            channel=ChannelSpec.from_dict(data.get("channel", {})),
            hierarchy=(
                None if hierarchy is None else HierarchyParams.from_dict(hierarchy)
            ),
            title=str(data.get("title", "")),
            paper_reference=str(data.get("paper_reference", "")),
            description=str(data.get("description", "")),
            schema_version=int(data["schema_version"]),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise; ``indent=None`` gives the canonical compact form."""
        if indent is None:
            return canonical_json(self.to_dict())
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"scenario spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)


def scenario_key(spec: ScenarioSpec) -> str:
    """Content address of a scenario spec (SHA-256 of canonical JSON)."""
    return canonical_digest(spec.to_dict(), require_version=True)
