"""Spec-driven closed-loop defense runs (detect → fuse → respond, live).

This is the execution engine behind the ``closed_loop_defense`` scenario
kind — the interactive form of the Section 7 stealth claim.  One co-run
per suspect:

* the suspect modulates the dirty-state channel on ``target_set`` —
  either the paper's WB discipline (one store per 1-symbol) or the LRU
  channel's continuous-modulation discipline (re-assert the symbol every
  ``modulation_interval`` cycles) driving the same dirty-state medium;
* a receiver thread decodes it with one replacement-set chase per
  period (:class:`~repro.channels.wb.receiver.WBReceiverProgram`), and
  doubles as the detectors' pacing clock — its ``replacement_set_size``
  loads per period advance the logical-access clock, so a detector
  window of ``replacement_set_size`` closes once per period;
* the configured detectors stream z-scores, the instant each window
  closes, into a :class:`~repro.orchestration.aggregator.FleetAggregator`
  (k-of-n fused decision), and on the fused alarm a
  :class:`~repro.orchestration.responder.DefenseResponder` flips the
  live hierarchy to the configured defense at that event boundary;
* channel capacity and BER are measured before vs. after the flip by
  splitting the decoded symbol stream at the flip boundary.

A :class:`~repro.telemetry.net.StreamPublisher` rides along on every
measurement co-run: cache events, detector scores, the fused alarm and
the defense flip all become id-stamped frames, so the run is observable
live over the service's SSE endpoints — and because ids are assigned in
publish order from the single engine thread, the final ``last_event_id``
and the flip frame's id are part of the replayable result.

The expected asymmetry (the paper's Table 6/7 story, closed-loop): the
continuously-modulating suspect trips the fused alarm and loses the
channel — post-flip capacity collapses — while the WB suspect completes
its whole payload without the fused alarm ever firing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.capacity import bit_sequences_capacity
from repro.common.bits import random_bits
from repro.common.errors import ConfigurationError
from repro.common.rng import derive_rng, derive_seed, ensure_rng
from repro.channels.encoding import BinaryDirtyCodec
from repro.channels.testbench import ChannelTestbench, TestbenchConfig
from repro.channels.threshold import ThresholdDecoder
from repro.channels.wb.receiver import WBReceiverProgram
from repro.cpu.ops import Load, ResetStats, SpinUntil, Store
from repro.cpu.thread import OpGenerator, Program
from repro.experiments.profiles import RunProfile
from repro.experiments.process_models import (
    InstrumentedBenignProcess,
    InstrumentedWBSender,
    make_activity,
)
from repro.mem.pointer_chase import PointerChaseList
from repro.mem.sets import build_replacement_set, build_set_conflicting_lines
from repro.orchestration.aggregator import FleetAggregator
from repro.orchestration.responder import DefenseResponder
from repro.scenario.spec import ClosedLoopParams, DetectorSpec, ScenarioSpec
from repro.telemetry.bus import TelemetryBus
from repro.telemetry.detectors import (
    Baseline,
    MissRateMonitor,
    WritebackBurstDetector,
    suggest_threshold,
)
from repro.telemetry.net import (
    StreamPublisher,
    active_publisher,
    publish_ambient,
)

SUSPECT_TID = 0
RECEIVER_TID = 1


@dataclass
class ModulatingDirtySender(Program):
    """The LRU channel's sender discipline on the dirty-state medium.

    "The LRU channel requires the sender to constantly modulate the
    transmitted bit within the encoding time Ts" — here the re-assertion
    is a *store* of the conflict line every ``modulation_interval``
    cycles, so the same dirty-state receiver decodes it.  Two deliberate
    departures from :class:`~repro.experiments.process_models
    .InstrumentedLRUSender` keep the decode grid intact:

    * **absolute pacing** — every wait targets
      ``start_time + index*period + offset``, so housekeeping overrun
      in a 1-period cannot drift the symbol grid away from the
      receiver's sampling grid;
    * **duty-cycled modulation** — re-assertion stops at ``duty`` of the
      period (the receiver's probe slot), so a 1-symbol's trailing
      stores cannot re-dirty the line after the probe and bleed into
      the next symbol's decode.

    The *detector-visible* signature is the point: hundreds of extra
    suspect-attributed accesses per 1-period plus a periodic writeback
    train, versus the WB sender's single store per 1-symbol.
    """

    activity: object
    line: int
    message: Sequence[int]
    period: int
    start_time: int
    duty: float = 0.5
    modulation_interval: int = 30

    def __post_init__(self) -> None:
        if self.modulation_interval <= 0:
            raise ConfigurationError("modulation_interval must be positive")
        if not 0.0 < self.duty <= 1.0:
            raise ConfigurationError(f"duty must be in (0, 1], got {self.duty}")

    def run(self) -> OpGenerator:
        yield Load(self.line)
        yield from self.activity.warmup()
        yield SpinUntil(self.start_time)
        yield ResetStats()
        steps = max(1, int(self.period * self.duty) // self.modulation_interval)
        for index, bit in enumerate(self.message):
            origin = self.start_time + index * self.period
            yield from self.activity.housekeeping()
            if bit:
                for step in range(1, steps + 1):
                    yield Store(self.line)
                    yield SpinUntil(origin + step * self.modulation_interval)
            yield SpinUntil(origin + self.period)


@dataclass(frozen=True)
class PhaseStats:
    """Channel quality over one phase (pre- or post-flip) of a run."""

    symbols: int
    errors: int
    ber: float
    capacity: float


@dataclass(frozen=True)
class SuspectOutcome:
    """One suspect's trip through the closed loop."""

    suspect: str
    #: Fusing clock reading, or ``None`` when the alarm never fired.
    alarm_time: Optional[int]
    alarm_sources: Tuple[str, ...]
    flip_time: Optional[int]
    #: Stream event id of the ``flip`` frame (pins the boundary on the wire).
    flip_event_id: Optional[int]
    #: Symbol index straddling the flip (dropped from both phases).
    boundary_symbol: Optional[int]
    pre: Optional[PhaseStats]
    post: Optional[PhaseStats]
    #: Whether the whole payload decoded error-free end to end.
    payload_intact: bool
    #: Final stream cursor — with ids assigned in publish order from the
    #: single engine thread, this is part of the replayable result.
    stream_events: int
    stream_dropped: int


@dataclass(frozen=True)
class ClosedLoopMeasurement:
    """Everything the shaping layer needs from one closed-loop run."""

    num_symbols: int
    detector_names: Tuple[str, ...]
    suspects: Tuple[str, ...]
    thresholds: Dict[str, float]
    defense: str
    fusion_rule: str
    outcomes: Dict[str, SuspectOutcome]
    series: Dict[str, List[float]]
    #: None when the suspect set lacks the wb/lru pair to compare.
    asymmetry_holds: Optional[bool]


def _build_detector(spec: DetectorSpec, baseline: Optional[Baseline] = None):
    if spec.kind == "miss_rate":
        return MissRateMonitor(
            window=spec.window,
            owner=SUSPECT_TID,
            clock_owner=RECEIVER_TID,
            baseline=baseline,
        )
    return WritebackBurstDetector(
        window=spec.window,
        segment=spec.segment,
        max_lag=spec.max_lag,
        owner=SUSPECT_TID,
        clock_owner=RECEIVER_TID,
        baseline=baseline,
    )


def _make_detectors(
    params: ClosedLoopParams,
    baselines: Optional[Dict[str, Baseline]] = None,
) -> Dict[str, object]:
    return {
        spec.name: _build_detector(
            spec, None if baselines is None else baselines.get(spec.name)
        )
        for spec in params.detectors
    }


@dataclass
class _CorunResult:
    receiver: WBReceiverProgram
    message: List[int]
    publisher: Optional[StreamPublisher]
    aggregator: Optional[FleetAggregator]
    responder: Optional[DefenseResponder]


def _run_corun(
    scenario: ScenarioSpec,
    suspect_kind: str,
    num_symbols: int,
    seed: int,
    detectors: Dict[str, object],
    thresholds: Optional[Dict[str, float]] = None,
    stream_hook: Optional[Callable[[str, StreamPublisher], None]] = None,
    message_override: Optional[List[int]] = None,
) -> _CorunResult:
    """One co-run: suspect + decoding receiver, detectors live on the bus.

    With ``thresholds`` given (the measurement phase) the full loop is
    wired: a fresh :class:`StreamPublisher` joins the bus, each
    detector's ``score_sink`` feeds a :class:`FleetAggregator` source,
    and an armed :class:`DefenseResponder` listens for the fused alarm.
    Calibration co-runs pass ``thresholds=None`` and run open-loop.
    """
    params: ClosedLoopParams = scenario.params
    hierarchy_params = scenario.hierarchy
    factory = (
        None
        if hierarchy_params is None
        else (lambda rng: hierarchy_params.build(rng=rng))
    )
    bench = ChannelTestbench(
        TestbenchConfig(seed=seed, hierarchy_factory=factory)
    )
    hierarchy = bench.hierarchy

    publisher: Optional[StreamPublisher] = None
    aggregator: Optional[FleetAggregator] = None
    responder: Optional[DefenseResponder] = None
    subscribers: List[object] = []
    if thresholds is not None:
        publisher = StreamPublisher(mirror=active_publisher())
        aggregator = FleetAggregator(
            k=params.fusion_k,
            window=params.fusion_window,
            min_hits=params.fusion_min_hits,
            warmup=params.fusion_warmup,
            publisher=publisher,
            source_label=suspect_kind,
        )
        for name, detector in detectors.items():
            aggregator.register_source(name, thresholds[name])
            detector.score_sink = aggregator.sink(name)
        responder = DefenseResponder(
            hierarchy,
            defense=params.defense,
            publisher=publisher,
            source_label=suspect_kind,
        ).arm()
        aggregator.on_alarm.append(responder.on_alarm)
        # Publisher first: the cache_event frame precedes any score /
        # alarm / flip frame the same access triggers in the detectors.
        subscribers.append(publisher)
        if stream_hook is not None:
            stream_hook(suspect_kind, publisher)
    subscribers.extend(detectors.values())

    bus = hierarchy.telemetry
    owned_bus = bus is None or not bus.enabled
    if owned_bus:
        bus = hierarchy.attach_telemetry(TelemetryBus())
    for subscriber in subscribers:
        bus.subscribe(subscriber)
    try:
        rng = ensure_rng(seed)
        message = random_bits(num_symbols, derive_rng(rng, "msg"))
        if message_override is not None:
            message = list(message_override)
        space = bench.new_space(pid=SUSPECT_TID)
        activity = make_activity(space, seed=seed)
        lines = build_set_conflicting_lines(
            space, bench.l1_layout, params.target_set, 1
        )
        if suspect_kind == "wb":
            suspect: Program = InstrumentedWBSender(
                activity=activity,
                lines=lines,
                schedule=BinaryDirtyCodec(d_on=1).encode_message(message),
                period=params.period,
                start_time=params.start_time,
            )
        elif suspect_kind == "lru":
            suspect = ModulatingDirtySender(
                activity=activity,
                line=lines[0],
                message=message,
                period=params.period,
                start_time=params.start_time,
                duty=params.receiver_phase,
            )
        elif suspect_kind == "benign":
            suspect = InstrumentedBenignProcess(
                activity=activity,
                periods=num_symbols,
                period=params.period,
                start_time=params.start_time,
            )
        else:
            raise ValueError(f"unknown suspect {suspect_kind!r}")

        receiver_space = bench.new_space(pid=RECEIVER_TID)
        set_rng = derive_rng(bench.rng, "replacement-sets")
        layout = bench.l1_layout
        chase_a = PointerChaseList.from_lines(
            build_replacement_set(
                receiver_space,
                layout,
                params.target_set,
                params.replacement_set_size,
                set_rng,
            ),
            rng=set_rng,
        )
        chase_b = PointerChaseList.from_lines(
            build_replacement_set(
                receiver_space,
                layout,
                params.target_set,
                params.replacement_set_size,
                set_rng,
            ),
            rng=set_rng,
        )
        receiver = WBReceiverProgram(
            chase_a=chase_a,
            chase_b=chase_b,
            period=params.period,
            start_time=params.start_time,
            num_samples=num_symbols,
            phase=params.receiver_phase,
        )
        bench.add_thread(
            SUSPECT_TID, space, suspect, name=f"{suspect_kind}-suspect"
        )
        bench.add_thread(RECEIVER_TID, receiver_space, receiver, name="receiver")
        bench.run()
    finally:
        for subscriber in subscribers:
            finish = getattr(subscriber, "finish", None)
            if finish is not None:
                finish()
            bus.unsubscribe(subscriber)
        if owned_bus:
            hierarchy.detach_telemetry()
    return _CorunResult(
        receiver=receiver,
        message=message,
        publisher=publisher,
        aggregator=aggregator,
        responder=responder,
    )


def _phase_stats(
    sent: Sequence[int], received: Sequence[int]
) -> Optional[PhaseStats]:
    if not sent:
        return None
    errors = sum(1 for s, r in zip(sent, received) if s != r)
    return PhaseStats(
        symbols=len(sent),
        errors=errors,
        ber=errors / len(sent),
        capacity=bit_sequences_capacity(list(sent), list(received)),
    )


def measure_closed_loop(
    scenario: ScenarioSpec,
    profile: RunProfile,
    seed: int,
    stream_hook: Optional[Callable[[str, StreamPublisher], None]] = None,
) -> ClosedLoopMeasurement:
    """Calibrate, then run the full detect→fuse→respond loop per suspect.

    ``stream_hook`` is called with ``(suspect, publisher)`` right before
    each measurement co-run starts — tests use it to attach, drop and
    resume stream clients mid-run and assert they cannot perturb the
    result.
    """
    params: ClosedLoopParams = scenario.params
    num_symbols = params.num_symbols.resolve(profile)
    names = tuple(spec.name for spec in params.detectors)

    # Phase 0 — pilot co-run for the receiver's decoder.  An idle-bench
    # calibration (:func:`~repro.channels.wb.calibration
    # .calibrate_decoder`) mis-thresholds here: the suspect's
    # whole-process traffic shifts the clean chase baseline by several
    # cycles.  So the parties train on a *pilot sequence* instead —
    # the same co-run topology, a known alternating bit pattern, and a
    # derived seed disjoint from calibration and measurement — exactly
    # the training preamble a real covert-channel pair would send.
    codec = BinaryDirtyCodec(d_on=1)
    repetitions = params.decoder_repetitions.resolve(profile)
    pilot_bits = [0, 1] * repetitions
    pilot = _run_corun(
        scenario,
        "wb",
        len(pilot_bits),
        derive_seed(ensure_rng(seed), "closed-loop/pilot"),
        {},
        message_override=pilot_bits,
    )
    samples_by_level: Dict[int, List[float]] = {}
    for bit, latency in zip(pilot_bits, pilot.receiver.latencies()):
        level = codec.encode_symbol([bit])
        samples_by_level.setdefault(level, []).append(float(latency))
    decoder = ThresholdDecoder.calibrate(samples_by_level)

    # Phase 1 — calibrate the detectors on a benign co-run (disjoint seed).
    calibration = _make_detectors(params)
    _run_corun(
        scenario,
        "benign",
        num_symbols,
        seed + params.calibration_seed_offset,
        calibration,
    )
    baselines = {
        name: Baseline.fit(detector.features)
        for name, detector in calibration.items()
    }
    thresholds = {
        name: suggest_threshold(
            baselines[name].score_all(detector.features),
            params.threshold_sigmas,
        )
        for name, detector in calibration.items()
    }

    # Phase 2 — close the loop around every suspect at the measurement seed.
    outcomes: Dict[str, SuspectOutcome] = {}
    series: Dict[str, List[float]] = {}
    fusion_rule = (
        f"{params.fusion_k}-of-{len(names)} sources with >= "
        f"{params.fusion_min_hits} over-threshold scores within "
        f"{params.fusion_window}"
    )
    for suspect in params.suspects:
        publish_ambient(
            "progress", {"stage": "closed_loop_suspect", "suspect": suspect}
        )
        detectors = _make_detectors(params, baselines)
        result = _run_corun(
            scenario,
            suspect,
            num_symbols,
            seed,
            detectors,
            thresholds=thresholds,
            stream_hook=stream_hook,
        )
        latencies = [float(value) for value in result.receiver.latencies()]
        decoded = codec.decode_message(decoder.classify_many(latencies))
        message = result.message

        aggregator = result.aggregator
        responder = result.responder
        alarm = aggregator.alarms[0] if aggregator.alarms else None
        flip_time = responder.flip_time
        boundary: Optional[int] = None
        if flip_time is None:
            pre = _phase_stats(message, decoded)
            post = None
        else:
            # The fusing clock reading c falls inside (or exactly at the
            # end of) symbol (c-1)//R's chase: that straddling symbol is
            # dropped, everything before it ran undefended, everything
            # after it ran defended.
            boundary = min(
                (flip_time - 1) // params.replacement_set_size,
                num_symbols - 1,
            )
            pre = _phase_stats(message[:boundary], decoded[:boundary])
            post = _phase_stats(message[boundary + 1 :], decoded[boundary + 1 :])
        snapshot = result.publisher.snapshot()
        outcomes[suspect] = SuspectOutcome(
            suspect=suspect,
            alarm_time=None if alarm is None else alarm.time,
            alarm_sources=() if alarm is None else alarm.sources,
            flip_time=flip_time,
            flip_event_id=responder.flip_event_id,
            boundary_symbol=boundary,
            pre=pre,
            post=post,
            payload_intact=decoded == list(message),
            stream_events=snapshot["last_event_id"],
            stream_dropped=snapshot["dropped_total"],
        )
        for name, detector in detectors.items():
            series[f"{name}_scores_{suspect}"] = list(detector.scores)
        series[f"latency_{suspect}"] = latencies

    asymmetry_holds: Optional[bool] = None
    if {"wb", "lru"} <= set(params.suspects):
        wb = outcomes["wb"]
        lru = outcomes["lru"]
        asymmetry_holds = (
            wb.alarm_time is None
            and wb.pre is not None
            and wb.pre.capacity > 0.0
            and lru.alarm_time is not None
            and lru.pre is not None
            and lru.post is not None
            and lru.pre.capacity > 0.0
            and lru.post.capacity * 10.0 <= lru.pre.capacity
        )
    return ClosedLoopMeasurement(
        num_symbols=num_symbols,
        detector_names=names,
        suspects=params.suspects,
        thresholds=thresholds,
        defense=params.defense,
        fusion_rule=fusion_rule,
        outcomes=outcomes,
        series=series,
        asymmetry_holds=asymmetry_holds,
    )
