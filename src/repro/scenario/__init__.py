"""Declarative scenarios: topology + programs + faults + detectors as data.

The spec layer (:mod:`repro.scenario.spec`) defines the canonicalisable
:class:`ScenarioSpec` tree; :mod:`repro.scenario.compile` turns a spec
plus ``(profile, seed)`` into executable measurements;
:mod:`repro.scenario.runner` wraps that in a generic
:class:`~repro.experiments.base.ExperimentResult`;
:mod:`repro.scenario.library` holds the canonical specs behind the
spec-backed registered experiments; :mod:`repro.scenario.zoo` loads and
validates the committed ``scenarios/`` directory.
"""

from repro.scenario.spec import (
    SCENARIO_KINDS,
    SCENARIO_SCHEMA_VERSION,
    Axis,
    BerSweepParams,
    ChannelSpec,
    CodecSpec,
    CoRunnerSpec,
    Counts,
    CrossCoreParams,
    DefenseEvalParams,
    DetectorSpec,
    FaultSweepParams,
    LevelCompareParams,
    OnlineDetectionParams,
    ReceiverSpec,
    ScenarioSpec,
    SenderSpec,
    TraceParams,
    scenario_key,
)
from repro.scenario.compile import CompiledScenario, compile_scenario
from repro.scenario.runner import (
    SCENARIO_ID_PREFIX,
    run_scenario,
    run_scenario_json,
    scenario_experiment_id,
)
from repro.scenario.library import (
    LIBRARY,
    available_library_specs,
    library_spec,
)
from repro.scenario.zoo import (
    VARIANTS,
    expand_campaign,
    load_zoo,
    verify_zoo,
    zoo_keys,
    zoo_specs,
)

__all__ = [
    "SCENARIO_ID_PREFIX",
    "SCENARIO_KINDS",
    "SCENARIO_SCHEMA_VERSION",
    "Axis",
    "BerSweepParams",
    "ChannelSpec",
    "CodecSpec",
    "CoRunnerSpec",
    "CompiledScenario",
    "Counts",
    "CrossCoreParams",
    "DefenseEvalParams",
    "DetectorSpec",
    "FaultSweepParams",
    "LevelCompareParams",
    "LIBRARY",
    "OnlineDetectionParams",
    "ReceiverSpec",
    "ScenarioSpec",
    "SenderSpec",
    "TraceParams",
    "VARIANTS",
    "available_library_specs",
    "compile_scenario",
    "expand_campaign",
    "library_spec",
    "load_zoo",
    "run_scenario",
    "run_scenario_json",
    "scenario_experiment_id",
    "scenario_key",
    "verify_zoo",
    "zoo_keys",
    "zoo_specs",
]
