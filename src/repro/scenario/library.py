"""Canonical scenario specs for the WB-channel experiment family.

Each function returns the :class:`~repro.scenario.spec.ScenarioSpec`
behind one registered experiment; the experiment modules compile these
specs and keep only their result shaping.  The committed ``scenarios/``
zoo serialises the same specs (plus variants) — a drift test keeps the
two in lockstep, and ``scenarios/KEYS.json`` pins their canonical hashes.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.common.errors import ConfigurationError
from repro.scenario.spec import (
    Axis,
    BerSweepParams,
    ChannelSpec,
    ClosedLoopParams,
    CodecSpec,
    Counts,
    CrossCoreParams,
    DefenseEvalParams,
    FaultSweepParams,
    LevelCompareParams,
    OnlineDetectionParams,
    ScenarioSpec,
    TraceParams,
)

#: The paper's Ts sweep, shared by Figures 6 and 8.
PAPER_PERIODS = (800, 1000, 1600, 2200, 5500, 11000)


def fig6_spec() -> ScenarioSpec:
    """Figure 6: binary-encoding BER vs rate, one curve per ``d``."""
    return ScenarioSpec(
        name="fig6",
        kind="wb_ber_sweep",
        title="Bit error rate vs transmission rate (binary symbols)",
        paper_reference="Figure 6",
        description=(
            "Sweep Ts over the paper's six periods for binary encodings "
            "d=1..8 (quick: d=1,4,8), one shared calibration per d."
        ),
        channel=ChannelSpec(codec=CodecSpec(kind="binary", d_on=1)),
        params=BerSweepParams(
            periods=PAPER_PERIODS,
            d_values=Axis(quick=(1, 4, 8), full=(1, 2, 3, 4, 5, 6, 7, 8)),
            messages=Counts(6, 90),
            message_bits=Counts(64, 128),
            calibration_repetitions=Counts(20, 60),
        ),
    )


def fig7_spec() -> ScenarioSpec:
    """Figure 7: the multi-bit receiver trace at Ts = 4000."""
    return ScenarioSpec(
        name="fig7",
        kind="wb_trace",
        title="Multi-bit receiver trace at 1100 Kbps (Ts = Tr = 4000)",
        paper_reference="Figure 7",
        description=(
            "One instrumented run of the 2-bit codec (d=0/3/5/8) capturing "
            "the receiver's latency trace and decoder thresholds."
        ),
        channel=ChannelSpec(codec=CodecSpec(kind="multibit")),
        params=TraceParams(
            period=4000,
            message_bits=Counts(64, 256),
            calibration_repetitions=Counts(20, 60),
        ),
    )


def fig8_spec() -> ScenarioSpec:
    """Figure 8: two-bit-symbol BER vs rate (the 4400 Kbps headline)."""
    return ScenarioSpec(
        name="fig8",
        kind="wb_ber_sweep",
        title="Bit error rate vs transmission rate (2-bit symbols, d=0/3/5/8)",
        paper_reference="Figure 8",
        description=(
            "The Figure 6 sweep with the paper's 2-bit codec: double the "
            "rate at every period, 4400 Kbps at Ts = 1000."
        ),
        channel=ChannelSpec(codec=CodecSpec(kind="multibit")),
        params=BerSweepParams(
            periods=PAPER_PERIODS,
            messages=Counts(6, 45),
            message_bits=Counts(64, 256),
            calibration_repetitions=Counts(20, 60),
        ),
    )


def extension_l2_spec() -> ScenarioSpec:
    """Section 3 extension: the channel deployed on L2 vs L1."""
    return ScenarioSpec(
        name="extension_l2",
        kind="wb_level_compare",
        title="WB channel deployed on L1 vs L2 (d=4, binary)",
        paper_reference="Section 3 (deployability on deeper cache levels)",
        description=(
            "Head-to-head L1 vs L2 deployment: achievable rate, BER and "
            "the sender's per-symbol operation count."
        ),
        channel=ChannelSpec(codec=CodecSpec(kind="binary", d_on=4)),
        params=LevelCompareParams(
            l1_periods=(5500, 11000),
            l2_periods=(22000, 44000),
            messages=Counts(4, 20),
            message_bits=Counts(48, 128),
            l1_calibration_repetitions=40,
        ),
    )


def fault_tolerance_spec() -> ScenarioSpec:
    """Robustness extension: raw vs hardened protocol under faults."""
    return ScenarioSpec(
        name="fault_tolerance",
        kind="wb_fault_sweep",
        title="WB channel fault tolerance: raw vs self-healing protocol",
        paper_reference="robustness extension (beyond the paper)",
        description=(
            "Sweep a fault-intensity multiplier (descheduling, drops, "
            "drift, co-runner bursts); compare the paper's raw Algorithm 3 "
            "against the framed + CRC + resync + adaptive stack."
        ),
        channel=ChannelSpec(codec=CodecSpec(kind="binary", d_on=1)),
        params=FaultSweepParams(
            period=5500,
            raw_message_bits=80,
            payload_bits=64,
            intensities=Axis(quick=(0.0, 1.0), full=(0.0, 0.5, 1.0, 2.0, 3.0)),
            runs_per_point=Counts(1, 3),
        ),
    )


def online_detection_spec() -> ScenarioSpec:
    """Section 7 stealth claim, held against live detectors."""
    return ScenarioSpec(
        name="online_detection",
        kind="online_detection",
        title="Online detection: WB vs LRU sender vs benign (Ts = 11000)",
        paper_reference="Section 7 (stealthiness), extended online",
        description=(
            "Calibrate a windowed counter monitor and a conflict-train "
            "autocorrelation detector on a benign co-run, then score the "
            "WB sender, the LRU-channel sender and a benign process at "
            "matched bandwidth."
        ),
        channel=ChannelSpec(codec=CodecSpec(kind="binary", d_on=1)),
        params=OnlineDetectionParams(
            period=11000,
            target_set=21,
            start_time=2_000_000,
            num_symbols=Counts(48, 192),
        ),
    )


def cross_core_wb_spec() -> ScenarioSpec:
    """Coherence extension: the WB channel across cores via MESI."""
    from repro.cache.configs import HierarchyParams

    return ScenarioSpec(
        name="cross_core_wb",
        kind="cross_core_wb",
        title="Cross-core WB channel over MESI downgrade write-backs",
        paper_reference="coherence extension (beyond the paper's SMT setting)",
        description=(
            "Sender on core 0 dirties shared lines; receiver on core 1 "
            "times loads whose latency reveals the M-to-S downgrade "
            "write-back.  Per-core miss-rate and write-back-burst "
            "detectors re-ask the Section 7 stealth question cross-core."
        ),
        channel=ChannelSpec(codec=CodecSpec(kind="binary", d_on=4)),
        hierarchy=HierarchyParams.xeon(cores=2),
        params=CrossCoreParams(
            period=9000,
            messages=Counts(1, 3),
            message_bits=Counts(24, 64),
            calibration_repetitions=Counts(12, 30),
        ),
    )


def closed_loop_defense_spec() -> ScenarioSpec:
    """Closed loop: live fusion over detector streams, defense on alarm."""
    return ScenarioSpec(
        name="closed_loop_defense",
        kind="closed_loop_defense",
        title="Closed-loop defense: fused detection flips the hierarchy live",
        paper_reference="Sections 7-8, closed into a live loop",
        description=(
            "Co-run each suspect with a decoding receiver while detector "
            "scores stream into a k-of-n fleet aggregator; the fused "
            "alarm flips the hierarchy to a defense mid-run.  The "
            "continuously-modulating sender trips the loop and loses the "
            "channel (capacity collapses at the flip boundary); the WB "
            "sender completes its payload without the alarm ever firing."
        ),
        channel=ChannelSpec(codec=CodecSpec(kind="binary", d_on=1)),
        params=ClosedLoopParams(
            period=11000,
            target_set=21,
            start_time=2_000_000,
            num_symbols=Counts(48, 192),
            # Wider margin than the offline detection experiments: the
            # live loop latches on the first fused alarm, so a single
            # chance spike in the WB sender's 192 full-scale windows
            # would flip the defense.  The modulating sender scores
            # ~180 sigma; 5 keeps the one-spike false-alarm out without
            # touching the true alarm.
            threshold_sigmas=5.0,
        ),
    )


def defenses_spec() -> ScenarioSpec:
    """Section 8: defense evaluation over a seed range."""
    return ScenarioSpec(
        name="defenses",
        kind="defense_eval",
        title="WB-channel mitigation strength and benign overhead per defense",
        paper_reference="Section 8",
        description=(
            "Evaluate every registered defense: naive and adaptive channel "
            "BER plus benign-workload overhead, averaged over seeds."
        ),
        params=DefenseEvalParams(num_seeds=Counts(2, 6)),
    )


#: Canonical spec constructors keyed by experiment id.
LIBRARY: Dict[str, Callable[[], ScenarioSpec]] = {
    "fig6": fig6_spec,
    "fig7": fig7_spec,
    "fig8": fig8_spec,
    "extension_l2": extension_l2_spec,
    "fault_tolerance": fault_tolerance_spec,
    "online_detection": online_detection_spec,
    "defenses": defenses_spec,
    "cross_core_wb": cross_core_wb_spec,
    "closed_loop_defense": closed_loop_defense_spec,
}


def available_library_specs() -> List[str]:
    """Experiment ids with a canonical library spec."""
    return list(LIBRARY)


def library_spec(experiment_id: str) -> ScenarioSpec:
    """The canonical spec behind one spec-backed experiment."""
    try:
        factory = LIBRARY[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"no library scenario for experiment {experiment_id!r}; "
            f"available: {', '.join(LIBRARY)}"
        )
    return factory()
