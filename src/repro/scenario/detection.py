"""Spec-driven online-detection runs (the Section 7 stealth claim, live).

This is the execution engine behind the ``online_detection`` scenario
kind: co-run one suspect (WB sender / LRU sender / benign process) with a
periodic set prober, stream cache events to the configured detectors,
calibrate on a benign run at a disjoint seed, then score every suspect at
the measurement seed.  The historic
:mod:`repro.experiments.online_detection` module delegates here; its
constants became the library spec's defaults
(:func:`repro.scenario.library.online_detection_spec`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.bits import random_bits
from repro.common.rng import derive_rng, ensure_rng
from repro.channels.encoding import BinaryDirtyCodec
from repro.channels.testbench import ChannelTestbench, TestbenchConfig
from repro.cpu.ops import Load, SpinUntil
from repro.cpu.thread import OpGenerator, Program
from repro.experiments.profiles import RunProfile
from repro.experiments.process_models import (
    InstrumentedBenignProcess,
    InstrumentedLRUSender,
    InstrumentedWBSender,
    make_activity,
)
from repro.mem.sets import build_set_conflicting_lines
from repro.scenario.spec import DetectorSpec, OnlineDetectionParams, ScenarioSpec
from repro.telemetry.bus import TelemetryBus
from repro.telemetry.detectors import (
    Baseline,
    MissRateMonitor,
    WritebackBurstDetector,
    detection_rate,
    suggest_threshold,
    threshold_sweep,
)

SUSPECT_TID = 0
PROBER_TID = 1


@dataclass
class PeriodicProber(Program):
    """Sweeps the target set at a fixed cycle cadence, start to finish.

    The cadence serves two detector needs at once: it contends the
    monitored set (so channel state changes surface as conflict events
    attributed to the suspect's victim lines) and, because it is paced
    in *cycles*, it anchors the logical-access clock to wall time.
    """

    lines: Sequence[int]
    interval: int
    end_time: int

    def run(self) -> OpGenerator:
        t = 0
        while t < self.end_time:
            for line in self.lines:
                yield Load(line)
            t = yield SpinUntil(t + self.interval)


@dataclass(frozen=True)
class OnlineDetectionMeasurement:
    """Everything the shaping layer needs from one detection run."""

    num_symbols: int
    detector_names: Tuple[str, ...]
    suspects: Tuple[str, ...]
    thresholds: Dict[str, float]
    rates: Dict[str, Dict[str, float]]
    series: Dict[str, List[float]]
    #: None when the suspect set lacks the wb/lru pair to compare.
    stealth_holds: Optional[bool]


def _build_detector(
    spec: DetectorSpec, baseline: Optional[Baseline] = None
):
    if spec.kind == "miss_rate":
        return MissRateMonitor(
            window=spec.window,
            owner=SUSPECT_TID,
            clock_owner=PROBER_TID,
            baseline=baseline,
        )
    return WritebackBurstDetector(
        window=spec.window,
        segment=spec.segment,
        max_lag=spec.max_lag,
        owner=SUSPECT_TID,
        clock_owner=PROBER_TID,
        baseline=baseline,
    )


def _make_detectors(
    params: OnlineDetectionParams,
    baselines: Optional[Dict[str, Baseline]] = None,
) -> Dict[str, object]:
    return {
        spec.name: _build_detector(
            spec, None if baselines is None else baselines.get(spec.name)
        )
        for spec in params.detectors
    }


def _run_corun(
    scenario: ScenarioSpec,
    channel: str,
    num_symbols: int,
    seed: int,
    subscribers: Sequence[object],
) -> None:
    """One co-run: suspect (wb/lru/benign) + prober, events to subscribers."""
    params: OnlineDetectionParams = scenario.params
    hierarchy_params = scenario.hierarchy
    factory = (
        None
        if hierarchy_params is None
        else (lambda rng: hierarchy_params.build(rng=rng))
    )
    bench = ChannelTestbench(
        TestbenchConfig(seed=seed, hierarchy_factory=factory)
    )
    hierarchy = bench.hierarchy
    bus = hierarchy.telemetry
    owned_bus = bus is None or not bus.enabled
    if owned_bus:
        bus = hierarchy.attach_telemetry(TelemetryBus())
    for subscriber in subscribers:
        bus.subscribe(subscriber)
    try:
        rng = ensure_rng(seed)
        message = random_bits(num_symbols, derive_rng(rng, "msg"))
        space = bench.new_space(pid=SUSPECT_TID)
        activity = make_activity(space, seed=seed)
        lines = build_set_conflicting_lines(
            space, bench.l1_layout, params.target_set, 1
        )
        if channel == "wb":
            suspect: Program = InstrumentedWBSender(
                activity=activity,
                lines=lines,
                schedule=BinaryDirtyCodec(d_on=1).encode_message(message),
                period=params.period,
                start_time=params.start_time,
            )
        elif channel == "lru":
            suspect = InstrumentedLRUSender(
                activity=activity,
                line=lines[0],
                message=message,
                period=params.period,
                start_time=params.start_time,
            )
        elif channel == "benign":
            suspect = InstrumentedBenignProcess(
                activity=activity,
                periods=num_symbols,
                period=params.period,
                start_time=params.start_time,
            )
        else:
            raise ValueError(f"unknown channel {channel!r}")
        prober_space = bench.new_space(pid=PROBER_TID)
        prober_lines = build_set_conflicting_lines(
            prober_space, bench.l1_layout, params.target_set, params.prober.lines
        )
        prober = PeriodicProber(
            lines=prober_lines,
            interval=params.period // params.prober.sweeps_per_period,
            end_time=params.start_time + num_symbols * params.period,
        )
        bench.add_thread(SUSPECT_TID, space, suspect, name=f"{channel}-suspect")
        bench.add_thread(PROBER_TID, prober_space, prober, name="prober")
        bench.run()
    finally:
        for subscriber in subscribers:
            finish = getattr(subscriber, "finish", None)
            if finish is not None:
                finish()
            bus.unsubscribe(subscriber)
        if owned_bus:
            hierarchy.detach_telemetry()


def _sweep_thresholds(all_scores: List[float], points: int) -> List[float]:
    top = max(all_scores) if all_scores else 1.0
    if top <= 0.0:
        top = 1.0
    return [top * index / (points - 1) for index in range(points)]


def measure_online_detection(
    scenario: ScenarioSpec, profile: RunProfile, seed: int
) -> OnlineDetectionMeasurement:
    """Calibrate on benign, score every suspect, sweep ROC thresholds."""
    params: OnlineDetectionParams = scenario.params
    num_symbols = params.num_symbols.resolve(profile)
    names = tuple(spec.name for spec in params.detectors)

    # Phase 1 — calibrate the detectors on a benign run (disjoint seed).
    calibration = _make_detectors(params)
    _run_corun(
        scenario,
        "benign",
        num_symbols,
        seed + params.calibration_seed_offset,
        list(calibration.values()),
    )
    baselines = {
        name: Baseline.fit(detector.features)
        for name, detector in calibration.items()
    }
    thresholds = {
        name: suggest_threshold(
            baselines[name].score_all(detector.features),
            params.threshold_sigmas,
        )
        for name, detector in calibration.items()
    }

    # Phase 2 — score every suspect at the measurement seed.
    scores: Dict[str, Dict[str, List[float]]] = {name: {} for name in names}
    for suspect in params.suspects:
        detectors = _make_detectors(params, baselines)
        _run_corun(scenario, suspect, num_symbols, seed, list(detectors.values()))
        for name, detector in detectors.items():
            scores[name][suspect] = detector.scores

    rates: Dict[str, Dict[str, float]] = {}
    series: Dict[str, List[float]] = {}
    for name in names:
        threshold = thresholds[name]
        rates[name] = {
            suspect: detection_rate(scores[name][suspect], threshold)
            for suspect in params.suspects
        }
        benign_scores = scores[name].get("benign", [])
        channel_scores = {
            suspect: scores[name][suspect]
            for suspect in params.suspects
            if suspect != "benign"
        }
        sweep = threshold_sweep(
            _sweep_thresholds(
                [s for suspect in scores[name].values() for s in suspect],
                params.roc_points,
            ),
            benign_scores,
            channel_scores,
        )
        series[f"{name}_roc_threshold"] = [r["threshold"] for r in sweep]
        series[f"{name}_roc_benign_fpr"] = [r["benign_fpr"] for r in sweep]
        for suspect in channel_scores:
            series[f"{name}_roc_{suspect}"] = [r[suspect] for r in sweep]
        for suspect in params.suspects:
            series[f"{name}_scores_{suspect}"] = list(scores[name][suspect])

    stealth_holds: Optional[bool] = None
    if {"wb", "lru"} <= set(params.suspects):
        stealth_holds = all(
            rates[name]["lru"] > rates[name]["wb"] for name in names
        )
    return OnlineDetectionMeasurement(
        num_symbols=num_symbols,
        detector_names=names,
        suspects=params.suspects,
        thresholds=thresholds,
        rates=rates,
        series=series,
        stealth_holds=stealth_holds,
    )
