"""Compile a :class:`~repro.scenario.spec.ScenarioSpec` into runnable form.

:func:`compile_scenario` resolves a spec against a
:class:`~repro.experiments.profiles.RunProfile` and seed and returns a
:class:`CompiledScenario` whose :meth:`~CompiledScenario.measure` executes
the scenario and returns a kind-specific measurement object.

Bit-identity contract
---------------------
The compiled runners replicate the historic experiment bodies' call
sequences *exactly* — same loop nesting, same derived seeds
(``seed * stride + index``), same decoder sharing — so the experiments
rebased onto this module produce byte-identical ``ExperimentResult`` JSON
(proved by the golden tests in ``tests/test_scenario_golden.py``).  When
changing a runner here, check those goldens before trusting the diff.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.units import cycles_to_kbps
from repro.experiments.profiles import ProfileLike, RunProfile, resolve_profile
from repro.telemetry.net import publish_ambient
from repro.scenario.spec import (
    BerSweepParams,
    ChannelSpec,
    DefenseEvalParams,
    FaultSweepParams,
    LevelCompareParams,
    OnlineDetectionParams,
    ScenarioSpec,
    TraceParams,
)


def _hierarchy_factory(spec: ScenarioSpec):
    """Factory for a custom hierarchy, or ``None`` for the default Xeon.

    Returning ``None`` keeps the testbench on its historic
    ``make_xeon_hierarchy`` path — bit-identical RNG consumption — while
    custom topologies ride the existing ``hierarchy_factory`` hook.
    """
    params = spec.hierarchy
    if params is None:
        return None
    return lambda rng: params.build(rng=rng)


def _wb_config(
    channel: ChannelSpec,
    codec,
    *,
    period_cycles: int,
    message_bits: int,
    seed: int,
    decoder=None,
    calibration_repetitions: int = 60,
    faults=None,
    hierarchy_factory=None,
):
    """A ``WBChannelConfig`` for one run of a spec-described channel."""
    from repro.channels.wb import WBChannelConfig

    return WBChannelConfig(
        codec=codec,
        period_cycles=period_cycles,
        message_bits=message_bits,
        target_set=channel.target_set,
        replacement_set_size=channel.replacement_set_size,
        receiver_phase=channel.receiver.phase,
        alignment_slack_symbols=channel.receiver.alignment_slack_symbols,
        start_time=channel.start_time,
        seed=seed,
        hierarchy_factory=hierarchy_factory,
        sender_ensure_resident=channel.sender.ensure_resident,
        calibration_repetitions=calibration_repetitions,
        decoder=decoder,
        faults=faults,
    )


# ----------------------------------------------------------------------
# Measurement shapes
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BerCurve:
    """Mean BER per period for one codec; ``d`` is None for non-binary."""

    d: Optional[int]
    curve: Dict[int, float]


@dataclass(frozen=True)
class BerSweepMeasurement:
    periods: Tuple[int, ...]
    d_values: Optional[Tuple[int, ...]]
    messages: int
    message_bits: int
    bits_per_symbol: int
    curves: Tuple[BerCurve, ...]

    def curve_for(self, d: Optional[int]) -> Dict[int, float]:
        for entry in self.curves:
            if entry.d == d:
                return entry.curve
        raise ConfigurationError(f"no curve measured for d={d!r}")


@dataclass(frozen=True)
class LevelPoint:
    """One (cache level, period) leg of a level-comparison run."""

    level: str
    period_cycles: int
    rate_kbps: float
    ber: float


@dataclass(frozen=True)
class LevelCompareMeasurement:
    messages: int
    message_bits: int
    points: Tuple[LevelPoint, ...]


@dataclass(frozen=True)
class FaultPoint:
    """Raw vs hardened protocol behaviour at one fault intensity."""

    intensity: float
    raw_ber: float
    intact_count: int
    runs: int
    mean_rounds: float
    mean_retransmissions: float
    mean_goodput_kbps: float
    rate_kbps: float


@dataclass(frozen=True)
class FaultSweepMeasurement:
    intensities: Tuple[float, ...]
    runs_per_point: int
    points: Tuple[FaultPoint, ...]
    demonstration: Optional[Dict[str, object]]


@dataclass(frozen=True)
class DefenseEvalMeasurement:
    seeds: Tuple[int, ...]
    reports: Tuple[object, ...]


# ----------------------------------------------------------------------
# Kind runners
# ----------------------------------------------------------------------

def _measure_wb_ber_sweep(
    spec: ScenarioSpec, profile: RunProfile, seed: int
) -> BerSweepMeasurement:
    from repro.channels.encoding import BinaryDirtyCodec
    from repro.channels.wb import calibrate_decoder, run_wb_channel

    params: BerSweepParams = spec.params
    channel = spec.channel
    factory = _hierarchy_factory(spec)
    messages = params.messages.resolve(profile)
    message_bits = params.message_bits.resolve(profile)
    calibration = params.calibration_repetitions.resolve(profile)

    if params.d_values is not None:
        d_values: Optional[Tuple[int, ...]] = tuple(
            int(d) for d in params.d_values.resolve(profile)
        )
        codecs = [(d, BinaryDirtyCodec(d_on=d)) for d in d_values]
    else:
        d_values = None
        codecs = [(None, channel.codec.build())]

    curves: List[BerCurve] = []
    for label, codec in codecs:
        decoder = calibrate_decoder(
            codec.levels,
            repetitions=calibration,
            replacement_set_size=channel.replacement_set_size,
            target_set=channel.target_set,
            seed=seed,
            hierarchy_factory=factory,
            ensure_resident=channel.sender.ensure_resident,
        )
        curve: Dict[int, float] = {}
        for period in params.periods:
            publish_ambient(
                "progress",
                {"stage": "sweep_point", "d": label, "period": period},
            )
            bers = [
                run_wb_channel(
                    _wb_config(
                        channel,
                        codec,
                        period_cycles=period,
                        message_bits=message_bits,
                        seed=seed * params.seed_stride + message,
                        decoder=decoder,
                        calibration_repetitions=calibration,
                        hierarchy_factory=factory,
                    )
                ).bit_error_rate
                for message in range(messages)
            ]
            curve[period] = statistics.fmean(bers)
        curves.append(BerCurve(d=label, curve=curve))

    return BerSweepMeasurement(
        periods=params.periods,
        d_values=d_values,
        messages=messages,
        message_bits=message_bits,
        bits_per_symbol=codecs[0][1].bits_per_symbol,
        curves=tuple(curves),
    )


def _measure_wb_trace(spec: ScenarioSpec, profile: RunProfile, seed: int):
    from repro.channels.wb import run_wb_channel

    params: TraceParams = spec.params
    config = _wb_config(
        spec.channel,
        spec.channel.codec.build(),
        period_cycles=params.period,
        message_bits=params.message_bits.resolve(profile),
        seed=seed,
        calibration_repetitions=params.calibration_repetitions.resolve(profile),
        hierarchy_factory=_hierarchy_factory(spec),
    )
    return run_wb_channel(config)


def _measure_wb_level_compare(
    spec: ScenarioSpec, profile: RunProfile, seed: int
) -> LevelCompareMeasurement:
    from repro.channels.wb import calibrate_decoder, run_wb_channel
    from repro.channels.wb.l2 import L2WBChannelConfig, run_l2_wb_channel

    params: LevelCompareParams = spec.params
    channel = spec.channel
    codec = channel.codec.build()
    messages = params.messages.resolve(profile)
    message_bits = params.message_bits.resolve(profile)

    points: List[LevelPoint] = []

    l1_decoder = calibrate_decoder(
        codec.levels, repetitions=params.l1_calibration_repetitions, seed=seed
    )
    for period in params.l1_periods:
        bers = [
            run_wb_channel(
                _wb_config(
                    channel,
                    codec,
                    period_cycles=period,
                    message_bits=message_bits,
                    seed=seed * params.seed_stride + m,
                    decoder=l1_decoder,
                )
            ).bit_error_rate
            for m in range(messages)
        ]
        points.append(
            LevelPoint(
                level="L1",
                period_cycles=period,
                rate_kbps=cycles_to_kbps(period, codec.bits_per_symbol),
                ber=statistics.fmean(bers),
            )
        )

    # The L2 legs reuse the decoder calibrated on the first leg's first
    # run — including *across periods*, exactly as the historic
    # experiment did (the 44000-cycle leg decodes with the 22000-cycle
    # calibration, which is fine: thresholds depend on latency bands,
    # not the period).
    l2_decoder = None
    for period in params.l2_periods:
        first = run_l2_wb_channel(
            L2WBChannelConfig(
                codec=codec,
                period_cycles=period,
                message_bits=message_bits,
                seed=seed,
                decoder=l2_decoder,
            )
        )
        l2_decoder = first.decoder
        bers = [first.bit_error_rate] + [
            run_l2_wb_channel(
                L2WBChannelConfig(
                    codec=codec,
                    period_cycles=period,
                    message_bits=message_bits,
                    seed=seed * params.seed_stride + m,
                    decoder=l2_decoder,
                )
            ).bit_error_rate
            for m in range(1, messages)
        ]
        points.append(
            LevelPoint(
                level="L2",
                period_cycles=period,
                rate_kbps=first.rate_kbps,
                ber=statistics.fmean(bers),
            )
        )

    return LevelCompareMeasurement(
        messages=messages, message_bits=message_bits, points=tuple(points)
    )


def _measure_wb_fault_sweep(
    spec: ScenarioSpec, profile: RunProfile, seed: int
) -> FaultSweepMeasurement:
    from repro.channels.wb import run_robust_wb_channel, run_wb_channel

    params: FaultSweepParams = spec.params
    channel = spec.channel
    intensities = tuple(float(i) for i in params.intensities.resolve(profile))
    runs_per_point = params.runs_per_point.resolve(profile)

    points: List[FaultPoint] = []
    demonstration: Optional[Dict[str, object]] = None
    for intensity in intensities:
        fault_spec = params.fault.scaled(intensity)
        raw_bers: List[float] = []
        intact_count = 0
        rounds: List[int] = []
        retransmissions: List[int] = []
        goodputs: List[float] = []
        rate_kbps = 0.0
        for index in range(runs_per_point):
            run_seed = seed * params.seed_stride + index
            raw_config = _wb_config(
                channel,
                channel.codec.build(),
                period_cycles=params.period,
                message_bits=params.raw_message_bits,
                seed=run_seed,
                faults=fault_spec if intensity else None,
                hierarchy_factory=_hierarchy_factory(spec),
            )
            raw = run_wb_channel(raw_config)
            raw_bers.append(raw.bit_error_rate)
            hardened = run_robust_wb_channel(
                replace(raw_config, message_bits=params.payload_bits)
            )
            intact_count += int(hardened.payload_intact)
            rounds.append(hardened.rounds_used)
            retransmissions.append(hardened.retransmissions)
            goodputs.append(hardened.goodput_kbps)
            rate_kbps = hardened.rate_kbps
        raw_ber = statistics.fmean(raw_bers)
        goodput = statistics.fmean(goodputs)
        all_intact = intact_count == runs_per_point
        points.append(
            FaultPoint(
                intensity=intensity,
                raw_ber=raw_ber,
                intact_count=intact_count,
                runs=runs_per_point,
                mean_rounds=statistics.fmean(rounds),
                mean_retransmissions=statistics.fmean(retransmissions),
                mean_goodput_kbps=goodput,
                rate_kbps=rate_kbps,
            )
        )
        if (
            demonstration is None
            and raw_ber > params.collapse_threshold
            and all_intact
        ):
            demonstration = {
                "intensity": intensity,
                "raw_ber": raw_ber,
                "payload_intact": True,
                "goodput_kbps": goodput,
                "rate_kbps": rate_kbps,
            }

    return FaultSweepMeasurement(
        intensities=intensities,
        runs_per_point=runs_per_point,
        points=tuple(points),
        demonstration=demonstration,
    )


def _measure_online_detection(spec: ScenarioSpec, profile: RunProfile, seed: int):
    from repro.scenario.detection import measure_online_detection

    return measure_online_detection(spec, profile, seed)


def _measure_cross_core_wb(spec: ScenarioSpec, profile: RunProfile, seed: int):
    from repro.scenario.cross_core import measure_cross_core

    return measure_cross_core(spec, profile, seed)


def _measure_closed_loop_defense(spec: ScenarioSpec, profile: RunProfile, seed: int):
    from repro.scenario.closed_loop import measure_closed_loop

    return measure_closed_loop(spec, profile, seed)


def _measure_defense_eval(
    spec: ScenarioSpec, profile: RunProfile, seed: int
) -> DefenseEvalMeasurement:
    from repro.defenses.evaluation import evaluate_all

    params: DefenseEvalParams = spec.params
    seeds = range(seed, seed + params.num_seeds.resolve(profile))
    reports = evaluate_all(seeds=seeds)
    if params.defenses is not None:
        wanted = set(params.defenses)
        known = {report.name for report in reports}
        missing = wanted - known
        if missing:
            raise ConfigurationError(
                f"unknown defense(s) in scenario: {', '.join(sorted(missing))}; "
                f"available: {', '.join(sorted(known))}"
            )
        reports = [report for report in reports if report.name in wanted]
    return DefenseEvalMeasurement(seeds=tuple(seeds), reports=tuple(reports))


_RUNNERS: Dict[str, Callable] = {
    "wb_ber_sweep": _measure_wb_ber_sweep,
    "wb_trace": _measure_wb_trace,
    "wb_level_compare": _measure_wb_level_compare,
    "wb_fault_sweep": _measure_wb_fault_sweep,
    "online_detection": _measure_online_detection,
    "defense_eval": _measure_defense_eval,
    "cross_core_wb": _measure_cross_core_wb,
    "closed_loop_defense": _measure_closed_loop_defense,
}


@dataclass(frozen=True)
class CompiledScenario:
    """A spec resolved against a profile and seed, ready to execute."""

    spec: ScenarioSpec
    profile: RunProfile
    seed: int

    def measure(self):
        """Execute the scenario; returns the kind-specific measurement."""
        runner = _RUNNERS[self.spec.kind]
        return runner(self.spec, self.profile, self.seed)


def compile_scenario(
    spec: ScenarioSpec, profile: ProfileLike = None, seed: int = 0
) -> CompiledScenario:
    """Resolve ``spec`` against ``profile``/``seed``.

    Validation that needs live objects (codec construction, replacement
    policy lookup) happens here, so malformed specs fail before any
    simulation work starts.
    """
    spec.validate()
    return CompiledScenario(spec=spec, profile=resolve_profile(profile), seed=seed)
