"""Spec-driven cross-core WB channel runs (coherence layer, end to end).

Execution engine behind the ``cross_core_wb`` scenario kind: transmit
messages between two cores of a :class:`~repro.coherence.CoherentHierarchy`
over MESI downgrade write-backs, with the Section 7 online detectors
attached **per core** — re-asking the stealth question in the cross-core
setting.  Calibration mirrors :mod:`repro.scenario.detection`: detector
baselines are fit on a two-core benign co-run at a disjoint seed, then
armed detectors score the live channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.channels.testbench import ChannelTestbench, TestbenchConfig
from repro.channels.wb.cross_core import (
    RECEIVER_TID,
    SENDER_TID,
    CrossCoreWBChannelConfig,
    run_cross_core_wb_channel,
)
from repro.experiments.profiles import RunProfile
from repro.scenario.spec import CrossCoreParams, DetectorSpec, ScenarioSpec
from repro.telemetry.bus import TelemetryBus
from repro.telemetry.detectors import (
    Baseline,
    MissRateMonitor,
    WritebackBurstDetector,
    detection_rate,
    suggest_threshold,
)


@dataclass(frozen=True)
class CrossCoreMeasurement:
    """Everything the shaping layer needs from one cross-core run."""

    cores: int
    message_bits: int
    messages: int
    rate_kbps: float
    ber_values: Tuple[float, ...]
    mean_ber: float
    all_payloads_intact: bool
    #: Protocol counters summed over the payload transmissions.
    coherence: Dict[str, int]
    #: Per-core detector instances, e.g. ``monitor_core0``.
    detector_names: Tuple[str, ...]
    thresholds: Dict[str, float]
    #: Mean alarm rate of each detector over the transmissions.
    alarm_rates: Dict[str, float]
    #: True when no miss-rate monitor out-alarms the write-back burst
    #: detectors — the Section 7 conclusion, restated cross-core: the
    #: channel's miss footprint is not the productive tell, its
    #: coherence write-backs are.  ``None`` without both detector kinds.
    stealth_holds: Optional[bool]
    series: Dict[str, List[float]]


def _build_detector(spec: DetectorSpec, core: int, baseline: Optional[Baseline] = None):
    """One detector instance watching ``core``'s cache events.

    The receiver's paced probes anchor the logical clock, like the
    prober does in the single-core scenarios; the receiver core's own
    detector is clocked by the sender instead (a detector cannot clock
    itself off the thread it watches).
    """
    clock_owner = RECEIVER_TID if core != RECEIVER_TID else SENDER_TID
    if spec.kind == "miss_rate":
        return MissRateMonitor(
            window=spec.window,
            owner=core,
            clock_owner=clock_owner,
            baseline=baseline,
        )
    return WritebackBurstDetector(
        window=spec.window,
        segment=spec.segment,
        max_lag=spec.max_lag,
        owner=core,
        clock_owner=clock_owner,
        baseline=baseline,
    )


def _detector_grid(
    params: CrossCoreParams, cores: int
) -> List[Tuple[str, DetectorSpec, int]]:
    """The (name, spec, core) product: one instance per detector per core."""
    return [
        (f"{spec.name}_core{core}", spec, core)
        for spec in params.detectors
        for core in range(cores)
    ]


def _resolve_topology(scenario: ScenarioSpec):
    hierarchy = scenario.hierarchy
    if hierarchy is None or hierarchy.cores < 2:
        raise ConfigurationError(
            f"scenario {scenario.name!r}: cross_core_wb needs a hierarchy "
            "with cores >= 2 "
            f"(got {'default single-core' if hierarchy is None else hierarchy.cores})"
        )
    return hierarchy


def _run_benign_corun(
    scenario: ScenarioSpec,
    periods: int,
    seed: int,
    subscribers: Sequence[object],
) -> None:
    """Benign processes on both cores, events streamed to ``subscribers``."""
    from repro.experiments.process_models import (
        InstrumentedBenignProcess,
        make_activity,
    )

    params: CrossCoreParams = scenario.params
    hierarchy_params = _resolve_topology(scenario)
    bench = ChannelTestbench(
        TestbenchConfig(
            seed=seed,
            hierarchy_factory=lambda rng: hierarchy_params.build(rng=rng),
        )
    )
    hierarchy = bench.hierarchy
    bus = hierarchy.telemetry
    owned_bus = bus is None or not bus.enabled
    if owned_bus:
        bus = hierarchy.attach_telemetry(TelemetryBus())
    for subscriber in subscribers:
        bus.subscribe(subscriber)
    try:
        for tid in (SENDER_TID, RECEIVER_TID):
            space = bench.new_space(pid=tid)
            program = InstrumentedBenignProcess(
                activity=make_activity(space, seed=seed + tid),
                periods=periods,
                period=params.period,
                start_time=scenario.channel.start_time,
            )
            bench.add_thread(tid, space, program, name=f"benign-core{tid}")
        bench.run()
    finally:
        for subscriber in subscribers:
            finish = getattr(subscriber, "finish", None)
            if finish is not None:
                finish()
            bus.unsubscribe(subscriber)
        if owned_bus:
            hierarchy.detach_telemetry()


def measure_cross_core(
    scenario: ScenarioSpec, profile: RunProfile, seed: int
) -> CrossCoreMeasurement:
    """Calibrate per-core detectors on benign, then transmit under watch."""
    params: CrossCoreParams = scenario.params
    hierarchy = _resolve_topology(scenario)
    cores = hierarchy.cores
    message_bits = params.message_bits.resolve(profile)
    messages = params.messages.resolve(profile)
    calibration_reps = params.calibration_repetitions.resolve(profile)
    grid = _detector_grid(params, cores)
    names = tuple(name for name, _, _ in grid)

    # Phase 1 — fit baselines on a two-core benign co-run (disjoint seed).
    calibration = {
        name: _build_detector(spec, core) for name, spec, core in grid
    }
    _run_benign_corun(
        scenario,
        params.benign_periods.resolve(profile),
        seed + params.calibration_seed_offset,
        list(calibration.values()),
    )
    baselines = {
        name: Baseline.fit(detector.features)
        for name, detector in calibration.items()
    }
    thresholds = {
        name: suggest_threshold(
            baselines[name].score_all(detector.features),
            params.threshold_sigmas,
        )
        for name, detector in calibration.items()
    }

    # Phase 2 — transmit messages with armed detectors on every core.
    ber_values: List[float] = []
    all_intact = True
    rate_kbps = 0.0
    coherence_total: Dict[str, int] = {}
    alarm_sums = {name: 0.0 for name in names}
    series: Dict[str, List[float]] = {"ber": ber_values}
    for index in range(messages):
        config = CrossCoreWBChannelConfig(
            codec=scenario.channel.codec.build(),
            period_cycles=params.period,
            message_bits=message_bits,
            target_set=scenario.channel.target_set,
            receiver_phase=scenario.channel.receiver.phase,
            alignment_slack_symbols=scenario.channel.receiver.alignment_slack_symbols,
            start_time=scenario.channel.start_time,
            seed=seed * params.seed_stride + index,
            hierarchy=hierarchy,
            calibration_repetitions=calibration_reps,
        )
        detectors = {
            name: _build_detector(spec, core, baselines[name])
            for name, spec, core in grid
        }
        coherence: Dict[str, int] = {}
        result = run_cross_core_wb_channel(
            config,
            subscribers=list(detectors.values()),
            coherence_out=coherence,
        )
        ber_values.append(result.bit_error_rate)
        all_intact = all_intact and result.payload_intact
        rate_kbps = result.rate_kbps
        for key, value in coherence.items():
            coherence_total[key] = coherence_total.get(key, 0) + value
        for name, detector in detectors.items():
            alarm_sums[name] += detection_rate(detector.scores, thresholds[name])
            if index == 0:
                series[f"scores_{name}"] = list(detector.scores)

    alarm_rates = {name: alarm_sums[name] / messages for name in names}
    miss_rates = [
        alarm_rates[name] for name, spec, _ in grid if spec.kind == "miss_rate"
    ]
    burst_rates = [
        alarm_rates[name]
        for name, spec, _ in grid
        if spec.kind == "writeback_burst"
    ]
    stealth_holds: Optional[bool] = None
    if miss_rates and burst_rates:
        stealth_holds = max(miss_rates) <= max(burst_rates)

    return CrossCoreMeasurement(
        cores=cores,
        message_bits=message_bits,
        messages=messages,
        rate_kbps=rate_kbps,
        ber_values=tuple(ber_values),
        mean_ber=sum(ber_values) / len(ber_values) if ber_values else 0.0,
        all_payloads_intact=all_intact,
        coherence=coherence_total,
        detector_names=names,
        thresholds=thresholds,
        alarm_rates=alarm_rates,
        stealth_holds=stealth_holds,
        series=series,
    )
