"""Write-through L1: the structural fix (Section 8).

With a write-through L1 every store is propagated downward immediately,
no L1 line is ever dirty, and replacing any victim costs the same —
the WB channel's signal does not exist.  The price is the store-path
bandwidth/latency the paper cites as the reason commercial cores keep
write-back caches.

This module is just a configuration recipe; the mechanics live in the
core cache model (:class:`~repro.cache.cache.WritePolicy`).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.cache.cache import AllocationPolicy, WritePolicy
from repro.cache.configs import XeonE5_2650Config, make_xeon_hierarchy
from repro.cache.hierarchy import CacheHierarchy


def make_write_through_hierarchy(
    config: Optional[XeonE5_2650Config] = None,
    rng: Optional[random.Random] = None,
) -> CacheHierarchy:
    """Xeon-like hierarchy with a write-through, no-write-allocate L1.

    Write-through caches conventionally pair with no-write-allocate
    (Section 2.2 of the paper), and the combination is what real
    write-through L1s (e.g. several AMD designs) shipped.
    """
    overrides = {
        "l1_write_policy": WritePolicy.WRITE_THROUGH,
        "l1_allocation_policy": AllocationPolicy.NO_WRITE_ALLOCATE,
    }
    if config is not None:
        from repro.cache.configs import dataclass_replace

        config = dataclass_replace(config, **overrides)
        return make_xeon_hierarchy(config=config, rng=rng)
    return make_xeon_hierarchy(rng=rng, **overrides)
