"""Randomized set-index mapping (CEASER-style keyed indexing).

The address-to-set mapping is permuted under a secret key, so an attacker
building a replacement set from virtual-address strides no longer gets
lines that collide in one set — the naive WB receiver's measurement loses
its meaning.  Optional epoch-based re-keying models CEASER's remapping.

The paper's caveats (Section 8), which the evaluation demonstrates:

* with a *fixed* key the attacker can recover a conflicting set by
  profiling (our :func:`find_conflicting_lines` does this with timing
  only, the way real eviction-set construction works);
* L1 randomization like this costs latency on the critical path in real
  designs — the model charges ``index_latency_extra`` per access.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_rng, ensure_rng
from repro.cache.cache import Cache
from repro.cache.configs import XeonE5_2650Config
from repro.cache.hierarchy import CacheHierarchy
from repro.replacement.registry import make_policy_factory


def _feistel_round(value: int, key: int, bits: int) -> int:
    """One round of a tiny Feistel permutation over ``bits`` bits."""
    half = bits // 2
    mask = (1 << half) - 1
    left = value >> half
    right = value & mask
    mixed = (right * 0x9E37 + key) & 0xFFFF
    mixed ^= mixed >> 7
    new_left = right
    new_right = left ^ (mixed & mask)
    return (new_left << half) | new_right


class RandomizedMappingCache(Cache):
    """Cache whose set index is a keyed permutation of (tag, index) bits.

    The permutation input is the line address's low bits (index plus a few
    tag bits), so two addresses with equal classic index generally land in
    different sets — breaking stride-built eviction sets.
    """

    def __init__(
        self,
        *args,
        key: int = 0x5A17,
        rekey_period_accesses: int = 0,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if self.num_sets & (self.num_sets - 1):
            raise ConfigurationError("randomized mapping needs power-of-two sets")
        self.key = key
        #: Accesses between re-keyings; 0 disables re-keying.
        self.rekey_period_accesses = rekey_period_accesses
        self._accesses_since_rekey = 0
        self._rekey_rng = random.Random(key)
        #: How many times the mapping was re-keyed (epoch counter).
        self.rekey_count = 0

    def tag_of(self, address: int) -> int:
        # Full line-address tag: under a permuted index the classic
        # (tag, index) split is no longer injective — two lines of one
        # page could alias within a permuted set.
        return address >> self.layout.offset_bits

    def _address_of(self, tag: int, set_index: int) -> int:
        # The full-width tag already contains the whole line address.
        del set_index
        return tag << self.layout.offset_bits

    def set_index(self, address: int) -> int:
        self._maybe_rekey()
        index_bits = self.layout.index_bits
        # Mix the classic index with low tag bits through the keyed
        # permutation; modulo back into the set range.
        raw = (address >> self.layout.offset_bits) & ((1 << (index_bits + 6)) - 1)
        permuted = raw
        for round_key in (self.key, self.key ^ 0x3C3C, (self.key >> 3) | 1):
            permuted = _feistel_round(permuted, round_key, index_bits + 6)
        return permuted & (self.num_sets - 1)

    def _maybe_rekey(self) -> None:
        if self.rekey_period_accesses <= 0:
            return
        self._accesses_since_rekey += 1
        if self._accesses_since_rekey >= self.rekey_period_accesses:
            # Re-keying flushes the cache in real designs; model the same.
            # invalidate_all keeps the per-set tag index and dirty/valid
            # counters in sync (direct line mutation would desync them).
            for cache_set in self.sets:
                cache_set.invalidate_all()
            self.key = self._rekey_rng.randrange(1, 1 << 16)
            self._accesses_since_rekey = 0
            self.rekey_count += 1


def find_eviction_set(
    hierarchy: CacheHierarchy,
    space,
    probe_line: int,
    candidates: List[int],
    owner: Optional[int] = None,
    miss_threshold: float = 8.0,
) -> List[int]:
    """Timing-only eviction-set construction against a fixed key.

    Group-testing reduction (the standard eviction-set algorithm): start
    from a candidate pool that evicts ``probe_line``, then repeatedly drop
    chunks that are not needed for the eviction, converging to a small
    conflicting set.  This is the profiling attack the paper says defeats
    *fixed* randomized mappings — it never inspects the key, only load
    timings.
    """

    def _traverse(group: List[int]) -> bool:
        hierarchy.load(space.translate(probe_line), owner=owner)
        for _ in range(2):
            for line in group:
                hierarchy.load(space.translate(line), owner=owner)
        latency = hierarchy.load(space.translate(probe_line), owner=owner).latency
        return latency > miss_threshold

    def evicts(group: List[int]) -> bool:
        # Self-priming oracle: the first traversal normalises the cache to
        # "group lines + probe only" (evicting stale lines left by earlier
        # trials, whose extra pressure would otherwise fake evictions);
        # the second traversal measures the group's own conflict capacity.
        _traverse(group)
        return _traverse(group)

    group = list(candidates)
    if not evicts(group):
        return []
    associativity = hierarchy.l1.associativity
    changed = True
    while changed and len(group) > associativity:
        changed = False
        chunk = max(1, len(group) // (associativity + 1))
        index = 0
        while index < len(group) and len(group) > associativity:
            trial = group[:index] + group[index + chunk :]
            if trial and evicts(trial):
                group = trial
                changed = True
            else:
                index += chunk
    return group


def make_randomized_mapping_hierarchy(
    key: int = 0x5A17,
    rekey_period_accesses: int = 0,
    config: Optional[XeonE5_2650Config] = None,
    rng: Optional[random.Random] = None,
) -> CacheHierarchy:
    """Xeon-like hierarchy with a randomized-mapping L1.

    The keyed index computation sits on the L1 critical path; the paper
    notes this "has a great performance loss when used in the L1 cache",
    which the model charges as +2 cycles on every L1 hit.
    """
    import dataclasses

    if config is None:
        config = XeonE5_2650Config()
    config = dataclasses.replace(
        config,
        latency=dataclasses.replace(
            config.latency,
            l1_hit=config.latency.l1_hit + 2,
            l2_hit=config.latency.l2_hit + 2,
        ),
    )
    master = ensure_rng(rng)
    l1 = RandomizedMappingCache(
        "L1D-randomized",
        config.l1_size,
        config.l1_ways,
        config.line_size,
        make_policy_factory(config.l1_policy),
        write_policy=config.l1_write_policy,
        allocation_policy=config.l1_allocation_policy,
        rng=derive_rng(master, "l1"),
        key=key,
        rekey_period_accesses=rekey_period_accesses,
    )
    l2 = Cache(
        "L2",
        config.l2_size,
        config.l2_ways,
        config.line_size,
        make_policy_factory(config.l2_policy),
        rng=derive_rng(master, "l2"),
    )
    llc = Cache(
        "LLC",
        config.llc_size,
        config.llc_ways,
        config.line_size,
        make_policy_factory(config.llc_policy),
        rng=derive_rng(master, "llc"),
    )
    return CacheHierarchy(
        levels=[l1, l2, llc],
        latency=config.latency,
        rng=derive_rng(master, "hierarchy"),
    )
