"""Static way partitioning (Nomo / DAWG-style eviction isolation).

Each hardware thread owns a disjoint subset of the ways of every set and
its fills may only evict within that subset.  The receiver therefore can
never replace the sender's dirty lines, which removes the WB channel's
signal (Section 8: "DAWG ... also mitigates WB channels").  The cost is
the classic one: every thread effectively runs with a smaller cache.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_rng, ensure_rng
from repro.cache.cache import Cache
from repro.cache.configs import XeonE5_2650Config
from repro.cache.hierarchy import CacheHierarchy
from repro.replacement.registry import make_policy_factory


class WayPartitionedCache(Cache):
    """A cache with a static owner → allowed-ways mask.

    ``partitions`` maps each hardware-thread id to the tuple of way
    indices it may allocate into.  Owners absent from the map (and
    hierarchy-internal traffic with ``owner=None``) fall back to
    ``default_ways``, which defaults to all ways — matching Nomo's
    "unassigned ways are shared" behaviour.
    """

    def __init__(
        self,
        *args,
        partitions: Optional[Dict[int, Sequence[int]]] = None,
        default_ways: Optional[Sequence[int]] = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.partitions: Dict[int, Tuple[int, ...]] = {}
        for owner, ways in (partitions or {}).items():
            ways_tuple = tuple(sorted(set(ways)))
            if not ways_tuple:
                raise ConfigurationError(f"owner {owner} has an empty partition")
            if any(not 0 <= way < self.associativity for way in ways_tuple):
                raise ConfigurationError(
                    f"owner {owner} partition {ways_tuple} exceeds "
                    f"associativity {self.associativity}"
                )
            self.partitions[owner] = ways_tuple
        self.default_ways: Optional[Tuple[int, ...]] = (
            tuple(sorted(set(default_ways))) if default_ways is not None else None
        )

    def allowed_ways(self, owner: Optional[int]) -> Optional[Sequence[int]]:
        if owner is not None and owner in self.partitions:
            return self.partitions[owner]
        return self.default_ways


def split_ways_evenly(associativity: int, num_threads: int) -> Dict[int, Tuple[int, ...]]:
    """Contiguous even split of ways across thread ids 0..num_threads-1.

    >>> split_ways_evenly(8, 2)
    {0: (0, 1, 2, 3), 1: (4, 5, 6, 7)}
    """
    if num_threads <= 0:
        raise ConfigurationError("num_threads must be positive")
    if associativity % num_threads:
        raise ConfigurationError(
            f"{associativity} ways do not split evenly over {num_threads} threads"
        )
    per_thread = associativity // num_threads
    return {
        tid: tuple(range(tid * per_thread, (tid + 1) * per_thread))
        for tid in range(num_threads)
    }


def make_partitioned_hierarchy(
    num_threads: int = 2,
    config: Optional[XeonE5_2650Config] = None,
    rng: Optional[random.Random] = None,
) -> CacheHierarchy:
    """Xeon-like hierarchy with a way-partitioned L1 (even split)."""
    if config is None:
        config = XeonE5_2650Config()
    master = ensure_rng(rng)
    l1 = WayPartitionedCache(
        "L1D-partitioned",
        config.l1_size,
        config.l1_ways,
        config.line_size,
        make_policy_factory(config.l1_policy),
        write_policy=config.l1_write_policy,
        allocation_policy=config.l1_allocation_policy,
        rng=derive_rng(master, "l1"),
        partitions=split_ways_evenly(config.l1_ways, num_threads),
    )
    l2 = Cache(
        "L2",
        config.l2_size,
        config.l2_ways,
        config.line_size,
        make_policy_factory(config.l2_policy),
        rng=derive_rng(master, "l2"),
    )
    llc = Cache(
        "LLC",
        config.llc_size,
        config.llc_ways,
        config.line_size,
        make_policy_factory(config.llc_policy),
        rng=derive_rng(master, "llc"),
    )
    return CacheHierarchy(
        levels=[l1, l2, llc],
        latency=config.latency,
        rng=derive_rng(master, "hierarchy"),
    )
