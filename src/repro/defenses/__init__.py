"""Secure-cache defenses evaluated in Section 8 of the paper.

Each defense is a drop-in :class:`~repro.cache.Cache` variant (or a
configuration recipe) plus a factory that builds a defended Xeon-like
hierarchy.  :mod:`repro.defenses.evaluation` runs the WB channel against
each one and scores mitigation strength and benign-workload overhead.

Paper's verdicts, which the evaluation reproduces:

=====================  =============================================
Defense                Expected outcome vs the WB channel
=====================  =============================================
PLcache (locking)      mitigates (locked dirty lines unreplaceable)
DAWG/Nomo partitions   mitigates (eviction isolation)
Random-fill cache      does **not** mitigate
Randomized mapping     mitigates naive attacker; profiling re-enables
Write-through L1       removes the channel entirely (no dirty state)
=====================  =============================================
"""

from repro.defenses.plcache import PLCache, make_plcache_hierarchy
from repro.defenses.partitioned import (
    WayPartitionedCache,
    make_partitioned_hierarchy,
)
from repro.defenses.random_fill import RandomFillCache, make_random_fill_hierarchy
from repro.defenses.randomized_mapping import (
    RandomizedMappingCache,
    make_randomized_mapping_hierarchy,
)
from repro.defenses.write_through import make_write_through_hierarchy
from repro.defenses.evaluation import DefenseReport, evaluate_defense, evaluate_all

__all__ = [
    "DefenseReport",
    "PLCache",
    "RandomFillCache",
    "RandomizedMappingCache",
    "WayPartitionedCache",
    "evaluate_all",
    "evaluate_defense",
    "make_partitioned_hierarchy",
    "make_plcache_hierarchy",
    "make_random_fill_hierarchy",
    "make_randomized_mapping_hierarchy",
    "make_write_through_hierarchy",
]
