"""Unified defense evaluation: mitigation strength and benign overhead.

For each defense the harness answers the two questions Section 8 cares
about:

1. **Does the WB channel still work?**  Calibrate a decoder on the
   defended machine and run the covert channel over several messages; a
   defense counts as mitigating when the attacker's best decode is close
   to coin-flipping (or calibration finds no latency signal at all).
   Where the paper describes an adaptive attacker (random fill,
   fixed-key randomized mapping) the harness runs that attacker too.
2. **What does it cost?**  A compiler-like benign workload runs on the
   defended and the baseline hierarchy; the overhead is the elapsed-cycle
   ratio.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_rng, ensure_rng
from repro.cache.configs import make_xeon_hierarchy
from repro.cache.hierarchy import CacheHierarchy
from repro.channels.encoding import BinaryDirtyCodec
from repro.channels.wb.protocol import WBChannelConfig, run_wb_channel
from repro.cpu.noise import SchedulerNoise
from repro.cpu.smt import SMTCore
from repro.cpu.thread import HardwareThread
from repro.defenses.partitioned import make_partitioned_hierarchy
from repro.defenses.plcache import make_plcache_hierarchy
from repro.defenses.random_fill import make_random_fill_hierarchy
from repro.defenses.randomized_mapping import make_randomized_mapping_hierarchy
from repro.defenses.write_through import make_write_through_hierarchy
from repro.mem.address_space import AddressSpace, FrameAllocator
from repro.noise.workloads import CompilerLikeWorkload

HierarchyFactory = Callable[[random.Random], CacheHierarchy]

#: BER above which we call the channel dead (a coin flip scores ~0.5 under
#: edit distance-normalised scoring; anything near it carries no data).
DEAD_CHANNEL_BER = 0.30


@dataclass(frozen=True)
class DefenseReport:
    """Outcome of evaluating one defense."""

    name: str
    #: Mean BER of the standard attacker (None when calibration found no
    #: latency signal at all — the strongest possible mitigation).
    naive_ber: Optional[float]
    #: Mean BER of the defense-specific adaptive attacker, if one exists.
    adaptive_ber: Optional[float]
    #: True when the best attacker still gets usable data through.
    channel_alive: bool
    #: Elapsed-cycle ratio of the benign workload vs the baseline machine.
    overhead_ratio: float
    notes: str

    def __str__(self) -> str:
        naive = "no signal" if self.naive_ber is None else f"{self.naive_ber:.1%}"
        adaptive = (
            "-" if self.adaptive_ber is None else f"{self.adaptive_ber:.1%}"
        )
        verdict = "CHANNEL ALIVE" if self.channel_alive else "mitigated"
        return (
            f"{self.name:<20} naive BER {naive:>9}  adaptive BER {adaptive:>7}  "
            f"overhead x{self.overhead_ratio:.3f}  -> {verdict}"
        )


def _channel_ber(
    factory: Optional[HierarchyFactory],
    seeds: range,
    replacement_set_size: int = 10,
    ensure_resident: bool = False,
    period_cycles: int = 5500,
) -> Optional[float]:
    """Mean WB-channel BER on a hierarchy, or None if calibration fails."""
    bers: List[float] = []
    for seed in seeds:
        config = WBChannelConfig(
            codec=BinaryDirtyCodec(d_on=3),
            period_cycles=period_cycles,
            message_bits=64,
            seed=seed,
            scheduler_noise=SchedulerNoise.disabled(),
            hierarchy_factory=factory,
            replacement_set_size=replacement_set_size,
            sender_ensure_resident=ensure_resident,
        )
        try:
            result = run_wb_channel(config)
        except ConfigurationError:
            # Calibration could not find monotone latency medians: there is
            # no dirty-state signal on this machine.
            return None
        bers.append(result.bit_error_rate)
    return statistics.fmean(bers)


def _benign_elapsed_cycles(factory: Optional[HierarchyFactory], seed: int = 0) -> float:
    """Run the compiler-like workload alone and report elapsed cycles."""
    rng = ensure_rng(seed)
    hierarchy = (
        factory(derive_rng(rng, "hierarchy"))
        if factory is not None
        else make_xeon_hierarchy(rng=derive_rng(rng, "hierarchy"))
    )
    allocator = FrameAllocator()
    space = AddressSpace(pid=0, allocator=allocator)
    workload = CompilerLikeWorkload(space=space, total_accesses=20000, seed=seed)
    thread = HardwareThread(tid=0, space=space, program=workload, name="g++-like")
    core = SMTCore(
        hierarchy=hierarchy,
        threads=[thread],
        scheduler_noise=SchedulerNoise.disabled(),
        rng=derive_rng(rng, "core"),
    )
    core.run()
    return core.elapsed_cycles()


@dataclass(frozen=True)
class _DefenseSpec:
    factory: Optional[HierarchyFactory]
    adaptive: Optional[Callable[[range], Optional[float]]]
    notes: str


def _random_fill_factory(rng: random.Random) -> CacheHierarchy:
    return make_random_fill_hierarchy(window=4, rng=rng)


def _defense_registry() -> Dict[str, _DefenseSpec]:
    return {
        "baseline": _DefenseSpec(
            factory=None,
            adaptive=None,
            notes="unmodified write-back hierarchy (sanity anchor)",
        ),
        "plcache": _DefenseSpec(
            factory=lambda rng: make_plcache_hierarchy(protected_owners=(0,), rng=rng),
            adaptive=None,
            notes="victim lines locked; receiver cannot replace dirty lines",
        ),
        "partitioned": _DefenseSpec(
            factory=lambda rng: make_partitioned_hierarchy(num_threads=2, rng=rng),
            adaptive=None,
            notes="DAWG/Nomo-style eviction isolation between hyper-threads",
        ),
        "random-fill": _DefenseSpec(
            factory=_random_fill_factory,
            adaptive=lambda seeds: _channel_ber(
                _random_fill_factory,
                seeds,
                replacement_set_size=90,
                ensure_resident=True,
                period_cycles=22000,
            ),
            notes=(
                "fills decorrelated; adaptive sender store-hits resident "
                "lines and receiver scales the replacement set by the window"
            ),
        ),
        "randomized-mapping": _DefenseSpec(
            factory=lambda rng: make_randomized_mapping_hierarchy(rng=rng),
            adaptive=None,
            notes=(
                "stride-built replacement sets no longer collide; a "
                "fixed key remains profileable (see find_eviction_set)"
            ),
        ),
        "write-through": _DefenseSpec(
            factory=lambda rng: make_write_through_hierarchy(rng=rng),
            adaptive=None,
            notes="no dirty state exists; the calibration finds no signal",
        ),
    }


def available_defenses() -> List[str]:
    """Names accepted by :func:`evaluate_defense`."""
    return sorted(_defense_registry())


def evaluate_defense(name: str, seeds: range = range(6)) -> DefenseReport:
    """Evaluate one defense; see the module docstring for the metrics."""
    registry = _defense_registry()
    try:
        spec = registry[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown defense {name!r}; available: {', '.join(sorted(registry))}"
        )
    naive = _channel_ber(spec.factory, seeds)
    adaptive = spec.adaptive(seeds) if spec.adaptive is not None else None
    candidates = [ber for ber in (naive, adaptive) if ber is not None]
    best = min(candidates) if candidates else None
    alive = best is not None and best < DEAD_CHANNEL_BER
    baseline_cycles = _benign_elapsed_cycles(None)
    defended_cycles = _benign_elapsed_cycles(spec.factory)
    return DefenseReport(
        name=name,
        naive_ber=naive,
        adaptive_ber=adaptive,
        channel_alive=alive,
        overhead_ratio=defended_cycles / baseline_cycles,
        notes=spec.notes,
    )


def evaluate_all(seeds: range = range(6)) -> List[DefenseReport]:
    """Evaluate every registered defense (Section 8's summary table)."""
    return [evaluate_defense(name, seeds) for name in available_defenses()]
