"""PLcache: partition-locked cache (Wang & Lee).

Lines belonging to *protected* hardware threads are locked into the cache:
no other thread's fill may evict them.  Against the WB channel this means
the receiver's replacement set cannot evict the sender's locked dirty
lines, so no dirty write-back ever lands in the receiver's measurement —
the channel's signal disappears (Section 8: "the PLCache is effective for
mitigating the WB channel").

The known PLcache pathology is preserved too: when every permitted way of
a set is locked, a fill has nowhere to go.  Real PLcache serves the data
uncached; :meth:`PLCache.fill` models that as a *bypass* (no installation,
no eviction), which the hierarchy already tolerates.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Set

from repro.common.errors import SimulationError
from repro.common.rng import derive_rng, ensure_rng
from repro.cache.cache import Cache
from repro.cache.configs import XeonE5_2650Config
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.line import EvictedLine
from repro.replacement.registry import make_policy_factory


class PLCache(Cache):
    """A cache whose protected owners' lines are lock-on-fill."""

    def __init__(self, *args, protected_owners: Iterable[int] = (), **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.protected_owners: Set[int] = set(protected_owners)
        #: Fills dropped because every permitted way was locked.
        self.bypassed_fills = 0

    def _lock_if_protected(self, address: int, owner: Optional[int]) -> None:
        if owner in self.protected_owners:
            self.set_for(address).lock(self.layout.tag(address))

    def fill(
        self, address: int, dirty: bool, owner: Optional[int]
    ) -> Optional[EvictedLine]:
        try:
            evicted = super().fill(address, dirty, owner)
        except SimulationError:
            # Every permitted way is locked: serve the data uncached.
            self.bypassed_fills += 1
            return None
        self._lock_if_protected(address, owner)
        return evicted

    def lookup(self, address: int, owner: Optional[int]) -> bool:
        hit = super().lookup(address, owner)
        if hit:
            self._lock_if_protected(address, owner)
        return hit


def make_plcache_hierarchy(
    protected_owners: Iterable[int] = (0,),
    config: Optional[XeonE5_2650Config] = None,
    rng: Optional[random.Random] = None,
) -> CacheHierarchy:
    """Xeon-like hierarchy with a PLcache L1 protecting ``protected_owners``.

    The default protects thread 0 — the channel convention for the sender
    (i.e. the *victim* process a deployment would actually protect).
    """
    if config is None:
        config = XeonE5_2650Config()
    master = ensure_rng(rng)
    l1 = PLCache(
        "L1D-PLcache",
        config.l1_size,
        config.l1_ways,
        config.line_size,
        make_policy_factory(config.l1_policy),
        write_policy=config.l1_write_policy,
        allocation_policy=config.l1_allocation_policy,
        rng=derive_rng(master, "l1"),
        protected_owners=protected_owners,
    )
    l2 = Cache(
        "L2",
        config.l2_size,
        config.l2_ways,
        config.line_size,
        make_policy_factory(config.l2_policy),
        rng=derive_rng(master, "l2"),
    )
    llc = Cache(
        "LLC",
        config.llc_size,
        config.llc_ways,
        config.line_size,
        make_policy_factory(config.llc_policy),
        rng=derive_rng(master, "llc"),
    )
    return CacheHierarchy(
        levels=[l1, l2, llc],
        latency=config.latency,
        rng=derive_rng(master, "hierarchy"),
    )
