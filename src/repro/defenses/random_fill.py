"""Random-fill cache (Liu & Lee, MICRO 2015).

De-correlates demand accesses from cache fills: on a miss the demanded
line is sent to the CPU *without* being cached, and instead a random line
from a neighbourhood window around the demanded address is fetched into
the cache.

Section 8 of the paper argues this does **not** stop the WB channel:

* a store that *hits* still sets the dirty bit (the sender merely keeps
  its lines warm, e.g. via the random fills themselves or hits);
* the receiver does not care *which* lines are fetched — random fills
  still replace lines of the target set (with probability ~1/window per
  fill), so sizing the replacement set up by the window factor restores
  the measurement.

The evaluation therefore runs both the naive attacker (unchanged
parameters, degraded) and the adaptive attacker (window-scaled replacement
set, working again).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_rng, ensure_rng
from repro.cache.cache import Cache
from repro.cache.configs import XeonE5_2650Config
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.line import EvictedLine
from repro.replacement.registry import make_policy_factory


class RandomFillCache(Cache):
    """L1 variant that fills a random neighbour instead of the miss line.

    ``window`` is the neighbourhood half-width in *lines*: a miss on line
    ``x`` fills one line drawn uniformly from ``[x - window, x + window]``
    (excluding nothing; drawing ``x`` itself is allowed, as in the RF(0,N)
    configurations of the original design).
    """

    def __init__(self, *args, window: int = 4, fill_rng: Optional[random.Random] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if window < 0:
            raise ConfigurationError(f"window must be non-negative, got {window}")
        self.window = window
        self.fill_rng = ensure_rng(fill_rng)
        #: Demand misses whose data was served uncached.
        self.decorrelated_fills = 0

    def fill(
        self, address: int, dirty: bool, owner: Optional[int]
    ) -> Optional[EvictedLine]:
        if dirty or self.window == 0:
            # Write-backs from upper levels (none above L1) and the
            # degenerate window keep normal placement.
            return super().fill(address, dirty, owner)
        line = self.layout.line_size
        offset = self.fill_rng.randint(-self.window, self.window)
        neighbour = max(0, address + offset * line)
        self.decorrelated_fills += 1
        if self.probe(neighbour):
            # Neighbour already resident: nothing to install (the demanded
            # data went straight to the CPU).
            return None
        return super().fill(neighbour, dirty, owner)


def make_random_fill_hierarchy(
    window: int = 4,
    config: Optional[XeonE5_2650Config] = None,
    rng: Optional[random.Random] = None,
) -> CacheHierarchy:
    """Xeon-like hierarchy with a random-fill L1."""
    if config is None:
        config = XeonE5_2650Config()
    master = ensure_rng(rng)
    l1 = RandomFillCache(
        "L1D-randomfill",
        config.l1_size,
        config.l1_ways,
        config.line_size,
        make_policy_factory(config.l1_policy),
        write_policy=config.l1_write_policy,
        allocation_policy=config.l1_allocation_policy,
        rng=derive_rng(master, "l1"),
        window=window,
        fill_rng=derive_rng(master, "l1-fill"),
    )
    l2 = Cache(
        "L2",
        config.l2_size,
        config.l2_ways,
        config.line_size,
        make_policy_factory(config.l2_policy),
        rng=derive_rng(master, "l2"),
    )
    llc = Cache(
        "LLC",
        config.llc_size,
        config.llc_ways,
        config.line_size,
        make_policy_factory(config.llc_policy),
        rng=derive_rng(master, "llc"),
    )
    return CacheHierarchy(
        levels=[l1, l2, llc],
        latency=config.latency,
        rng=derive_rng(master, "hierarchy"),
    )
