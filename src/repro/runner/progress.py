"""Progress reporting for runner executions.

The engine calls a :class:`ProgressListener` from the parent process only
(workers never print), so output interleaves cleanly even at high job
counts.  :class:`ProgressPrinter` is the CLI's line-per-event reporter;
:class:`NullProgress` swallows everything (library use, tests).
"""

from __future__ import annotations

import sys
from typing import IO, Optional

from repro.runner.manifest import ManifestEntry
from repro.runner.sharding import TaskSpec


class ProgressListener:
    """Callback interface; all methods are optional no-ops."""

    def run_started(self, total_tasks: int, jobs: int) -> None:
        """Called once before the first task dispatches."""

    def task_started(self, task: TaskSpec, worker_id: Optional[int]) -> None:
        """Called when a task is handed to a worker (or run in-process)."""

    def task_retried(self, task: TaskSpec, attempt: int, error: str) -> None:
        """Called when a crashed task is about to be retried."""

    def task_finished(self, entry: ManifestEntry, done: int, total: int) -> None:
        """Called when a task reaches a terminal state."""

    def run_finished(self, done: int, total: int, wall_seconds: float) -> None:
        """Called once after the last task completes."""


class NullProgress(ProgressListener):
    """Reports nothing."""


class ProgressPrinter(ProgressListener):
    """Line-per-event progress on a stream (stderr by default)."""

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def _emit(self, message: str) -> None:
        print(message, file=self.stream, flush=True)

    def run_started(self, total_tasks: int, jobs: int) -> None:
        noun = "job" if jobs == 1 else "jobs"
        self._emit(f"running {total_tasks} task(s) on {jobs} {noun}")

    def task_started(self, task: TaskSpec, worker_id: Optional[int]) -> None:
        where = "in-process" if worker_id is None else f"worker {worker_id}"
        self._emit(f"  start  {task.task_id} (seed {task.seed}) on {where}")

    def task_retried(self, task: TaskSpec, attempt: int, error: str) -> None:
        self._emit(f"  retry  {task.task_id} (attempt {attempt}): {error}")

    def task_finished(self, entry: ManifestEntry, done: int, total: int) -> None:
        self._emit(
            f"  [{done}/{total}] {entry.task_id} {entry.status} "
            f"in {entry.wall_seconds:.1f}s"
        )

    def run_finished(self, done: int, total: int, wall_seconds: float) -> None:
        self._emit(f"finished {done}/{total} task(s) in {wall_seconds:.1f}s")
