"""Opportunistic batch grouping of compatible task shards.

Most sweep traffic — campaign points, seed shards, service jobs fanned
out from one ``Axis`` — is many tasks over the *same* hierarchy geometry.
The batch engine (:mod:`repro.engine.batch`) exploits that inside one
process; this module exploits it across the work list: tasks that declare
the same ``batch_hint`` (an opaque geometry label chosen by the
submitter, e.g. :func:`repro.engine.batch.geometry_key` of a scenario's
hierarchy) are coalesced into one *batch group* that a single worker
executes back to back — one process spawn instead of N, warm imports and
allocator, and same-geometry runs adjacent so the batch kernel's replica
arrays stay hot.

Grouping is strictly a scheduling affinity:

* results are split back into per-task entries, bit-identical to
  ungrouped execution (each task still computes from its own pinned
  ``(experiment_id, profile, seed)``);
* cache keys never see the hint;
* a hintless task is always its own singleton group.

Tasks only group when their *execution route* matches too — same profile,
same entry point — so a hint collision between unrelated submitters can
reorder nothing that matters.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.canonical import canonical_json
from repro.runner.sharding import TaskSpec

#: Hard ceiling on replicas per batch group, mirroring the batch
#: driver's default chunk size: memory stays proportional to one group.
MAX_GROUP_SIZE = 256


def batch_group_key(task: TaskSpec) -> Optional[str]:
    """The coalescing key of ``task``; ``None`` means "never group".

    Two tasks may share a group only when the hint, the profile, and the
    execution route (registry id / entry point / scenario-vs-registry)
    all agree — seeds and scenario payloads are exactly what a group is
    allowed to vary.
    """
    if task.batch_hint is None:
        return None
    route = (
        f"entry:{task.entry_point}"
        if task.entry_point is not None
        else ("scenario" if task.scenario is not None else f"registry:{task.experiment_id}")
    )
    return f"{task.batch_hint}|{route}|{canonical_json(task.profile.to_dict())}"


def coalesce_tasks(
    tasks: Sequence[TaskSpec], max_group: int = MAX_GROUP_SIZE
) -> List[List[TaskSpec]]:
    """Partition ``tasks`` into batch groups, preserving first-seen order.

    Hintless tasks stay singletons.  Groups are capped at ``max_group``
    members; overflow starts a fresh group.  The concatenation of the
    returned groups is a permutation of ``tasks`` in which each group's
    members keep their relative input order.
    """
    groups: List[List[TaskSpec]] = []
    open_group: Dict[str, int] = {}
    for task in tasks:
        key = batch_group_key(task)
        if key is None:
            groups.append([task])
            continue
        index = open_group.get(key)
        if index is not None and len(groups[index]) < max_group:
            groups[index].append(task)
        else:
            open_group[key] = len(groups)
            groups.append([task])
    return groups


def group_weight(group: Sequence[TaskSpec]) -> float:
    """Scheduling weight of a group (sum of member weights)."""
    return sum(task.weight for task in group)


def group_timeout(group: Sequence[TaskSpec]) -> Optional[float]:
    """Wall-clock budget of a group: the sum of member budgets.

    A single member without a budget makes the whole group unlimited —
    the group runs back to back in one worker, so no tighter bound is
    honest.
    """
    total = 0.0
    for task in group:
        if task.timeout is None:
            return None
        total += task.timeout
    return total
