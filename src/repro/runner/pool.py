"""Process-pool execution engine for experiment task shards.

Each task runs in its own worker process (at most ``jobs`` alive at once),
which buys three properties a shared long-lived pool cannot give cheaply:

* **timeouts** — a stuck task is killed without poisoning other workers;
* **crash isolation** — a worker dying (OOM, segfault in a native wheel,
  ``os._exit``) is detected per task and retried once on a fresh process;
* **determinism** — every task computes from its pinned ``(experiment_id,
  profile, seed)`` alone, so results are bit-identical to a serial run
  regardless of scheduling.

Results cross the process boundary as ``ExperimentResult.to_dict()``
payloads.  The in-process serial path round-trips through the same
serialization so that ``--jobs 1`` and ``--jobs N`` produce byte-identical
manifests.  When worker processes cannot be created at all (exotic
platforms, sandboxes without ``fork``/pipes) the engine degrades to that
serial path instead of failing the run.
"""

from __future__ import annotations

import importlib
import multiprocessing
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.experiments.base import ExperimentResult
from repro.runner.manifest import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    ManifestEntry,
)
from repro.runner.progress import NullProgress, ProgressListener
from repro.runner.sharding import TaskSpec, dispatch_order

#: How often the scheduler polls running workers, in seconds.
POLL_INTERVAL = 0.02

#: Extra attempts granted when a worker process dies without reporting.
CRASH_RETRIES = 1


def resolve_entry_point(task: TaskSpec) -> Callable[..., ExperimentResult]:
    """The callable a task executes: registry lookup or dotted override."""
    if task.entry_point is None:
        from repro.experiments.registry import run_experiment

        def registry_runner(profile, seed):
            return run_experiment(task.experiment_id, profile=profile, seed=seed)

        return registry_runner
    module_name, separator, attribute = task.entry_point.partition(":")
    if not separator or not module_name or not attribute:
        raise ConfigurationError(
            f"entry_point must look like 'package.module:function', "
            f"got {task.entry_point!r}"
        )
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attribute)
    except AttributeError:
        raise ConfigurationError(
            f"module {module_name!r} has no attribute {attribute!r}"
        )


def execute_task_payload(task: TaskSpec) -> Dict[str, object]:
    """Run one task to a serialisable payload (used in worker and parent).

    Routing both execution modes through ``to_dict`` is what makes serial
    and parallel manifests byte-identical: tuples normalise to lists in
    both, not just in the one that crossed a pipe.
    """
    runner = resolve_entry_point(task)
    started = time.perf_counter()
    result = runner(profile=task.profile, seed=task.seed)
    wall = time.perf_counter() - started
    if not isinstance(result, ExperimentResult):
        raise ConfigurationError(
            f"task {task.task_id!r} returned {type(result).__name__}, "
            f"expected ExperimentResult"
        )
    return {"result": result.to_dict(), "wall_seconds": wall}


def _worker_main(task: TaskSpec, channel) -> None:
    """Child-process entry: report a payload or a formatted error."""
    try:
        channel.put(("ok", execute_task_payload(task)))
    except BaseException:  # noqa: BLE001 - the parent needs *any* failure
        channel.put(("error", traceback.format_exc()))


def _entry_from_payload(
    task: TaskSpec, payload: Dict[str, object], worker_id: Optional[int], attempts: int
) -> ManifestEntry:
    return ManifestEntry(
        task_id=task.task_id,
        experiment_id=task.experiment_id,
        seed=task.seed,
        profile=task.profile,
        status=STATUS_OK,
        wall_seconds=payload["wall_seconds"],
        worker_id=worker_id,
        attempts=attempts,
        shard_index=task.shard_index,
        num_shards=task.num_shards,
        result=ExperimentResult.from_dict(payload["result"]),
    )


def _failure_entry(
    task: TaskSpec,
    status: str,
    error: str,
    wall: float,
    worker_id: Optional[int],
    attempts: int,
) -> ManifestEntry:
    return ManifestEntry(
        task_id=task.task_id,
        experiment_id=task.experiment_id,
        seed=task.seed,
        profile=task.profile,
        status=status,
        wall_seconds=wall,
        worker_id=worker_id,
        attempts=attempts,
        shard_index=task.shard_index,
        num_shards=task.num_shards,
        error=error,
    )


def execute_serial(
    tasks: Sequence[TaskSpec], progress: Optional[ProgressListener] = None
) -> List[ManifestEntry]:
    """In-process execution, in plan order (the ``--jobs 1`` path)."""
    progress = progress or NullProgress()
    entries: List[ManifestEntry] = []
    for task in tasks:
        progress.task_started(task, None)
        started = time.perf_counter()
        try:
            payload = execute_task_payload(task)
            entry = _entry_from_payload(task, payload, None, attempts=1)
        except Exception:  # noqa: BLE001 - record, keep running the rest
            entry = _failure_entry(
                task,
                STATUS_FAILED,
                traceback.format_exc(),
                time.perf_counter() - started,
                None,
                attempts=1,
            )
        entries.append(entry)
        progress.task_finished(entry, len(entries), len(tasks))
    return entries


@dataclass
class _Running:
    """Bookkeeping for one live worker process."""

    task: TaskSpec
    process: multiprocessing.Process
    channel: object
    worker_id: int
    started: float
    attempt: int


def execute_tasks(
    tasks: Sequence[TaskSpec],
    jobs: int = 1,
    progress: Optional[ProgressListener] = None,
    mp_context: Optional[object] = None,
) -> List[ManifestEntry]:
    """Run every task; returns entries in the original plan order.

    ``jobs <= 1`` — or a platform where worker processes cannot be spawned
    — uses :func:`execute_serial`.  Results are identical either way; only
    wall-clock and the recorded ``worker_id`` differ.
    """
    progress = progress or NullProgress()
    total = len(tasks)
    started_run = time.perf_counter()
    progress.run_started(total, max(1, jobs))
    if jobs <= 1 or total == 0:
        entries = execute_serial(tasks, progress)
    else:
        try:
            context = mp_context or multiprocessing.get_context()
            entries_by_id = _execute_pool(tasks, jobs, context, progress)
        except (OSError, ValueError, ImportError):
            # No usable multiprocessing (sandboxed /dev/shm, missing
            # primitives): degrade to in-process execution.
            entries = execute_serial(tasks, progress)
        else:
            entries = [entries_by_id[task.task_id] for task in tasks]
    done = sum(1 for entry in entries if entry.ok)
    progress.run_finished(done, total, time.perf_counter() - started_run)
    return entries


def _execute_pool(
    tasks: Sequence[TaskSpec],
    jobs: int,
    context,
    progress: ProgressListener,
) -> Dict[str, ManifestEntry]:
    """The scheduling loop: at most ``jobs`` single-task workers alive."""
    pending = deque((task, 1) for task in dispatch_order(tasks))
    free_workers = list(range(min(jobs, len(tasks))))
    running: List[_Running] = []
    finished: Dict[str, ManifestEntry] = {}
    total = len(tasks)

    def launch(task: TaskSpec, attempt: int) -> None:
        worker_id = free_workers.pop(0)
        channel = context.SimpleQueue()
        process = context.Process(
            target=_worker_main, args=(task, channel), daemon=True
        )
        process.start()
        running.append(
            _Running(task, process, channel, worker_id, time.perf_counter(), attempt)
        )
        progress.task_started(task, worker_id)

    def finish(slot: _Running, entry: ManifestEntry) -> None:
        running.remove(slot)
        free_workers.append(slot.worker_id)
        free_workers.sort()
        finished[slot.task.task_id] = entry
        progress.task_finished(entry, len(finished), total)

    try:
        while pending or running:
            while pending and free_workers:
                task, attempt = pending.popleft()
                launch(task, attempt)
            time.sleep(POLL_INTERVAL)
            for slot in list(running):
                elapsed = time.perf_counter() - slot.started
                if not slot.channel.empty():
                    verdict, payload = slot.channel.get()
                    slot.process.join()
                    if verdict == "ok":
                        entry = _entry_from_payload(
                            slot.task, payload, slot.worker_id, slot.attempt
                        )
                    else:
                        # A Python-level exception is deterministic: no retry.
                        entry = _failure_entry(
                            slot.task, STATUS_FAILED, payload, elapsed,
                            slot.worker_id, slot.attempt,
                        )
                    finish(slot, entry)
                elif slot.task.timeout is not None and elapsed > slot.task.timeout:
                    slot.process.terminate()
                    slot.process.join()
                    finish(
                        slot,
                        _failure_entry(
                            slot.task,
                            STATUS_TIMEOUT,
                            f"timed out after {slot.task.timeout:.1f}s",
                            elapsed,
                            slot.worker_id,
                            slot.attempt,
                        ),
                    )
                elif not slot.process.is_alive():
                    # Died without reporting: a genuine crash.  Retry once
                    # on a fresh process, then record the failure.
                    error = (
                        f"worker crashed (exit code {slot.process.exitcode})"
                    )
                    running.remove(slot)
                    free_workers.append(slot.worker_id)
                    free_workers.sort()
                    if slot.attempt <= CRASH_RETRIES:
                        progress.task_retried(slot.task, slot.attempt + 1, error)
                        pending.appendleft((slot.task, slot.attempt + 1))
                    else:
                        entry = _failure_entry(
                            slot.task, STATUS_FAILED, error, elapsed,
                            slot.worker_id, slot.attempt,
                        )
                        finished[slot.task.task_id] = entry
                        progress.task_finished(entry, len(finished), total)
    finally:
        for slot in running:
            slot.process.terminate()
            slot.process.join()
    return finished
