"""Process-pool execution engine for experiment task shards.

Each task runs in its own worker process (at most ``jobs`` alive at once),
which buys three properties a shared long-lived pool cannot give cheaply:

* **timeouts** — a stuck task is killed without poisoning other workers;
* **crash isolation** — a worker dying (OOM, segfault in a native wheel,
  ``os._exit``) is detected per task and retried on a fresh process with
  exponential backoff (deterministic jitter, recorded per entry);
* **determinism** — every task computes from its pinned ``(experiment_id,
  profile, seed)`` alone, so results are bit-identical to a serial run
  regardless of scheduling.

Results cross the process boundary as ``ExperimentResult.to_dict()``
payloads.  The in-process serial path round-trips through the same
serialization so that ``--jobs 1`` and ``--jobs N`` produce byte-identical
manifests.  When worker processes cannot be created at all (exotic
platforms, sandboxes without ``fork``/pipes) the engine degrades to that
serial path instead of failing the run.
"""

from __future__ import annotations

import functools
import importlib
import inspect
import multiprocessing
import random
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.common.errors import ConfigurationError, ReproError
from repro.common.rng import derive_seed
from repro.experiments.base import ExperimentResult
from repro.runner.manifest import (
    STATUS_FAILED,
    STATUS_INTERRUPTED,
    STATUS_OK,
    STATUS_TIMEOUT,
    ManifestEntry,
)
from repro.runner.batching import coalesce_tasks, group_timeout
from repro.runner.progress import NullProgress, ProgressListener
from repro.runner.sharding import TaskSpec, dispatch_order

#: How often the scheduler polls running workers, in seconds.
POLL_INTERVAL = 0.02

#: Extra attempts granted when a worker process dies without reporting.
CRASH_RETRIES = 2

#: Exponential-backoff schedule for crash retries: attempt ``n`` waits
#: ``BASE * FACTOR**(n-1)`` seconds, plus deterministic jitter of up to
#: ``JITTER_FRACTION`` of that, derived from the task id so identical
#: reruns wait identically (and concurrent crashed tasks don't stampede
#: back in lock-step).
BACKOFF_BASE_SECONDS = 0.25
BACKOFF_FACTOR = 2.0
BACKOFF_JITTER_FRACTION = 0.25


def crash_backoff_seconds(
    task_id: str, attempt: int, cap: Optional[float] = None
) -> float:
    """Deterministic backoff before retry number ``attempt`` (2-based).

    ``cap`` bounds the pre-jitter base — the fleet supervisor re-uses
    this curve for lease re-dispatch, where an unbounded exponential
    would leave a job parked behind one flaky worker for minutes.
    """
    base = BACKOFF_BASE_SECONDS * BACKOFF_FACTOR ** max(0, attempt - 2)
    if cap is not None:
        base = min(base, cap)
    jitter_rng = random.Random(derive_seed(0, f"backoff/{task_id}/{attempt}"))
    return base * (1.0 + BACKOFF_JITTER_FRACTION * jitter_rng.random())


class RunInterrupted(ReproError):
    """The user stopped a run (SIGINT) before every task finished.

    Carries the manifest entries accumulated so far — finished tasks with
    their real outcomes, everything else with
    :data:`~repro.runner.manifest.STATUS_INTERRUPTED` — so the caller can
    flush a resumable partial manifest before exiting nonzero.
    ``manifest`` is attached by :func:`repro.runner.run_tasks`.
    """

    def __init__(self, message: str, entries: List[ManifestEntry]) -> None:
        super().__init__(message)
        self.entries = entries
        self.manifest = None


def resolve_entry_point(task: TaskSpec) -> Callable[..., ExperimentResult]:
    """The callable a task executes: registry lookup, scenario or override."""
    if task.scenario is not None:
        from repro.scenario.runner import run_scenario_json

        def scenario_runner(profile, seed):
            return run_scenario_json(task.scenario, profile=profile, seed=seed)

        return scenario_runner
    if task.entry_point is None:
        from repro.experiments.registry import run_experiment

        def registry_runner(profile, seed):
            return run_experiment(task.experiment_id, profile=profile, seed=seed)

        return registry_runner
    module_name, separator, attribute = task.entry_point.partition(":")
    if not separator or not module_name or not attribute:
        raise ConfigurationError(
            f"entry_point must look like 'package.module:function', "
            f"got {task.entry_point!r}"
        )
    module = importlib.import_module(module_name)
    try:
        runner = getattr(module, attribute)
    except AttributeError:
        raise ConfigurationError(
            f"module {module_name!r} has no attribute {attribute!r}"
        )
    # Entry points are called as ``runner(profile=, seed=)``; one that
    # additionally declares an ``experiment_id`` parameter gets the
    # task's id bound here, so a single callable can serve many ids
    # (the chaos wrappers in repro.faults.chaos rely on this).
    try:
        parameters = inspect.signature(runner).parameters
    except (TypeError, ValueError):
        return runner
    if "experiment_id" in parameters:
        return functools.partial(runner, experiment_id=task.experiment_id)
    return runner


def execute_task_payload(task: TaskSpec) -> Dict[str, object]:
    """Run one task to a serialisable payload (used in worker and parent).

    Routing both execution modes through ``to_dict`` is what makes serial
    and parallel manifests byte-identical: tuples normalise to lists in
    both, not just in the one that crossed a pipe.
    """
    runner = resolve_entry_point(task)
    started = time.perf_counter()
    result = runner(profile=task.profile, seed=task.seed)
    wall = time.perf_counter() - started
    if not isinstance(result, ExperimentResult):
        raise ConfigurationError(
            f"task {task.task_id!r} returned {type(result).__name__}, "
            f"expected ExperimentResult"
        )
    return {"result": result.to_dict(), "wall_seconds": wall}


def _worker_main(task: TaskSpec, channel) -> None:
    """Child-process entry: report a payload or a formatted error."""
    try:
        channel.put(("ok", execute_task_payload(task)))
    except BaseException:  # noqa: BLE001 - the parent needs *any* failure
        channel.put(("error", traceback.format_exc()))


def execute_group_payload(tasks: Sequence[TaskSpec]) -> List[tuple]:
    """Run a batch group back to back; one verdict per member task.

    A member failing does not abort the group — each task still computes
    (or fails) independently, exactly as it would ungrouped; the group
    only shares the process.
    """
    verdicts: List[tuple] = []
    for task in tasks:
        try:
            verdicts.append(("ok", execute_task_payload(task)))
        except Exception:  # noqa: BLE001 - per-member failure, keep going
            verdicts.append(("error", traceback.format_exc()))
    return verdicts


def _group_worker_main(tasks: Sequence[TaskSpec], channel) -> None:
    """Child-process entry for a batch group: per-task verdict list."""
    try:
        channel.put(("ok", execute_group_payload(tasks)))
    except BaseException:  # noqa: BLE001 - the parent needs *any* failure
        channel.put(("error", traceback.format_exc()))


def _entry_from_payload(
    task: TaskSpec,
    payload: Dict[str, object],
    worker_id: Optional[int],
    attempts: int,
    backoff_history: Optional[List[float]] = None,
) -> ManifestEntry:
    return ManifestEntry(
        task_id=task.task_id,
        experiment_id=task.experiment_id,
        seed=task.seed,
        profile=task.profile,
        status=STATUS_OK,
        wall_seconds=payload["wall_seconds"],
        worker_id=worker_id,
        attempts=attempts,
        backoff_history=list(backoff_history or []),
        shard_index=task.shard_index,
        num_shards=task.num_shards,
        result=ExperimentResult.from_dict(payload["result"]),
    )


def _failure_entry(
    task: TaskSpec,
    status: str,
    error: str,
    wall: float,
    worker_id: Optional[int],
    attempts: int,
    backoff_history: Optional[List[float]] = None,
) -> ManifestEntry:
    return ManifestEntry(
        task_id=task.task_id,
        experiment_id=task.experiment_id,
        seed=task.seed,
        profile=task.profile,
        status=status,
        wall_seconds=wall,
        worker_id=worker_id,
        attempts=attempts,
        backoff_history=list(backoff_history or []),
        shard_index=task.shard_index,
        num_shards=task.num_shards,
        error=error,
    )


def _interrupted_entry(task: TaskSpec, attempts: int = 1) -> ManifestEntry:
    return _failure_entry(
        task,
        STATUS_INTERRUPTED,
        "run interrupted before this task finished",
        0.0,
        None,
        attempts=attempts,
    )


def execute_serial(
    tasks: Sequence[TaskSpec], progress: Optional[ProgressListener] = None
) -> List[ManifestEntry]:
    """In-process execution, in plan order (the ``--jobs 1`` path)."""
    progress = progress or NullProgress()
    entries: List[ManifestEntry] = []
    for index, task in enumerate(tasks):
        progress.task_started(task, None)
        started = time.perf_counter()
        try:
            payload = execute_task_payload(task)
            entry = _entry_from_payload(task, payload, None, attempts=1)
        except KeyboardInterrupt:
            # Mark this task and everything still queued as interrupted
            # and hand the partial record up for a manifest flush.
            entries.extend(
                _interrupted_entry(pending) for pending in tasks[index:]
            )
            raise RunInterrupted("interrupted during serial execution", entries)
        except Exception:  # noqa: BLE001 - record, keep running the rest
            entry = _failure_entry(
                task,
                STATUS_FAILED,
                traceback.format_exc(),
                time.perf_counter() - started,
                None,
                attempts=1,
            )
        entries.append(entry)
        progress.task_finished(entry, len(entries), len(tasks))
    return entries


@dataclass
class _Running:
    """Bookkeeping for one live worker process (one batch group)."""

    group: List[TaskSpec]
    process: multiprocessing.Process
    channel: object
    worker_id: int
    started: float
    attempt: int

    @property
    def group_id(self) -> str:
        """Stable label for backoff derivation and progress messages."""
        return self.group[0].task_id


def execute_tasks(
    tasks: Sequence[TaskSpec],
    jobs: int = 1,
    progress: Optional[ProgressListener] = None,
    mp_context: Optional[object] = None,
) -> List[ManifestEntry]:
    """Run every task; returns entries in the original plan order.

    ``jobs <= 1`` — or a platform where worker processes cannot be spawned
    — uses :func:`execute_serial`.  Results are identical either way; only
    wall-clock and the recorded ``worker_id`` differ.
    """
    progress = progress or NullProgress()
    total = len(tasks)
    started_run = time.perf_counter()
    progress.run_started(total, max(1, jobs))
    try:
        if jobs <= 1 or total == 0:
            entries = execute_serial(tasks, progress)
        else:
            try:
                context = mp_context or multiprocessing.get_context()
                entries_by_id = _execute_pool(tasks, jobs, context, progress)
            except (OSError, ValueError, ImportError):
                # No usable multiprocessing (sandboxed /dev/shm, missing
                # primitives): degrade to in-process execution.
                entries = execute_serial(tasks, progress)
            else:
                entries = [entries_by_id[task.task_id] for task in tasks]
    except RunInterrupted as exc:
        # Normalise the partial record to plan order before handing it up.
        by_id = {entry.task_id: entry for entry in exc.entries}
        ordered = [
            by_id.get(task.task_id, _interrupted_entry(task)) for task in tasks
        ]
        done = sum(1 for entry in ordered if entry.ok)
        progress.run_finished(done, total, time.perf_counter() - started_run)
        raise RunInterrupted(str(exc), ordered) from None
    done = sum(1 for entry in entries if entry.ok)
    progress.run_finished(done, total, time.perf_counter() - started_run)
    return entries


def _execute_pool(
    tasks: Sequence[TaskSpec],
    jobs: int,
    context,
    progress: ProgressListener,
) -> Dict[str, ManifestEntry]:
    """The scheduling loop: at most ``jobs`` worker processes alive.

    The schedulable unit is a *batch group*: tasks sharing a
    ``batch_hint`` (plus profile and execution route — see
    :mod:`repro.runner.batching`) ride one worker process back to back;
    everything else is a singleton group, making this exactly the old
    one-process-per-task loop.  Results are split back into per-task
    entries either way.

    ``pending`` holds ``(group, attempt, ready_at)`` triples; a crashed
    group re-enters the queue with ``ready_at`` in the future per
    :func:`crash_backoff_seconds`, so retries back off exponentially
    instead of immediately hammering whatever made the worker die.
    """
    groups = coalesce_tasks(dispatch_order(tasks))
    pending = deque((group, 1, 0.0) for group in groups)
    free_workers = list(range(min(jobs, len(groups))))
    running: List[_Running] = []
    finished: Dict[str, ManifestEntry] = {}
    backoffs: Dict[str, List[float]] = {}
    total = len(tasks)

    def launch(group: List[TaskSpec], attempt: int) -> None:
        worker_id = free_workers.pop(0)
        channel = context.SimpleQueue()
        process = context.Process(
            target=_group_worker_main, args=(group, channel), daemon=True
        )
        process.start()
        running.append(
            _Running(group, process, channel, worker_id, time.perf_counter(), attempt)
        )
        for task in group:
            progress.task_started(task, worker_id)

    def record(entry: ManifestEntry) -> None:
        finished[entry.task_id] = entry
        progress.task_finished(entry, len(finished), total)

    def release(slot: _Running) -> None:
        running.remove(slot)
        free_workers.append(slot.worker_id)
        free_workers.sort()

    def history(group_id: str) -> List[float]:
        return backoffs.get(group_id, [])

    try:
        while pending or running:
            now = time.perf_counter()
            deferred: List[object] = []
            while pending and free_workers:
                group, attempt, ready_at = pending.popleft()
                if ready_at > now:
                    deferred.append((group, attempt, ready_at))
                    continue
                launch(group, attempt)
            for item in reversed(deferred):
                pending.appendleft(item)
            time.sleep(POLL_INTERVAL)
            for slot in list(running):
                elapsed = time.perf_counter() - slot.started
                budget = group_timeout(slot.group)
                if not slot.channel.empty():
                    verdict, payload = slot.channel.get()
                    slot.process.join()
                    release(slot)
                    if verdict == "ok":
                        for task, (task_verdict, task_payload) in zip(
                            slot.group, payload
                        ):
                            if task_verdict == "ok":
                                record(
                                    _entry_from_payload(
                                        task, task_payload, slot.worker_id,
                                        slot.attempt, history(slot.group_id),
                                    )
                                )
                            else:
                                # A Python-level exception is
                                # deterministic: no retry.
                                record(
                                    _failure_entry(
                                        task, STATUS_FAILED, task_payload,
                                        elapsed, slot.worker_id, slot.attempt,
                                        history(slot.group_id),
                                    )
                                )
                    else:
                        for task in slot.group:
                            record(
                                _failure_entry(
                                    task, STATUS_FAILED, payload, elapsed,
                                    slot.worker_id, slot.attempt,
                                    history(slot.group_id),
                                )
                            )
                elif budget is not None and elapsed > budget:
                    slot.process.terminate()
                    slot.process.join()
                    release(slot)
                    for task in slot.group:
                        record(
                            _failure_entry(
                                task,
                                STATUS_TIMEOUT,
                                f"timed out after {budget:.1f}s"
                                + (
                                    f" (batch group of {len(slot.group)})"
                                    if len(slot.group) > 1
                                    else ""
                                ),
                                elapsed,
                                slot.worker_id,
                                slot.attempt,
                                history(slot.group_id),
                            )
                        )
                elif not slot.process.is_alive():
                    # Died without reporting: a genuine crash.  Retry the
                    # whole group on a fresh process after a deterministic
                    # backoff, up to CRASH_RETRIES times, then record the
                    # failure on every member.
                    error = (
                        f"worker crashed (exit code {slot.process.exitcode})"
                    )
                    release(slot)
                    if slot.attempt <= CRASH_RETRIES:
                        next_attempt = slot.attempt + 1
                        delay = crash_backoff_seconds(
                            slot.group_id, next_attempt
                        )
                        backoffs.setdefault(slot.group_id, []).append(delay)
                        for task in slot.group:
                            progress.task_retried(task, next_attempt, error)
                        pending.appendleft(
                            (slot.group, next_attempt, time.perf_counter() + delay)
                        )
                    else:
                        for task in slot.group:
                            record(
                                _failure_entry(
                                    task, STATUS_FAILED, error, elapsed,
                                    slot.worker_id, slot.attempt,
                                    history(slot.group_id),
                                )
                            )
    except KeyboardInterrupt:
        # Stop the fleet, record everything unfinished as interrupted,
        # and hand the partial record up for a manifest flush.
        for slot in running:
            slot.process.terminate()
            slot.process.join()
        entries = list(finished.values())
        entries.extend(
            _interrupted_entry(task, slot.attempt)
            for slot in running
            for task in slot.group
            if task.task_id not in finished
        )
        entries.extend(
            _interrupted_entry(task, attempt)
            for group, attempt, _ready_at in pending
            for task in group
        )
        running.clear()
        raise RunInterrupted("interrupted during parallel execution", entries)
    finally:
        for slot in running:
            slot.process.terminate()
            slot.process.join()
    return finished
