"""Run manifests: the persisted record of one experiment run.

A manifest is what makes a run resumable and auditable: for every task it
records the seed, profile, wall-clock, worker id, attempt count and either
the full serialised :class:`~repro.experiments.base.ExperimentResult` or a
failure record.  ``examples/render_figures.py --results DIR`` re-renders
figures from a manifest without recomputing anything.

The JSON layout is schema-versioned independently of the result schema so
either can evolve; loading an unknown version fails loudly.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.common.canonical import canonical_json
from repro.common.errors import ConfigurationError, ManifestError
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import RunProfile

#: Bump on breaking changes to the manifest JSON layout.
MANIFEST_SCHEMA_VERSION = 1

#: File name written inside the results directory.
MANIFEST_FILENAME = "manifest.json"

#: Task terminal states.
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"
#: The run was stopped (SIGINT / KeyboardInterrupt) before this task
#: finished; a later run can resume from the flushed manifest.
STATUS_INTERRUPTED = "interrupted"

#: Entry fields that vary between otherwise-identical runs (timing,
#: scheduling, retry history).  :meth:`RunManifest.canonical_dict` strips
#: them so a resumed run can be compared bit-for-bit against an
#: uninterrupted one.
VOLATILE_ENTRY_FIELDS = (
    "wall_seconds",
    "worker_id",
    "attempts",
    "backoff_history",
)

#: Manifest-level fields stripped by :meth:`RunManifest.canonical_dict`.
VOLATILE_MANIFEST_FIELDS = ("total_wall_seconds", "jobs")


@dataclass
class ManifestEntry:
    """Outcome of one task: result or failure, plus provenance."""

    task_id: str
    experiment_id: str
    seed: int
    profile: RunProfile
    status: str
    wall_seconds: float
    #: Worker slot that produced the result; ``None`` for in-process runs.
    worker_id: Optional[int] = None
    attempts: int = 1
    #: Seconds waited before each retry of this task (empty when the
    #: first attempt succeeded); length is ``attempts - 1``.
    backoff_history: List[float] = field(default_factory=list)
    shard_index: int = 0
    num_shards: int = 1
    error: Optional[str] = None
    result: Optional[ExperimentResult] = None

    @property
    def ok(self) -> bool:
        """True when the task produced a result."""
        return self.status == STATUS_OK

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form; inverse of :meth:`from_dict`."""
        return {
            "task_id": self.task_id,
            "experiment_id": self.experiment_id,
            "seed": self.seed,
            "profile": self.profile.to_dict(),
            "status": self.status,
            "wall_seconds": self.wall_seconds,
            "worker_id": self.worker_id,
            "attempts": self.attempts,
            "backoff_history": list(self.backoff_history),
            "shard_index": self.shard_index,
            "num_shards": self.num_shards,
            "error": self.error,
            "result": None if self.result is None else self.result.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ManifestEntry":
        """Rebuild an entry from :meth:`to_dict` output."""
        result = data.get("result")
        return cls(
            task_id=data["task_id"],
            experiment_id=data["experiment_id"],
            seed=data["seed"],
            profile=RunProfile.from_dict(data["profile"]),
            status=data["status"],
            wall_seconds=data["wall_seconds"],
            worker_id=data.get("worker_id"),
            attempts=data.get("attempts", 1),
            backoff_history=list(data.get("backoff_history", [])),
            shard_index=data.get("shard_index", 0),
            num_shards=data.get("num_shards", 1),
            error=data.get("error"),
            result=None if result is None else ExperimentResult.from_dict(result),
        )


@dataclass
class RunManifest:
    """Everything one runner invocation produced, in task-plan order."""

    entries: List[ManifestEntry] = field(default_factory=list)
    jobs: int = 1
    base_seed: int = 0
    profile_name: str = "full"
    #: Wall-clock of the whole run (parallel, so < sum of entry times).
    total_wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every task produced a result."""
        return all(entry.ok for entry in self.entries)

    @property
    def failures(self) -> List[ManifestEntry]:
        """Entries that did not produce a result."""
        return [entry for entry in self.entries if not entry.ok]

    @property
    def interrupted(self) -> bool:
        """True when the run was stopped before every task finished."""
        return any(
            entry.status == STATUS_INTERRUPTED for entry in self.entries
        )

    def entry(self, task_id: str) -> ManifestEntry:
        """Look up one entry by its task id."""
        for candidate in self.entries:
            if candidate.task_id == task_id:
                return candidate
        raise ConfigurationError(
            f"no task {task_id!r} in manifest; tasks: "
            f"{', '.join(entry.task_id for entry in self.entries)}"
        )

    def results(self) -> Dict[str, ExperimentResult]:
        """Successful results keyed by task id."""
        return {
            entry.task_id: entry.result for entry in self.entries if entry.ok
        }

    def result_for(self, experiment_id: str) -> ExperimentResult:
        """The shard-0 result of ``experiment_id`` (raises if absent/failed)."""
        entry = self.entry(experiment_id)
        if not entry.ok:
            raise ConfigurationError(
                f"task {experiment_id!r} did not succeed: "
                f"{entry.status} ({entry.error})"
            )
        return entry.result

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form; inverse of :meth:`from_dict`."""
        return {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "jobs": self.jobs,
            "base_seed": self.base_seed,
            "profile_name": self.profile_name,
            "total_wall_seconds": self.total_wall_seconds,
            "entries": [entry.to_dict() for entry in self.entries],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunManifest":
        """Rebuild a manifest from :meth:`to_dict` output."""
        version = data.get("schema_version")
        if version != MANIFEST_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported manifest schema_version {version!r}; "
                f"this library reads version {MANIFEST_SCHEMA_VERSION}"
            )
        return cls(
            entries=[ManifestEntry.from_dict(entry) for entry in data["entries"]],
            jobs=data.get("jobs", 1),
            base_seed=data.get("base_seed", 0),
            profile_name=data.get("profile_name", "full"),
            total_wall_seconds=data.get("total_wall_seconds", 0.0),
        )

    def canonical_dict(self) -> Dict[str, object]:
        """:meth:`to_dict` minus everything that varies between runs.

        Wall-clock, worker ids, retry counts/backoffs and the job count
        differ between a serial run, a parallel run and a resumed run of
        the same plan; the *computed* content (statuses, seeds, profiles,
        results) must not.  Two runs are equivalent exactly when their
        canonical forms are equal — this is the "bit-identical resume"
        contract checked by the test suite and the CI smoke job.
        """
        data = self.to_dict()
        for fieldname in VOLATILE_MANIFEST_FIELDS:
            data.pop(fieldname, None)
        for entry in data["entries"]:
            for fieldname in VOLATILE_ENTRY_FIELDS:
                entry.pop(fieldname, None)
        return data

    def canonical_json(self) -> str:
        """Canonical form as one stable byte representation.

        Serialised through :func:`repro.common.canonical_json` (sorted
        keys, fixed separators, NaN rejected, explicit version field
        required) — the same helper the service result store hashes for
        its content addresses, so "equal canonical JSON" means the same
        thing everywhere in the repo.
        """
        return canonical_json(self.canonical_dict(), require_version=True)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialise to a JSON string (``sort_keys`` for stable diffs)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        """Inverse of :meth:`to_json`.

        Raises :class:`~repro.common.errors.ManifestError` on truncated
        or otherwise corrupt JSON and on documents that parse but are not
        run manifests, so callers can distinguish "this file is damaged"
        from ordinary configuration mistakes.
        """
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ManifestError(
                f"manifest is not valid JSON (truncated or corrupt "
                f"write?): {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise ManifestError(
                f"manifest must be a JSON object, got "
                f"{type(data).__name__}"
            )
        try:
            return cls.from_dict(data)
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestError(
                f"manifest JSON is missing or mangles required fields: "
                f"{exc!r}"
            ) from exc

    def save(self, out_dir: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write ``manifest.json`` under ``out_dir`` (created if missing).

        The write is atomic — serialise to a temporary file in the same
        directory, then ``os.replace`` over the destination — so a reader
        (or a resumed run) never observes a half-written manifest, and a
        crash mid-write leaves any previous manifest intact.
        """
        directory = pathlib.Path(out_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / MANIFEST_FILENAME
        temp_path = directory / (MANIFEST_FILENAME + ".tmp")
        temp_path.write_text(self.to_json())
        os.replace(temp_path, path)
        return path

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "RunManifest":
        """Read a manifest from a file or a results directory."""
        location = pathlib.Path(path)
        if location.is_dir():
            location = location / MANIFEST_FILENAME
        if not location.exists():
            raise ConfigurationError(f"no manifest at {location}")
        return cls.from_json(location.read_text())
