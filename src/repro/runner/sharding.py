"""Task planning: experiments → schedulable shards with pinned seeds.

The planner turns a list of experiment ids into :class:`TaskSpec` units —
one per (experiment, seed) — *before* anything executes.  Seeds are
derived here, serially, with :func:`repro.common.rng.derive_seed`, so the
work list is a pure function of ``(experiment_ids, profile, base_seed,
seeds_per_experiment)`` and a parallel run computes bit-for-bit the same
results as a serial run no matter how workers pick tasks up.

Heavy experiments (the multi-message BER sweeps) are dispatched first —
longest-processing-time-first keeps the pool busy instead of leaving one
worker grinding through ``defenses`` after everyone else drained the
queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_seed
from repro.experiments.profiles import ProfileLike, RunProfile, resolve_profile

#: Relative cost of one quick-profile run (measured seconds on the
#: reference machine, used only for scheduling order — never correctness).
EXPERIMENT_WEIGHTS: Dict[str, float] = {
    "defenses": 9.0,
    "fig6": 7.5,
    "table6": 4.0,
    "extension_3bit": 3.1,
    "stability": 2.8,
    "ablation_replacement_set": 2.6,
    "fig8": 2.4,
    "ablation_errors": 2.3,
    "random_policy": 2.1,
    "fault_tolerance": 1.6,
    "extension_l2": 1.4,
    "table7": 0.8,
    "table5": 0.8,
    "sidechannel": 0.4,
    "trace_sweep": 0.4,
    "fig5": 0.4,
    "table2": 0.3,
    "fig4": 0.3,
    "fig7": 0.1,
    "table4": 0.1,
}


@dataclass(frozen=True)
class TaskSpec:
    """One schedulable unit of work: an experiment at a pinned seed.

    ``entry_point`` (``"package.module:function"``) overrides the registry
    lookup; the referenced callable must accept ``(profile=, seed=)`` and
    return an :class:`~repro.experiments.base.ExperimentResult`.  It exists
    for extensions and for the test suite's crashing fakes — being a dotted
    path rather than a callable keeps specs picklable under every
    multiprocessing start method.

    ``scenario`` carries a declarative :class:`repro.scenario.ScenarioSpec`
    as its serialised JSON (a plain string for the same picklability
    reason); the worker runs it through
    :func:`repro.scenario.runner.run_scenario_json` instead of the
    registry.  ``experiment_id`` then holds the ``scenario:<name>`` label.
    """

    task_id: str
    experiment_id: str
    seed: int
    profile: RunProfile
    shard_index: int = 0
    num_shards: int = 1
    #: Wall-clock budget in seconds; ``None`` means unlimited.
    timeout: Optional[float] = None
    #: Scheduling weight (heavier dispatches earlier); not a correctness input.
    weight: float = 1.0
    entry_point: Optional[str] = None
    #: Serialised ScenarioSpec JSON for declarative scenario tasks.
    scenario: Optional[str] = None
    #: Opaque coalescing label: tasks sharing a hint (and profile and
    #: execution route) may be dispatched as one batch group — a pure
    #: scheduling affinity, never a correctness input and never part of
    #: any cache key.  ``None`` opts out.
    batch_hint: Optional[str] = None

    def __post_init__(self) -> None:
        if self.scenario is not None and self.entry_point is not None:
            raise ConfigurationError(
                "a task carries either a scenario or an entry_point "
                "override, not both"
            )
        if self.num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if not 0 <= self.shard_index < self.num_shards:
            raise ConfigurationError(
                f"shard_index {self.shard_index} out of range "
                f"[0, {self.num_shards})"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(
                f"timeout must be positive, got {self.timeout}"
            )


def plan_tasks(
    experiment_ids: Sequence[str],
    profile: ProfileLike = None,
    base_seed: int = 0,
    seeds_per_experiment: int = 1,
    timeout: Optional[float] = None,
) -> List[TaskSpec]:
    """Expand experiments into task shards with deterministic seeds.

    Shard 0 of every experiment runs at ``base_seed`` — exactly what a
    plain serial ``run_experiment(id, seed=base_seed)`` computes — so a
    single-seed parallel run is directly comparable to the serial one.
    Additional shards (``seeds_per_experiment > 1``, the multi-seed sweeps
    the paper uses for its rate/BER trade-off curves) get order-independent
    seeds derived from ``(base_seed, experiment_id, shard_index)``.
    """
    resolved = resolve_profile(profile)
    if seeds_per_experiment < 1:
        raise ConfigurationError(
            f"seeds_per_experiment must be >= 1, got {seeds_per_experiment}"
        )
    tasks: List[TaskSpec] = []
    for experiment_id in experiment_ids:
        for shard in range(seeds_per_experiment):
            if shard == 0:
                seed = base_seed
                task_id = experiment_id
            else:
                seed = derive_seed(base_seed, f"{experiment_id}/shard{shard}")
                task_id = f"{experiment_id}#s{shard}"
            tasks.append(
                TaskSpec(
                    task_id=task_id,
                    experiment_id=experiment_id,
                    seed=seed,
                    profile=resolved,
                    shard_index=shard,
                    num_shards=seeds_per_experiment,
                    timeout=timeout,
                    weight=EXPERIMENT_WEIGHTS.get(experiment_id, 1.0),
                )
            )
    return tasks


def dispatch_order(tasks: Sequence[TaskSpec]) -> List[TaskSpec]:
    """Heaviest-first dispatch order (stable for equal weights)."""
    return sorted(
        tasks, key=lambda task: (-task.weight, task.experiment_id, task.shard_index)
    )


def with_timeout(task: TaskSpec, timeout: Optional[float]) -> TaskSpec:
    """A copy of ``task`` with its timeout replaced."""
    return replace(task, timeout=timeout)
