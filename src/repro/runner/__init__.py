"""Parallel experiment runner: fan experiments out, persist run manifests.

The one-call API::

    from repro.runner import run_experiments

    manifest = run_experiments(
        ["table2", "fig6"], profile="quick", jobs=4, out_dir="results"
    )
    print(manifest.result_for("fig6").render())

Seeds are pinned per task before anything executes (see
:mod:`repro.runner.sharding`), so a parallel run is bit-identical to a
serial one; the manifest (:mod:`repro.runner.manifest`) records every
result with enough provenance — seed, profile, wall-clock, worker id,
attempts — to audit or re-render a run without recomputing it.
"""

from __future__ import annotations

import pathlib
import time
from typing import List, Optional, Sequence, Union

from repro.common.errors import ConfigurationError
from repro.experiments.profiles import ProfileLike, resolve_profile
from repro.experiments.registry import available_experiments
from repro.runner.manifest import (
    MANIFEST_FILENAME,
    MANIFEST_SCHEMA_VERSION,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    ManifestEntry,
    RunManifest,
)
from repro.runner.pool import (
    CRASH_RETRIES,
    execute_serial,
    execute_task_payload,
    execute_tasks,
)
from repro.runner.progress import NullProgress, ProgressListener, ProgressPrinter
from repro.runner.sharding import (
    EXPERIMENT_WEIGHTS,
    TaskSpec,
    dispatch_order,
    plan_tasks,
)

__all__ = [
    "CRASH_RETRIES",
    "EXPERIMENT_WEIGHTS",
    "MANIFEST_FILENAME",
    "MANIFEST_SCHEMA_VERSION",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "ManifestEntry",
    "NullProgress",
    "ProgressListener",
    "ProgressPrinter",
    "RunManifest",
    "TaskSpec",
    "dispatch_order",
    "execute_serial",
    "execute_task_payload",
    "execute_tasks",
    "plan_tasks",
    "run_experiments",
    "run_tasks",
]


def run_tasks(
    tasks: Sequence[TaskSpec],
    jobs: int = 1,
    out_dir: Optional[Union[str, pathlib.Path]] = None,
    progress: Optional[ProgressListener] = None,
) -> RunManifest:
    """Execute an explicit task plan and assemble (and persist) a manifest."""
    started = time.perf_counter()
    entries = execute_tasks(tasks, jobs=jobs, progress=progress)
    profile_names = {task.profile.name for task in tasks}
    manifest = RunManifest(
        entries=entries,
        jobs=max(1, jobs),
        base_seed=tasks[0].seed if tasks else 0,
        profile_name=profile_names.pop() if len(profile_names) == 1 else "mixed",
        total_wall_seconds=time.perf_counter() - started,
    )
    if out_dir is not None:
        manifest.save(out_dir)
    return manifest


def run_experiments(
    experiment_ids: Optional[Sequence[str]] = None,
    profile: ProfileLike = None,
    seed: int = 0,
    jobs: int = 1,
    out_dir: Optional[Union[str, pathlib.Path]] = None,
    timeout: Optional[float] = None,
    seeds_per_experiment: int = 1,
    progress: Optional[ProgressListener] = None,
) -> RunManifest:
    """Plan and run experiments (all of them by default) across workers.

    This is what ``wb-experiments --jobs N --out DIR`` calls.  Unknown ids
    are rejected up front, before any worker starts.
    """
    if experiment_ids is None:
        experiment_ids = available_experiments()
    known = set(available_experiments())
    unknown = [eid for eid in experiment_ids if eid not in known]
    if unknown:
        raise ConfigurationError(
            f"unknown experiment(s): {', '.join(unknown)}; available: "
            f"{', '.join(available_experiments())}"
        )
    resolved = resolve_profile(profile)
    tasks: List[TaskSpec] = plan_tasks(
        experiment_ids,
        profile=resolved,
        base_seed=seed,
        seeds_per_experiment=seeds_per_experiment,
        timeout=timeout,
    )
    return run_tasks(tasks, jobs=jobs, out_dir=out_dir, progress=progress)
