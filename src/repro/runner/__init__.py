"""Parallel experiment runner: fan experiments out, persist run manifests.

The one-call API::

    from repro.runner import run_experiments

    manifest = run_experiments(
        ["table2", "fig6"], profile="quick", jobs=4, out_dir="results"
    )
    print(manifest.result_for("fig6").render())

Seeds are pinned per task before anything executes (see
:mod:`repro.runner.sharding`), so a parallel run is bit-identical to a
serial one; the manifest (:mod:`repro.runner.manifest`) records every
result with enough provenance — seed, profile, wall-clock, worker id,
attempts — to audit or re-render a run without recomputing it.
"""

from __future__ import annotations

import pathlib
import time
from typing import List, Optional, Sequence, Union

from repro.common.errors import ConfigurationError
from repro.experiments.profiles import ProfileLike, resolve_profile
from repro.experiments.registry import available_experiments
from repro.runner.manifest import (
    MANIFEST_FILENAME,
    MANIFEST_SCHEMA_VERSION,
    STATUS_FAILED,
    STATUS_INTERRUPTED,
    STATUS_OK,
    STATUS_TIMEOUT,
    ManifestEntry,
    RunManifest,
)
from repro.runner.batching import (
    MAX_GROUP_SIZE,
    batch_group_key,
    coalesce_tasks,
    group_timeout,
)
from repro.runner.pool import (
    CRASH_RETRIES,
    RunInterrupted,
    crash_backoff_seconds,
    execute_group_payload,
    execute_serial,
    execute_task_payload,
    execute_tasks,
)
from repro.runner.progress import NullProgress, ProgressListener, ProgressPrinter
from repro.runner.sharding import (
    EXPERIMENT_WEIGHTS,
    TaskSpec,
    dispatch_order,
    plan_tasks,
)

__all__ = [
    "CRASH_RETRIES",
    "EXPERIMENT_WEIGHTS",
    "MANIFEST_FILENAME",
    "MANIFEST_SCHEMA_VERSION",
    "MAX_GROUP_SIZE",
    "STATUS_FAILED",
    "STATUS_INTERRUPTED",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "ManifestEntry",
    "NullProgress",
    "ProgressListener",
    "ProgressPrinter",
    "RunInterrupted",
    "RunManifest",
    "TaskSpec",
    "batch_group_key",
    "coalesce_tasks",
    "crash_backoff_seconds",
    "dispatch_order",
    "execute_group_payload",
    "execute_serial",
    "execute_task_payload",
    "execute_tasks",
    "group_timeout",
    "plan_tasks",
    "run_experiments",
    "run_tasks",
]


class _CheckpointProgress(ProgressListener):
    """Progress tee that flushes a partial manifest after every task.

    Each flush is atomic (:meth:`RunManifest.save`), so killing the run at
    any instant leaves the last complete checkpoint on disk — the file a
    later ``--resume`` run loads.  Unfinished tasks are simply absent from
    a checkpoint; resume treats absent and non-``ok`` alike.
    """

    def __init__(
        self,
        inner: ProgressListener,
        out_dir: pathlib.Path,
        prior_entries: Sequence[ManifestEntry],
        jobs: int,
        base_seed: int,
        profile_name: str,
    ) -> None:
        self.inner = inner
        self.out_dir = out_dir
        self.prior_entries = list(prior_entries)
        self.new_entries: List[ManifestEntry] = []
        self.jobs = jobs
        self.base_seed = base_seed
        self.profile_name = profile_name

    def run_started(self, total_tasks: int, jobs: int) -> None:
        self.inner.run_started(total_tasks, jobs)

    def task_started(self, task, worker_id) -> None:
        self.inner.task_started(task, worker_id)

    def task_retried(self, task, attempt, error) -> None:
        self.inner.task_retried(task, attempt, error)

    def task_finished(self, entry: ManifestEntry, done: int, total: int) -> None:
        self.new_entries.append(entry)
        RunManifest(
            entries=self.prior_entries + self.new_entries,
            jobs=self.jobs,
            base_seed=self.base_seed,
            profile_name=self.profile_name,
        ).save(self.out_dir)
        self.inner.task_finished(entry, done, total)

    def run_finished(self, done: int, total: int, wall_seconds: float) -> None:
        self.inner.run_finished(done, total, wall_seconds)


def run_tasks(
    tasks: Sequence[TaskSpec],
    jobs: int = 1,
    out_dir: Optional[Union[str, pathlib.Path]] = None,
    progress: Optional[ProgressListener] = None,
    resume_from: Optional[Union[RunManifest, str, pathlib.Path]] = None,
) -> RunManifest:
    """Execute an explicit task plan and assemble (and persist) a manifest.

    ``resume_from`` (a prior manifest, or a path to one) skips every task
    whose ``(task_id, experiment_id, seed, profile)`` already has an
    ``ok`` entry there, reusing that entry verbatim; because task seeds
    are pinned at plan time, the merged manifest is canonically identical
    (:meth:`RunManifest.canonical_json`) to an uninterrupted run.

    With ``out_dir`` set, a partial manifest is checkpointed atomically
    after every finished task, and a SIGINT flushes a final manifest with
    the unfinished tasks marked ``interrupted`` before
    :class:`~repro.runner.pool.RunInterrupted` (carrying that manifest)
    propagates to the caller.
    """
    started = time.perf_counter()
    prior: dict = {}
    if resume_from is not None:
        if not isinstance(resume_from, RunManifest):
            resume_from = RunManifest.load(resume_from)
        prior = {entry.task_id: entry for entry in resume_from.entries}

    reused: List[ManifestEntry] = []
    remaining: List[TaskSpec] = []
    for task in tasks:
        entry = prior.get(task.task_id)
        if (
            entry is not None
            and entry.ok
            and entry.experiment_id == task.experiment_id
            and entry.seed == task.seed
            and entry.profile == task.profile
        ):
            reused.append(entry)
        else:
            remaining.append(task)

    profile_names = {task.profile.name for task in tasks}
    profile_name = profile_names.pop() if len(profile_names) == 1 else "mixed"
    base_seed = tasks[0].seed if tasks else 0

    effective_progress: ProgressListener = progress or NullProgress()
    if out_dir is not None:
        effective_progress = _CheckpointProgress(
            effective_progress,
            pathlib.Path(out_dir),
            reused,
            max(1, jobs),
            base_seed,
            profile_name,
        )

    def assemble(new_entries: Sequence[ManifestEntry]) -> RunManifest:
        by_id = {entry.task_id: entry for entry in reused}
        by_id.update({entry.task_id: entry for entry in new_entries})
        return RunManifest(
            entries=[by_id[task.task_id] for task in tasks if task.task_id in by_id],
            jobs=max(1, jobs),
            base_seed=base_seed,
            profile_name=profile_name,
            total_wall_seconds=time.perf_counter() - started,
        )

    try:
        entries = execute_tasks(remaining, jobs=jobs, progress=effective_progress)
    except RunInterrupted as exc:
        manifest = assemble(exc.entries)
        if out_dir is not None:
            manifest.save(out_dir)
        exc.manifest = manifest
        raise
    manifest = assemble(entries)
    if out_dir is not None:
        manifest.save(out_dir)
    return manifest


def run_experiments(
    experiment_ids: Optional[Sequence[str]] = None,
    profile: ProfileLike = None,
    seed: int = 0,
    jobs: int = 1,
    out_dir: Optional[Union[str, pathlib.Path]] = None,
    timeout: Optional[float] = None,
    seeds_per_experiment: int = 1,
    progress: Optional[ProgressListener] = None,
    resume_from: Optional[Union[RunManifest, str, pathlib.Path]] = None,
) -> RunManifest:
    """Plan and run experiments (all of them by default) across workers.

    This is what ``wb-experiments --jobs N --out DIR`` calls.  Unknown ids
    are rejected up front, before any worker starts.  ``resume_from``
    skips tasks already completed in a prior (partial) manifest; see
    :func:`run_tasks`.
    """
    if experiment_ids is None:
        experiment_ids = available_experiments()
    known = set(available_experiments())
    unknown = [eid for eid in experiment_ids if eid not in known]
    if unknown:
        raise ConfigurationError(
            f"unknown experiment(s): {', '.join(unknown)}; available: "
            f"{', '.join(available_experiments())}"
        )
    resolved = resolve_profile(profile)
    tasks: List[TaskSpec] = plan_tasks(
        experiment_ids,
        profile=resolved,
        base_seed=seed,
        seeds_per_experiment=seeds_per_experiment,
        timeout=timeout,
    )
    return run_tasks(
        tasks,
        jobs=jobs,
        out_dir=out_dir,
        progress=progress,
        resume_from=resume_from,
    )
