"""Extension — three bits per symbol, the paper's theoretical maximum.

Section 4: "The L1 data cache is typically an 8-way set-associative
structure, which means that each cache set contain nine states of zero to
eight dirty cache lines" — so up to three bits per symbol are encodable.
The paper stops at two bits "to reduce the impact of pollution ... and
increase the distinction between different encoding symbols"; this
extension quantifies that design choice by running the 3-bit codec
(levels d = 0..7, adjacent levels only one write-back penalty apart) next
to the paper's 2-bit codec at the same symbol periods.

Expected outcome (and the reason the paper's choice is right): the 3-bit
codec carries 1.5x the bits per symbol but its 11-cycle level spacing is
within reach of ambient noise, so its BER is disproportionately higher —
the 2-bit non-adjacent-level scheme wins on *effective* throughput at
high rates.
"""

from __future__ import annotations

import statistics
from typing import Dict, List

from repro.common.units import cycles_to_kbps
from repro.channels.encoding import MultiBitDirtyCodec
from repro.channels.wb import WBChannelConfig, calibrate_decoder, run_wb_channel
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ProfileLike, resolve_profile

EXPERIMENT_ID = "extension_3bit"

PERIODS = (800, 1000, 1600, 2200, 4000, 11000)

#: 3 bits per symbol using all eight encodable dirty-line counts.
THREE_BIT_MAP = {value: value for value in range(8)}


def _codec_curve(codec, periods, messages, message_bits, seed):
    decoder = calibrate_decoder(codec.levels, repetitions=60, seed=seed)
    curve: Dict[int, float] = {}
    for period in periods:
        bers = [
            run_wb_channel(
                WBChannelConfig(
                    codec=codec,
                    period_cycles=period,
                    message_bits=message_bits,
                    seed=seed * 31 + message,
                    decoder=decoder,
                )
            ).bit_error_rate
            for message in range(messages)
        ]
        curve[period] = statistics.fmean(bers)
    return curve


def run(
    *, profile: ProfileLike = None, seed: int = 0
) -> ExperimentResult:
    """Compare the paper's 2-bit codec with the theoretical 3-bit one."""
    profile = resolve_profile(profile)
    messages = profile.count(quick=4, full=30)
    two_bit = MultiBitDirtyCodec()
    three_bit = MultiBitDirtyCodec(level_map=dict(THREE_BIT_MAP))
    two_bits_len = profile.count(quick=64, full=256)
    three_bits_len = profile.count(quick=48, full=255 * 3 // 3 * 3)  # multiple of 3
    curve2 = _codec_curve(two_bit, PERIODS, messages, two_bits_len, seed)
    curve3 = _codec_curve(three_bit, PERIODS, messages, three_bits_len, seed)

    rows: List[List[object]] = []
    for period in PERIODS:
        rate2 = cycles_to_kbps(period, 2)
        rate3 = cycles_to_kbps(period, 3)
        goodput2 = rate2 * (1 - curve2[period])
        goodput3 = rate3 * (1 - curve3[period])
        rows.append(
            [
                period,
                f"{rate2:.0f}",
                f"{curve2[period]:.2%}",
                f"{rate3:.0f}",
                f"{curve3[period]:.2%}",
                "2-bit" if goodput2 >= goodput3 else "3-bit",
            ]
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="2-bit (paper) vs 3-bit (theoretical max) symbol encoding",
        paper_reference="Section 4 / Section 5 design discussion",
        columns=[
            "Ts (cycles)",
            "2-bit rate (Kbps)",
            "2-bit BER",
            "3-bit rate (Kbps)",
            "3-bit BER",
            "goodput winner",
        ],
        rows=rows,
        params={"messages_per_point": messages, "seed": seed},
        notes=(
            "The 3-bit codec's adjacent dirty-line levels (11-cycle "
            "spacing) roughly double its BER relative to the paper's "
            "non-adjacent 2-bit scheme at every rate. In this simulator's "
            "clean noise regime the extra raw rate still wins goodput; on "
            "real hardware, where ambient noise approaches the 11-cycle "
            "level spacing, that margin vanishes — consistent with the "
            "paper's choice to 'only encode two bits each time and avoid "
            "using adjacent d'."
        ),
    )
