"""Seed-sweep replay statistics — the batch engine's target workload.

Every headline number in the paper is a statistic over many independent
replays of one cache geometry (Fig 6-8 sweep seeds, Tables 4-7 average
trials, the Section 7 detector is tuned on seeded traces).  This
experiment distils that shape: replay ``replicas`` fig6-style sender
traces, one seed each, through the paper's Xeon E5-2650 hierarchy and
report aggregate hit/latency/dirty-eviction statistics.

The route depends on the selected engine.  Under ``--engine batch`` the
whole sweep goes through :func:`repro.engine.batch.run_batch_traces` —
all replicas advance one access per NumPy op in a single
:class:`~repro.engine.batch.BatchReplay` kernel.  Any other engine
replays the seeds one hierarchy at a time.  The reported result is
bit-identical either way (the batch kernel's parity contract), so this
experiment doubles as an end-to-end engine cross-check: same content
address, same manifest entry, ~an order of magnitude less wall clock.
"""

from __future__ import annotations

import random
import statistics
import zlib
from typing import List

from repro.cache.configs import HierarchyParams
from repro.engine.batch import run_batch_traces
from repro.engine.selection import BATCH, current_engine
from repro.engine.trace import TraceResult, run_trace
from repro.engine.workloads import fig6_workload
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ProfileLike, resolve_profile

EXPERIMENT_ID = "trace_sweep"

#: Per-replica seed stride (coprime to the counts profiles produce).
SEED_STRIDE = 1009


def _sweep(
    params: HierarchyParams,
    seeds: List[int],
    traces: List[list],
) -> List[TraceResult]:
    """Replay every (seed, trace) pair, batched when the engine allows."""
    if current_engine() == BATCH:
        return run_batch_traces(params, seeds, traces)
    return [
        run_trace(params.build(rng=random.Random(seed)), trace)
        for seed, trace in zip(seeds, traces)
    ]


def run(
    *, profile: ProfileLike = None, seed: int = 0
) -> ExperimentResult:
    """Sweep seeded fig6-style replays over the paper's hierarchy."""
    profile = resolve_profile(profile)
    replicas = profile.count(quick=16, full=96)
    symbols = profile.count(quick=48, full=160)

    params = HierarchyParams.xeon()
    seeds = [seed * SEED_STRIDE + index for index in range(replicas)]
    traces = [
        list(fig6_workload(num_symbols=symbols, seed=run_seed))
        for run_seed in seeds
    ]
    results = _sweep(params, seeds, traces)

    hit_rates = [res.l1_hits / res.accesses for res in results]
    latencies = [res.total_latency / res.accesses for res in results]
    dirty = [res.dirty_eviction_count for res in results]
    # One digest over every replica's fingerprint: any engine divergence
    # anywhere in the sweep changes it.
    digest = zlib.crc32(
        repr([res.fingerprint() for res in results]).encode("ascii")
    )

    rows: List[List[object]] = [
        ["replicas", str(replicas)],
        ["accesses per replica", str(results[0].accesses)],
        ["L1 hit rate (mean)", f"{statistics.fmean(hit_rates):.4f}"],
        ["latency/access (mean cycles)", f"{statistics.fmean(latencies):.3f}"],
        ["dirty evictions per replica (mean)", f"{statistics.fmean(dirty):.2f}"],
        ["sweep fingerprint", f"{digest:08x}"],
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Seed-sweep replay statistics on the Xeon E5-2650 hierarchy",
        paper_reference="Section 5 methodology (statistics over seeded trials)",
        columns=["metric", "value"],
        rows=rows,
        series={
            "l1_hit_rate": [round(rate, 6) for rate in hit_rates],
            "dirty_evictions": dirty,
        },
        params={
            "replicas": replicas,
            "symbols_per_trace": symbols,
            "seed": seed,
            "seed_stride": SEED_STRIDE,
            "geometry": "xeon-e5-2650",
        },
        notes=(
            "Every value here is engine-invariant: --engine batch routes "
            "the sweep through the vectorized replica kernel, other "
            "engines replay seeds one at a time, and the sweep "
            "fingerprint certifies the streams matched bit for bit."
        ),
    )
