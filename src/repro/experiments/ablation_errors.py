"""Ablation — where do the channel's bit errors come from?

DESIGN.md claims the simulator's error behaviour *emerges* from four
modelled noise sources rather than being injected.  This ablation turns
them off one at a time at a high transmission rate (d = 1, the paper's
most fragile encoding) and reports the BER:

* **baseline** — everything on, random receiver phase;
* **no OS preemptions** — removes the bit-loss/insertion class;
* **no TSC read jitter** — removes the ambient flip floor on d = 1's
  11-cycle margin;
* **pinned receiver phase** — removes encode/measure straddles (the
  parties magically agree on phase; impossible in practice, shown here
  to isolate the phase-drift error source).

If any single ablation drives the BER to ~0 on its own, the other
sources are cosmetic; the expected (and measured) result is that each
removes a distinct share.
"""

from __future__ import annotations

import statistics
from typing import List, Optional

from repro.channels.encoding import BinaryDirtyCodec
from repro.channels.wb import WBChannelConfig, calibrate_decoder, run_wb_channel
from repro.cpu.noise import SchedulerNoise
from repro.cpu.tsc import TimestampCounter
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ProfileLike, resolve_profile

EXPERIMENT_ID = "ablation_errors"

PERIOD = 1600  # 1375 Kbps, the paper's "all d under 5%" operating point


def _mean_ber(
    messages: int,
    message_bits: int,
    seed: int,
    scheduler_noise: Optional[SchedulerNoise],
    tsc: Optional[TimestampCounter],
    receiver_phase: Optional[float],
) -> float:
    codec = BinaryDirtyCodec(d_on=1)
    decoder = calibrate_decoder(codec.levels, repetitions=60, seed=seed)
    bers = [
        run_wb_channel(
            WBChannelConfig(
                codec=codec,
                period_cycles=PERIOD,
                message_bits=message_bits,
                seed=seed * 13 + message,
                decoder=decoder,
                scheduler_noise=scheduler_noise,
                tsc=tsc,
                receiver_phase=receiver_phase,
            )
        ).bit_error_rate
        for message in range(messages)
    ]
    return statistics.fmean(bers)


def run(
    *, profile: ProfileLike = None, seed: int = 0
) -> ExperimentResult:
    """Decompose the d=1 error rate into its modelled sources."""
    profile = resolve_profile(profile)
    messages = profile.count(quick=6, full=40)
    message_bits = profile.count(quick=64, full=128)
    quiet_tsc = TimestampCounter(read_jitter=0)
    variants = (
        ("baseline (all sources on)", None, None, None),
        ("no OS preemptions", SchedulerNoise.disabled(), None, None),
        ("no TSC read jitter", None, quiet_tsc, None),
        ("pinned receiver phase", None, None, 0.5),
        (
            "all three removed",
            SchedulerNoise.disabled(),
            quiet_tsc,
            0.5,
        ),
    )
    rows: List[List[object]] = []
    for label, noise, tsc, phase in variants:
        ber = _mean_ber(messages, message_bits, seed, noise, tsc, phase)
        rows.append([label, f"{ber:.2%}"])
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Error-source ablation for the d=1 channel at 1375 Kbps",
        paper_reference="DESIGN.md error model (supports Figure 6 analysis)",
        columns=["configuration", "BER"],
        rows=rows,
        params={
            "messages_per_point": messages,
            "message_bits": message_bits,
            "period": PERIOD,
            "seed": seed,
        },
        notes=(
            "Each modelled noise source carries a distinct share of the "
            "error budget; with preemptions, TSC jitter and phase "
            "uncertainty all removed the channel is error-free, confirming "
            "no hidden error source remains in the simulator."
        ),
    )
