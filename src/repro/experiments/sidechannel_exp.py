"""Section 9 — side-channel scenarios built on the WB primitive.

Runs all three attacks against the Listing 2 gadgets and reports the
fraction of secret bits recovered.  The paper demonstrates feasibility
qualitatively; the reproduction quantifies it on the simulated machine.
"""

from __future__ import annotations

from typing import List

from repro.common.bits import random_bits
from repro.common.rng import ensure_rng
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ProfileLike, resolve_profile
from repro.sidechannel import (
    dirty_eviction_attack,
    dirty_state_attack,
    execution_time_attack,
)

EXPERIMENT_ID = "sidechannel"


def run(
    *, profile: ProfileLike = None, seed: int = 0
) -> ExperimentResult:
    """Reproduce the Section 9 attack scenarios."""
    profile = resolve_profile(profile)
    secret_bits = profile.count(quick=32, full=128)
    secret = random_bits(secret_bits, ensure_rng(seed + 1))
    attacks = (
        (
            "1: dirty-state, gadget (a), lines in same set",
            lambda: dirty_state_attack(secret, seed=seed, same_set=True),
        ),
        (
            "1b: dirty-state, gadget (a), lines in different sets",
            lambda: dirty_state_attack(secret, seed=seed, same_set=False),
        ),
        (
            "2: dirty-eviction, gadget (b)",
            lambda: dirty_eviction_attack(secret, seed=seed),
        ),
        (
            "3: execution-time, gadget (b)",
            lambda: execution_time_attack(secret, seed=seed, gadget="b"),
        ),
        (
            "3a: execution-time, gadget (a)",
            lambda: execution_time_attack(secret, seed=seed, gadget="a"),
        ),
    )
    rows: List[List[object]] = []
    for label, attack in attacks:
        result = attack()
        low, high = result.calibration_means
        rows.append(
            [
                label,
                f"{result.accuracy:.1%}",
                f"{low:.0f}/{high:.0f}",
                f"{result.threshold:.0f}",
            ]
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Secret recovery through WB side channels (Listing 2 gadgets)",
        paper_reference="Section 9",
        columns=[
            "scenario",
            "bits recovered",
            "calibration medians (0/1)",
            "threshold",
        ],
        rows=rows,
        params={"secret_bits": secret_bits, "seed": seed},
        notes=(
            "Scenario 1 works even with both gadget lines in one set — the "
            "case Prime+Probe and the LRU channel cannot decode. Scenario 3 "
            "succeeds cleanly here because the simulator's victim-call "
            "timing noise is milder than real hardware's; the paper needed "
            "two serial loads per branch for the same result."
        ),
    )
