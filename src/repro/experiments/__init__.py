"""Experiment modules: one per table/figure of the paper's evaluation.

==================  ===========================================
Experiment id       Paper artifact
==================  ===========================================
``table2``          Table 2  (eviction probability vs N)
``table4``          Table 4  (latency classes)
``table5``          Table 5  (random replacement probabilities)
``table6``          Table 6  (sender miss rates / stealthiness)
``table7``          Table 7  (sender loads per ms, WB vs LRU)
``fig4``            Figure 4 (latency CDFs per dirty count)
``fig5``            Figure 5 (binary traces @ 400 Kbps)
``fig6``            Figure 6 (BER vs rate, binary)
``fig7``            Figure 7 (multi-bit trace @ 1100 Kbps)
``fig8``            Figure 8 (BER vs rate, 2-bit symbols)
``random_policy``   Section 6.1 (channel under random policy)
``stability``       Section 6 / Figure 9 (noise robustness)
``defenses``        Section 8 (defense evaluation)
``sidechannel``     Section 9 (side-channel scenarios)
==================  ===========================================

Run from Python via :func:`run_experiment` / :func:`run_all`, or from the
shell via ``python -m repro.experiments`` (alias ``wb-experiments``).
"""

from repro.experiments.base import SCHEMA_VERSION, ExperimentResult
from repro.experiments.profiles import (
    FULL,
    QUICK,
    ProfileLike,
    RunProfile,
    available_profiles,
    resolve_profile,
)
from repro.experiments.registry import (
    available_experiments,
    run_all,
    run_experiment,
)

__all__ = [
    "FULL",
    "QUICK",
    "ExperimentResult",
    "ProfileLike",
    "RunProfile",
    "SCHEMA_VERSION",
    "available_experiments",
    "available_profiles",
    "resolve_profile",
    "run_all",
    "run_experiment",
]
