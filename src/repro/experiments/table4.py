"""Table 4 — latency classes of cache accesses on the modelled Xeon.

Paper's measurements (cycles):

=============================================  =======
L1D hit                                        4 - 5
L2 hit + replacing a clean cache line          10 - 12
L2 hit + replacing a dirty cache line          22 - 23
=============================================  =======

The experiment probes the hierarchy directly: it constructs each of the
three situations in one L1 set and reports the observed min-max band over
many repetitions.  These are the calibration anchors of the whole model
(see :mod:`repro.cache.latency`), so this experiment doubles as a
regression guard: if a refactor breaks the write-back penalty, this table
drifts and the channel silently weakens.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.common.rng import derive_rng, ensure_rng
from repro.cache.configs import make_xeon_hierarchy
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ProfileLike, resolve_profile
from repro.mem.address_space import AddressSpace, FrameAllocator
from repro.mem.sets import build_set_conflicting_lines

EXPERIMENT_ID = "table4"


def measure_latency_classes(
    repetitions: int, seed: int = 0
) -> Tuple[List[int], List[int], List[int]]:
    """Sample the three Table 4 latency classes.

    Returns (l1_hits, clean_replacements, dirty_replacements).
    """
    rng = ensure_rng(seed)
    hierarchy = make_xeon_hierarchy(rng=derive_rng(rng, "hierarchy"))
    allocator = FrameAllocator()
    space = AddressSpace(pid=0, allocator=allocator)
    layout = hierarchy.l1.layout
    target_set = 9
    ways = hierarchy.l1.associativity
    lines = build_set_conflicting_lines(space, layout, target_set, 2 * ways + 2)
    group_a = lines[:ways]
    group_b = lines[ways : 2 * ways]
    probes = lines[2 * ways :]

    l1_hits: List[int] = []
    clean_replacements: List[int] = []
    dirty_replacements: List[int] = []

    for rep in range(repetitions):
        # Load generation A over the dirty generation B left by the
        # previous iteration: each fill that evicts a dirty B line is a
        # "L2 hit + dirty replace" sample (first iteration misses to DRAM
        # and is filtered out by the hit_level check).
        for line in group_a:
            trace = hierarchy.load(space.translate(line), owner=0)
            if trace.hit_level == 2 and trace.l1_victim_dirty:
                dirty_replacements.append(trace.latency)
        # L1 hit: re-touch a resident line.
        l1_hits.append(hierarchy.load(space.translate(group_a[3]), owner=0).latency)
        # L2 hit replacing a clean victim: a probe line that alternates in
        # and out of the set, over the clean generation A.
        trace = hierarchy.load(space.translate(probes[rep % 2]), owner=0)
        if trace.hit_level == 2 and not trace.l1_victim_dirty:
            clean_replacements.append(trace.latency)
        # Refill the set with dirty generation-B lines for the next round.
        for line in group_b:
            hierarchy.store(space.translate(line), owner=0)
    return l1_hits, clean_replacements, dirty_replacements


def run(
    *, profile: ProfileLike = None, seed: int = 0
) -> ExperimentResult:
    """Reproduce Table 4."""
    profile = resolve_profile(profile)
    repetitions = profile.count(quick=60, full=1000)
    l1_hits, clean, dirty = measure_latency_classes(repetitions, seed)

    def band(samples: List[int]) -> str:
        if not samples:
            return "n/a"
        return f"{min(samples)}-{max(samples)}"

    rows = [
        ["Intel Xeon E5-2650 (model)", band(l1_hits), band(clean), band(dirty)],
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Latency of the cache access (cycles)",
        paper_reference="Table 4",
        columns=[
            "platform",
            "L1D hit",
            "L2 hit + clean replace",
            "L2 hit + dirty replace",
        ],
        rows=rows,
        params={"repetitions": repetitions, "seed": seed},
        notes=(
            "Paper: 4-5 / 10-12 / 22-23 cycles. The latency model is "
            "anchored on these numbers, and this experiment confirms the "
            "assembled hierarchy still reproduces them end to end."
        ),
        series={
            "l1_hits": l1_hits,
            "clean_replacements": clean,
            "dirty_replacements": dirty,
        },
    )
