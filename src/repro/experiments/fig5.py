"""Figure 5 — receiver traces at 400 Kbps for d = 1, 4, 8.

The paper shows the latency sequences a receiver observes while the
sender transmits random 128-bit messages with ``Ts = Tr = 5500`` (400
Kbps), for three binary encodings.  The experiment reproduces each trace:
the received latency series, the calibrated threshold (the dotted line of
the figure), and the decoded-vs-sent comparison of the 16-bit preamble.
"""

from __future__ import annotations

from typing import List

from repro.channels.encoding import BinaryDirtyCodec
from repro.channels.wb import WBChannelConfig, run_wb_channel
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ProfileLike, resolve_profile

EXPERIMENT_ID = "fig5"

D_VALUES = (1, 4, 8)
PERIOD = 5500


def run(
    *, profile: ProfileLike = None, seed: int = 0
) -> ExperimentResult:
    """Reproduce Figure 5."""
    profile = resolve_profile(profile)
    message_bits = profile.count(quick=64, full=128)
    rows: List[List[object]] = []
    series = {}
    for d in D_VALUES:
        config = WBChannelConfig(
            codec=BinaryDirtyCodec(d_on=d),
            period_cycles=PERIOD,
            message_bits=message_bits,
            seed=seed,
            calibration_repetitions=profile.count(quick=20, full=60),
        )
        result = run_wb_channel(config)
        threshold = result.decoder.thresholds[0]
        latencies = [latency for _, latency in result.samples]
        separation = result.decoder.separation()
        rows.append(
            [
                d,
                f"{result.rate_kbps:.0f}",
                f"{threshold:.0f}",
                f"{separation:.0f}",
                f"{result.bit_error_rate:.2%}",
                "".join(map(str, result.sent_bits[:16])),
                "".join(map(str, result.received_bits[:16])),
            ]
        )
        series[f"trace_d{d}"] = latencies
        series[f"threshold_d{d}"] = [threshold]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Receiver latency traces at 400 Kbps (Ts = Tr = 5500)",
        paper_reference="Figure 5",
        columns=[
            "d",
            "rate (Kbps)",
            "threshold (cy)",
            "level separation (cy)",
            "BER",
            "preamble sent",
            "preamble received",
        ],
        rows=rows,
        params={"period_cycles": PERIOD, "message_bits": message_bits, "seed": seed},
        notes=(
            "Each dirty line adds ~11 cycles to the receiver's replacement "
            "latency, so the 1-bands sit d*11 cycles above the 0-band and "
            "the separation grows with d, exactly as in the paper's traces."
        ),
        series=series,
    )
