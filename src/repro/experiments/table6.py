"""Table 6 — cache miss rates of the sender process (stealthiness).

Three scenarios per encoding (binary d=1, multi-bit d∈{0,3,5,8}):

* **L1 WB** — the sender runs the channel against the receiver;
* **sender & g++** — the sender shares the core with a benign
  compiler-like workload instead;
* **sender only** — the sender has the core to itself.

The paper's point (Section 7): the sender's counter profile under the
attack is *no more suspicious* than under a benign co-runner — the L1
miss rate stays tiny, and the L2 miss rate is actually lower during the
attack (its evicted lines come right back from L2) than when a compiler
thrashes the caches.  Absolute percentages depend on how much
non-channel traffic the process generates, which we model explicitly
(:mod:`repro.experiments.process_models`); the reproduced quantity is
the *pattern across scenarios*.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.bits import random_bits
from repro.common.rng import derive_rng, ensure_rng
from repro.channels.encoding import BinaryDirtyCodec, MultiBitDirtyCodec, SymbolCodec
from repro.channels.testbench import ChannelTestbench, TestbenchConfig
from repro.channels.wb.receiver import WBReceiverProgram
from repro.cpu.perf_counters import PerfReport
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ProfileLike, resolve_profile
from repro.experiments.process_models import InstrumentedWBSender, make_activity
from repro.mem.pointer_chase import PointerChaseList
from repro.mem.sets import build_replacement_set, build_set_conflicting_lines
from repro.noise.workloads import CompilerLikeWorkload

EXPERIMENT_ID = "table6"

SENDER_TID = 0
PEER_TID = 1
PERIOD = 11000
TARGET_SET = 21
#: Protocol epoch, after the whole-process warm-up (~1.3M cycles).
START_TIME = 2_000_000


def _sender_report(
    codec: SymbolCodec,
    scenario: str,
    num_symbols: int,
    seed: int,
) -> PerfReport:
    """Run one scenario and return the sender's perf counters."""
    bench = ChannelTestbench(TestbenchConfig(seed=seed))
    layout = bench.l1_layout
    sender_space = bench.new_space(pid=SENDER_TID)
    rng = ensure_rng(seed)
    message = random_bits(num_symbols * codec.bits_per_symbol, derive_rng(rng, "msg"))
    schedule = codec.encode_message(message)
    sender_lines = build_set_conflicting_lines(
        sender_space, layout, TARGET_SET, max(codec.max_dirty_lines, 1)
    )
    sender = InstrumentedWBSender(
        activity=make_activity(sender_space, seed=seed),
        lines=sender_lines,
        schedule=schedule,
        period=PERIOD,
        start_time=START_TIME,
    )
    bench.add_thread(SENDER_TID, sender_space, sender, name="wb-sender")

    if scenario == "wb":
        receiver_space = bench.new_space(pid=PEER_TID)
        set_rng = derive_rng(bench.rng, "sets")
        chase_a = PointerChaseList.from_lines(
            build_replacement_set(receiver_space, layout, TARGET_SET, 10, set_rng),
            rng=set_rng,
        )
        chase_b = PointerChaseList.from_lines(
            build_replacement_set(receiver_space, layout, TARGET_SET, 10, set_rng),
            rng=set_rng,
        )
        receiver = WBReceiverProgram(
            chase_a=chase_a,
            chase_b=chase_b,
            period=PERIOD,
            start_time=START_TIME,
            num_samples=len(schedule),
            phase=0.5,
        )
        bench.add_thread(PEER_TID, receiver_space, receiver, name="wb-receiver")
    elif scenario == "g++":
        peer_space = bench.new_space(pid=PEER_TID)
        # Sized so the compiler runs hot for the whole measurement window
        # (~8 cycles per access against the sender's PERIOD per symbol).
        workload = CompilerLikeWorkload(
            space=peer_space,
            total_accesses=(PERIOD // 8) * num_symbols,
            seed=seed + 1,
        )
        bench.add_thread(PEER_TID, peer_space, workload, name="g++-like")
    elif scenario != "alone":
        raise ValueError(f"unknown scenario {scenario!r}")

    core = bench.run()
    # Counters were reset at START_TIME (perf attach); report rates over
    # the measured window only.
    measured_cycles = max(1.0, core.elapsed_cycles() - START_TIME)
    return PerfReport.from_stats(bench.hierarchy.stats, SENDER_TID, measured_cycles)


def run(
    *, profile: ProfileLike = None, seed: int = 0
) -> ExperimentResult:
    """Reproduce Table 6."""
    profile = resolve_profile(profile)
    num_symbols = profile.count(quick=24, full=128)
    codecs: Dict[str, SymbolCodec] = {
        "binary (d=1)": BinaryDirtyCodec(d_on=1),
        "multi-bit (d=0/3/5/8)": MultiBitDirtyCodec(),
    }
    scenarios = (("L1 WB", "wb"), ("sender & g++", "g++"), ("sender only", "alone"))
    rows: List[List[object]] = []
    reports: Dict[str, PerfReport] = {}
    for codec_name, codec in codecs.items():
        for scenario_name, scenario_key in scenarios:
            report = _sender_report(codec, scenario_key, num_symbols, seed)
            reports[f"{codec_name}/{scenario_name}"] = report
            rows.append(
                [
                    codec_name,
                    scenario_name,
                    f"{report.l1_miss_rate:.2%}",
                    f"{report.l2_miss_rate:.2%}",
                    f"{report.llc_miss_rate:.2%}",
                ]
            )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Cache miss rates of the sender process",
        paper_reference="Table 6",
        columns=["encoding", "scenario", "L1D miss", "L2 miss", "LLC miss"],
        rows=rows,
        params={"num_symbols": num_symbols, "period": PERIOD, "seed": seed},
        notes=(
            "Orderings reproduced: the sender's L1 miss rate under attack "
            "is indistinguishable from sharing the core with a compiler "
            "(both a few tenths above sender-only) and multi-bit > binary; "
            "the WB run has the lowest "
            "L2 miss rate (evicted channel lines return from L2); the LLC "
            "miss rate collapses only in the g++ scenario. Deviation: our "
            "compiler model pressures the shared L2 harder than the paper's "
            "g++, so its L2 column sits above sender-only instead of below. "
            "Conclusion unchanged: miss-rate detectors cannot separate the "
            "WB sender from benign core-sharing."
        ),
    )
