"""Ablation — replacement-set size L: the paper's Section 4.1 design rule.

The paper chooses L = 10 because on the E5-2650 ten accesses guarantee
eviction (Table 2).  This ablation sweeps L for the full covert channel
on two L1 policies and reports BER, showing:

* on Tree-PLRU, L = 8 is marginal and L >= 9 suffices (gem5's Table 2
  threshold);
* on the E5-2650 surrogate (dirty-protecting LRU), L <= 9 leaves dirty
  lines behind — inter-symbol interference — while L = 10 restores the
  clean channel, validating the paper's parameter choice end to end;
* oversizing (L = 12) buys nothing but receiver time.
"""

from __future__ import annotations

import statistics
from typing import Dict, List

from repro.channels.encoding import BinaryDirtyCodec
from repro.channels.wb import WBChannelConfig, calibrate_decoder, run_wb_channel
from repro.common.errors import ConfigurationError
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ProfileLike, resolve_profile

EXPERIMENT_ID = "ablation_replacement_set"

SIZES = (8, 9, 10, 12)
POLICIES = ("tree-plru", "e5-2650")
PERIOD = 5500


def run(
    *, profile: ProfileLike = None, seed: int = 0
) -> ExperimentResult:
    """Sweep the replacement-set size against two L1 policies."""
    profile = resolve_profile(profile)
    messages = profile.count(quick=4, full=24)
    message_bits = profile.count(quick=64, full=128)
    codec = BinaryDirtyCodec(d_on=3)
    results: Dict[str, Dict[int, float]] = {}
    for policy in POLICIES:
        overrides = {"l1_policy": policy}
        results[policy] = {}
        for size in SIZES:
            try:
                decoder = calibrate_decoder(
                    codec.levels,
                    repetitions=40,
                    replacement_set_size=size,
                    seed=seed,
                    hierarchy_overrides=overrides,
                )
            except ConfigurationError:
                results[policy][size] = float("nan")
                continue
            bers = [
                run_wb_channel(
                    WBChannelConfig(
                        codec=codec,
                        period_cycles=PERIOD,
                        message_bits=message_bits,
                        seed=seed * 17 + message,
                        decoder=decoder,
                        hierarchy_overrides=overrides,
                        replacement_set_size=size,
                    )
                ).bit_error_rate
                for message in range(messages)
            ]
            results[policy][size] = statistics.fmean(bers)

    rows: List[List[object]] = []
    for size in SIZES:
        row: List[object] = [size]
        for policy in POLICIES:
            value = results[policy][size]
            row.append("no signal" if value != value else f"{value:.2%}")
        rows.append(row)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Channel BER vs replacement-set size L (d=3, 400 Kbps)",
        paper_reference="Section 4.1 (the L=10 design rule)",
        columns=["L"] + [f"BER ({policy})" for policy in POLICIES],
        rows=rows,
        params={
            "messages_per_point": messages,
            "message_bits": message_bits,
            "period": PERIOD,
            "seed": seed,
        },
        notes=(
            "L at or below the guaranteed-eviction threshold leaves dirty "
            "lines behind and the residue leaks into later symbols; the "
            "paper's L=10 is the smallest size that is clean on both the "
            "Tree-PLRU model and the E5-2650 surrogate."
        ),
    )
