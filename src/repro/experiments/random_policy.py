"""Section 6.1 — the WB channel under a random replacement policy.

Two claims to reproduce:

1. the analytic probability ``p = 1 - ((W - d)/W)^L`` is ≈99.1% at
   ``d = 3, L = 10`` (checked against Monte-Carlo in the Table 5
   experiment; restated here as the design rule);
2. with appropriate ``d`` and ``L`` (the paper suggests d=3, L=12) a
   *stable covert channel* still works on a randomly-replaced L1 —
   random replacement defeats LRU-state channels but not the WB channel.

The experiment runs the full covert channel on a random-replacement L1
across (d, L) configurations and reports BER, next to the analytic
eviction probability for context.
"""

from __future__ import annotations

import statistics
from typing import List

from repro.channels.encoding import BinaryDirtyCodec
from repro.channels.wb import WBChannelConfig, calibrate_decoder, run_wb_channel
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ProfileLike, resolve_profile
from repro.experiments.table5 import analytic_probability

EXPERIMENT_ID = "random_policy"

CONFIGS = ((1, 10), (2, 10), (3, 10), (3, 12), (8, 12))
PERIOD = 5500


def run(
    *, profile: ProfileLike = None, seed: int = 0
) -> ExperimentResult:
    """Reproduce the Section 6.1 random-replacement channel study."""
    profile = resolve_profile(profile)
    messages = profile.count(quick=4, full=30)
    message_bits = profile.count(quick=64, full=128)
    overrides = {"l1_policy": "random"}
    rows: List[List[object]] = []
    for d_on, replacement_size in CONFIGS:
        codec = BinaryDirtyCodec(d_on=d_on)
        decoder = calibrate_decoder(
            codec.levels,
            repetitions=profile.count(quick=20, full=60),
            replacement_set_size=replacement_size,
            seed=seed,
            hierarchy_overrides=overrides,
        )
        bers = [
            run_wb_channel(
                WBChannelConfig(
                    codec=codec,
                    period_cycles=PERIOD,
                    message_bits=message_bits,
                    seed=seed * 1009 + message,
                    decoder=decoder,
                    hierarchy_overrides=overrides,
                    replacement_set_size=replacement_size,
                )
            ).bit_error_rate
            for message in range(messages)
        ]
        rows.append(
            [
                d_on,
                replacement_size,
                f"{analytic_probability(8, d_on, replacement_size):.1%}",
                f"{statistics.fmean(bers):.2%}",
            ]
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="WB channel on a random-replacement L1 (400 Kbps)",
        paper_reference="Section 6.1 (formula + Table 5 conclusion)",
        columns=["d", "L", "analytic P(>=1 dirty evicted)", "channel BER"],
        rows=rows,
        params={
            "messages_per_config": messages,
            "message_bits": message_bits,
            "period": PERIOD,
            "seed": seed,
        },
        notes=(
            "BER falls monotonically as d and L grow (leftover dirty lines "
            "that survive one traversal are the residual error source); at "
            "d=8, L=12 the channel is solid again. 'Simply adopting a "
            "random replacement policy still cannot effectively defeat the "
            "WB channel' (Section 6.1)."
        ),
    )
