"""Cross-core WB channel — the dirty-state leak without shared SMT.

The paper's channel needs sender and receiver co-resident on one SMT
core, sharing an L1D.  This experiment drops that requirement: with the
:mod:`repro.coherence` multi-core model, a line the sender (core 0)
leaves Modified must be drained by a coherence write-back before the
receiver's (core 1) load completes — the M→S downgrade adds the same
write-back penalty the single-core channel measures, so the dirty bit
stays timing-visible across private caches.

The run transmits messages through
:mod:`repro.channels.wb.cross_core` while the Section 7 online
detectors watch **every core**, re-asking the stealth question in the
cross-core setting: does the channel's miss footprint, or its
coherence write-back signature, give it away first?

Compiled from :func:`repro.scenario.library.cross_core_wb_spec`; this
module keeps only the result shaping.
"""

from __future__ import annotations

from typing import List

from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ProfileLike, resolve_profile
from repro.scenario.compile import compile_scenario
from repro.scenario.library import cross_core_wb_spec

EXPERIMENT_ID = "cross_core_wb"

#: The default topology: sender core and receiver core over a shared L2.
CORES = 2
#: Symbol period — cheaper per symbol than the L2 channel (no eviction
#: sweeps), pricier than the L1 channel (per-line downgrade round-trips).
PERIOD = 9000
#: Dirty lines per 1-bit; four downgrade write-backs ≈ 70-cycle gap.
D_ON = 4


def run(*, profile: ProfileLike = None, seed: int = 0) -> ExperimentResult:
    """Run the cross-core transmission with per-core detectors attached."""
    profile = resolve_profile(profile)
    measurement = compile_scenario(cross_core_wb_spec(), profile, seed).measure()

    rows: List[List[object]] = []
    for name in measurement.detector_names:
        rows.append(
            [
                name,
                f"{measurement.thresholds[name]:.2f}",
                f"{measurement.alarm_rates[name]:.1%}",
            ]
        )

    intact = measurement.all_payloads_intact
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Cross-core WB channel over MESI downgrade write-backs",
        paper_reference="coherence extension (beyond the paper's SMT setting)",
        columns=["detector", "threshold", "channel flagged"],
        rows=rows,
        params={
            "cores": measurement.cores,
            "period": PERIOD,
            "d_on": D_ON,
            "messages": measurement.messages,
            "message_bits": measurement.message_bits,
            "rate_kbps": measurement.rate_kbps,
            "mean_ber": measurement.mean_ber,
            "all_payloads_intact": intact,
            "coherence": measurement.coherence,
            "alarm_rates": measurement.alarm_rates,
            "stealth_holds": measurement.stealth_holds,
            "seed": seed,
        },
        series=measurement.series,
        notes=(
            (
                "Payload decoded bit-exactly across cores: every 1-bit "
                "surfaced as M-to-S downgrade write-backs in the "
                "receiver's load latency. "
                if intact
                else f"Mean BER {measurement.mean_ber:.1%} across cores. "
            )
            + "Per-core detectors were calibrated on a two-core benign "
            "co-run; alarm rates above show which core's view flags the "
            "channel."
        ),
    )
