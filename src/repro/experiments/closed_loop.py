"""Closed-loop defense — live fusion turns detection into response.

The online-detection experiment scores suspects after the fact; this one
closes the loop *while the channel runs*.  Each suspect co-runs with a
decoding receiver whose chase loads pace three calibrated detectors
(dual-window :class:`~repro.telemetry.detectors.MissRateMonitor` plus a
:class:`~repro.telemetry.detectors.WritebackBurstDetector`); their score
streams feed a :class:`~repro.orchestration.aggregator.FleetAggregator`
whose k-of-n fused alarm triggers a
:class:`~repro.orchestration.responder.DefenseResponder`, flipping the
live hierarchy to a :mod:`repro.defenses` defense at a deterministic
event boundary.

Expected qualitative result, the §7/§8 asymmetry made operational: the
continuously-modulating (LRU-style) sender trips the fused alarm and
loses the channel — post-flip capacity collapses by at least an order
of magnitude — while the WB sender's one-store-per-bit pattern
completes its whole payload without the alarm ever firing.

The co-runs, pilot decoder calibration, fusion and response are compiled
from :func:`repro.scenario.library.closed_loop_defense_spec` and
executed by :mod:`repro.scenario.closed_loop`; this module keeps only
the result shaping.  The constants below mirror that spec's defaults.
"""

from __future__ import annotations

from typing import List

from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ProfileLike, resolve_profile
from repro.scenario.compile import compile_scenario
from repro.scenario.library import closed_loop_defense_spec
from repro.scenario.runner import _shape_closed_loop_defense

EXPERIMENT_ID = "closed_loop_defense"

SUSPECT_TID = 0
RECEIVER_TID = 1
#: Same bit period as the online-detection comparison — matched Ts.
PERIOD = 11000
TARGET_SET = 21
START_TIME = 2_000_000
#: The fused decision rule the aggregator applies.
FUSION_K = 2
FUSION_WINDOW = 300
#: Defense the responder arms (see :mod:`repro.orchestration.responder`).
DEFENSE = "write_through"


def run(
    *, profile: ProfileLike = None, seed: int = 0
) -> ExperimentResult:
    """Run the closed-loop defense experiment."""
    profile = resolve_profile(profile)
    spec = closed_loop_defense_spec()
    measurement = compile_scenario(spec, profile, seed).measure()
    shaped = _shape_closed_loop_defense(spec, measurement, seed)

    asymmetry_holds = bool(measurement.asymmetry_holds)
    notes_parts: List[str] = []
    if asymmetry_holds:
        notes_parts.append(
            "The modulating sender trips the fused alarm and the defense "
            "flip collapses its channel (post-flip capacity at least 10x "
            "below pre-flip), while the WB sender finishes its payload "
            "with no alarm — the paper's stealth asymmetry, closed into "
            "a live detect-and-respond loop."
        )
    else:
        notes_parts.append(
            "CLOSED-LOOP ASYMMETRY NOT REPRODUCED at these settings: "
            "see outcomes in params."
        )
    notes_parts.append(f"Fusion rule: {measurement.fusion_rule}.")

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Closed-loop defense: fused detection flips the hierarchy live",
        paper_reference="Sections 7-8, closed into a live loop",
        columns=shaped["columns"],
        rows=shaped["rows"],
        params=shaped["params"],
        series=shaped["series"],
        notes=" ".join(notes_parts),
    )
