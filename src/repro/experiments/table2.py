"""Table 2 — probability that a resident line is evicted by N fresh lines.

The paper accesses a (dirty) line 0 and then a replacement set of N
distinct lines, repeating 10 000 times per configuration, for three
policies: true LRU (gem5), Tree-PLRU (gem5) and the real Xeon E5-2650.

Paper's numbers:

====  =====  ==========  =========
N     LRU    Tree-PLRU   E5-2650
====  =====  ==========  =========
8     100%   94.3%       68.8%
9     100%   100%        81.7%
10    100%   100%        100%
====  =====  ==========  =========

The E5-2650 column is reproduced by the :class:`NoisyTreePLRU` behavioural
surrogate (see DESIGN.md); the LRU and Tree-PLRU columns are pure policy
properties and match structurally.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.common.rng import derive_rng, ensure_rng
from repro.cache.cache_set import CacheSet
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ProfileLike, resolve_profile
from repro.replacement.registry import make_policy_factory

EXPERIMENT_ID = "table2"

#: Policies shown in the paper's three columns.
POLICIES = ("lru", "tree-plru", "e5-2650")
REPLACEMENT_SET_SIZES = (8, 9, 10)


def eviction_probability(
    policy_name: str,
    replacement_set_size: int,
    trials: int,
    rng: random.Random,
    ways: int = 8,
) -> float:
    """P(line 0 evicted) after accessing ``replacement_set_size`` lines.

    Each trial starts from a full set with randomized policy metadata
    (modelling the unknown state left by prior traffic), touches line 0
    (tag 0), then fills N fresh lines and checks whether tag 0 survived.
    """
    factory = make_policy_factory(policy_name)
    evicted = 0
    for trial in range(trials):
        policy = factory(ways, derive_rng(rng, f"{policy_name}/{trial}"))
        cache_set = CacheSet(ways, policy)
        address_of = lambda tag, set_index: tag  # noqa: E731 - trivial reconstructor
        # Pre-fill with unrelated resident lines (tags 1000+).
        for prior in range(ways):
            cache_set.fill(1000 + prior, dirty=False, owner=None,
                           set_index=0, address_of=address_of)
        cache_set.randomize_policy_state()
        # Access line 0 (a store in the paper; only recency matters here).
        cache_set.fill(0, dirty=True, owner=None, set_index=0, address_of=address_of)
        # Access the replacement set: N fresh tags.
        for fresh in range(1, replacement_set_size + 1):
            if cache_set.find(fresh) is None:
                cache_set.fill(fresh, dirty=False, owner=None,
                               set_index=0, address_of=address_of)
        if cache_set.find(0) is None:
            evicted += 1
    return evicted / trials


def run(
    *, profile: ProfileLike = None, seed: int = 0
) -> ExperimentResult:
    """Reproduce Table 2."""
    profile = resolve_profile(profile)
    trials = profile.count(quick=400, full=10000)
    rng = ensure_rng(seed)
    probabilities: Dict[str, Dict[int, float]] = {}
    for policy in POLICIES:
        probabilities[policy] = {
            size: eviction_probability(policy, size, trials, derive_rng(rng, policy))
            for size in REPLACEMENT_SET_SIZES
        }
    rows: List[List[object]] = []
    for size in REPLACEMENT_SET_SIZES:
        rows.append(
            [size]
            + [f"{probabilities[policy][size]:.1%}" for policy in POLICIES]
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Probability of line 0 being evicted",
        paper_reference="Table 2",
        columns=["N", "LRU", "Tree-PLRU", "E5-2650 (surrogate)"],
        rows=rows,
        params={"trials": trials, "seed": seed},
        notes=(
            "LRU matches the paper (100% from N=8). Our Tree-PLRU's "
            "miss-victim walk provably covers all 8 ways in 8 fills, so it "
            "reads 100% at N=8 where gem5's implementation measured 94.3% "
            "— same crossover (certain from N=9), different tail. The "
            "E5-2650 column comes from the DirtyProtectingLRU surrogate "
            "calibrated to the paper's 68.8%/81.7%/100% (see DESIGN.md)."
        ),
    )
