"""Figure 7 — multi-bit receiver trace at 1100 Kbps.

The paper transmits 256-bit random messages as 128 two-bit symbols with
``d ∈ {0, 3, 5, 8}`` mapping to ``00, 01, 10, 11`` and ``Ts = Tr = 4000``
(1100 Kbps), and shows the four latency bands with three thresholds.

The run is compiled from :func:`repro.scenario.library.fig7_spec`; this
module keeps only the figure's result shaping.
"""

from __future__ import annotations

from typing import List

from repro.channels.encoding import MultiBitDirtyCodec
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ProfileLike, resolve_profile
from repro.scenario.compile import compile_scenario
from repro.scenario.library import fig7_spec

EXPERIMENT_ID = "fig7"

PERIOD = 4000


def run(
    *, profile: ProfileLike = None, seed: int = 0
) -> ExperimentResult:
    """Reproduce Figure 7."""
    profile = resolve_profile(profile)
    spec = fig7_spec()
    result = compile_scenario(spec, profile, seed).measure()
    message_bits = spec.params.message_bits.resolve(profile)
    codec = MultiBitDirtyCodec()
    rows: List[List[object]] = []
    for (symbol, level), median in zip(
        codec.symbol_table(), result.decoder.medians
    ):
        rows.append(
            [
                format(symbol, "02b"),
                level,
                f"{median:.0f}",
            ]
        )
    latencies = [latency for _, latency in result.samples]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Multi-bit receiver trace at 1100 Kbps (Ts = Tr = 4000)",
        paper_reference="Figure 7",
        columns=["symbol", "dirty lines (d)", "median latency (cy)"],
        rows=rows,
        params={
            "period_cycles": PERIOD,
            "message_bits": message_bits,
            "seed": seed,
            "ber": result.bit_error_rate,
        },
        notes=(
            f"BER {result.bit_error_rate:.2%} over {message_bits} bits at "
            f"{result.rate_kbps:.0f} Kbps; the four bands (d=0,3,5,8) are "
            "separated by >=2 write-back penalties each, and the paper's "
            "non-adjacent level choice is what keeps them apart under "
            "pollution."
        ),
        series={
            "trace": latencies,
            "thresholds": list(result.decoder.thresholds),
            "sent_bits": list(result.sent_bits),
            "received_bits": list(result.received_bits),
        },
    )
