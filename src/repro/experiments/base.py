"""Experiment framework: structured results and text rendering.

Every experiment module exposes ``run(quick=False, seed=0) ->
ExperimentResult``.  ``quick=True`` shrinks repetition counts so the
benchmark suite and CI stay fast; the full settings match the paper's
(e.g. 10 000 trials for Table 2, 1000 measurements for Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.common.errors import ConfigurationError


@dataclass
class ExperimentResult:
    """One reproduced table or figure, as data plus provenance."""

    experiment_id: str
    title: str
    paper_reference: str
    columns: List[str]
    rows: List[List[object]]
    #: Free-form commentary: what matched the paper, what deviated, why.
    notes: str = ""
    #: Parameters the run used (repetitions, seeds, ...).
    params: Dict[str, object] = field(default_factory=dict)
    #: Extra series keyed by name (figures attach raw samples here).
    series: Dict[str, Sequence[object]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for index, row in enumerate(self.rows):
            if len(row) != len(self.columns):
                raise ConfigurationError(
                    f"row {index} has {len(row)} cells but there are "
                    f"{len(self.columns)} columns"
                )

    def render(self) -> str:
        """Plain-text table in the style of the paper's tables."""
        header = [self.title, f"(reproduces {self.paper_reference})", ""]
        cells = [self.columns] + [
            [_format_cell(value) for value in row] for row in self.rows
        ]
        widths = [
            max(len(row[col]) for row in cells) for col in range(len(self.columns))
        ]
        lines = []
        for row_index, row in enumerate(cells):
            line = "  ".join(value.rjust(width) for value, width in zip(row, widths))
            lines.append(line)
            if row_index == 0:
                lines.append("  ".join("-" * width for width in widths))
        out = header + lines
        if self.notes:
            out += ["", f"notes: {self.notes}"]
        return "\n".join(out)

    def row_dict(self, key_column: str) -> Dict[object, List[object]]:
        """Index the rows by the value in ``key_column`` (test helper)."""
        try:
            key_index = self.columns.index(key_column)
        except ValueError:
            raise ConfigurationError(
                f"no column {key_column!r}; columns are {self.columns}"
            )
        return {row[key_index]: row for row in self.rows}


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
