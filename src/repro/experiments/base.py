"""Experiment framework: structured results, serialization, rendering.

Every experiment module exposes ``run(profile=None, seed=0) ->
ExperimentResult``.  The profile (see :mod:`repro.experiments.profiles`)
selects repetition counts: ``"quick"`` shrinks them so the benchmark suite
and CI stay fast; ``"full"`` (the default) matches the paper's settings
(e.g. 10 000 trials for Table 2, 1000 measurements for Figure 4).

Results serialise to JSON (:meth:`ExperimentResult.to_json`) so the
parallel runner can persist run manifests and figures can be re-rendered
without recomputation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.common.errors import ConfigurationError

#: Version stamp embedded in serialised results; bump on breaking changes
#: to the JSON layout so old manifests fail loudly instead of silently.
SCHEMA_VERSION = 1


@dataclass
class ExperimentResult:
    """One reproduced table or figure, as data plus provenance."""

    experiment_id: str
    title: str
    paper_reference: str
    columns: List[str]
    rows: List[List[object]]
    #: Free-form commentary: what matched the paper, what deviated, why.
    notes: str = ""
    #: Parameters the run used (repetitions, seeds, ...).
    params: Dict[str, object] = field(default_factory=dict)
    #: Extra series keyed by name (figures attach raw samples here).
    series: Dict[str, Sequence[object]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for index, row in enumerate(self.rows):
            if len(row) != len(self.columns):
                raise ConfigurationError(
                    f"row {index} has {len(row)} cells but there are "
                    f"{len(self.columns)} columns"
                )

    def render(self) -> str:
        """Plain-text table in the style of the paper's tables."""
        header = [self.title, f"(reproduces {self.paper_reference})", ""]
        cells = [self.columns] + [
            [_format_cell(value) for value in row] for row in self.rows
        ]
        widths = [
            max(len(row[col]) for row in cells) for col in range(len(self.columns))
        ]
        lines = []
        for row_index, row in enumerate(cells):
            line = "  ".join(value.rjust(width) for value, width in zip(row, widths))
            lines.append(line)
            if row_index == 0:
                lines.append("  ".join("-" * width for width in widths))
        out = header + lines
        if self.notes:
            out += ["", f"notes: {self.notes}"]
        return "\n".join(out)

    def row_dict(self, key_column: str) -> Dict[object, List[object]]:
        """Index the rows by the value in ``key_column`` (test helper)."""
        try:
            key_index = self.columns.index(key_column)
        except ValueError:
            raise ConfigurationError(
                f"no column {key_column!r}; columns are {self.columns}"
            )
        return {row[key_index]: row for row in self.rows}

    # ------------------------------------------------------------------
    # Serialization (run manifests, persisted figures)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form; inverse of :meth:`from_dict`.

        Tuples (receiver samples and the like) normalise to lists — JSON
        has no tuple type — so a round trip is lossless at the JSON level:
        ``from_dict(d).to_dict() == d``.
        """
        return {
            "schema_version": SCHEMA_VERSION,
            "experiment_id": self.experiment_id,
            "title": self.title,
            "paper_reference": self.paper_reference,
            "columns": list(self.columns),
            "rows": [_plain(row) for row in self.rows],
            "notes": self.notes,
            "params": {key: _plain(value) for key, value in self.params.items()},
            "series": {key: _plain(list(value)) for key, value in self.series.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output."""
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported result schema_version {version!r}; "
                f"this library reads version {SCHEMA_VERSION}"
            )
        return cls(
            experiment_id=data["experiment_id"],
            title=data["title"],
            paper_reference=data["paper_reference"],
            columns=list(data["columns"]),
            rows=[list(row) for row in data["rows"]],
            notes=data.get("notes", ""),
            params=dict(data.get("params", {})),
            series={key: list(value) for key, value in data.get("series", {}).items()},
        )

    def to_json(self, indent: int = None) -> str:
        """Serialise to a JSON string (``sort_keys`` for stable diffs)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


def _plain(value: object) -> object:
    """Recursively normalise tuples to lists for JSON serialisation."""
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    if isinstance(value, dict):
        return {key: _plain(item) for key, item in value.items()}
    return value


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
