"""Online detection — the Section 7 stealth claim against live monitors.

Table 7 compares end-of-run counter totals; real monitors watch the
channel *while it runs*.  This experiment puts the WB sender, the
LRU-channel sender (the paper's stealth baseline, Xiong & Szefer) and a
benign co-runner — all carrying the identical whole-process activity of
:mod:`repro.experiments.process_models`, all at the same bit period —
under the two online detectors of :mod:`repro.telemetry.detectors`:

* :class:`~repro.telemetry.detectors.MissRateMonitor` — CloudRadar-style
  windowed counter signatures;
* :class:`~repro.telemetry.detectors.WritebackBurstDetector` —
  CC-Hunter-style autocorrelation of the suspect's L1 conflict train.

Each scenario shares the machine with a periodic *prober* sweeping the
target set (a receiver-like co-runner: it supplies the cyclic
interference CC-Hunter listens for and keeps the suspect's channel lines
contended).  Detectors are calibrated on a benign run (disjoint seed),
thresholds sit ``THRESHOLD_SIGMAS`` above the calibration scores, and
the measured runs report per-window / per-segment flag rates plus a
ROC-style threshold sweep.

Expected qualitative result, matching the paper: the LRU sender's
continuous modulation loads deviate hard from the benign envelope on
both views, while the WB sender's single posted store per bit hides
inside it — LRU flagged at a strictly higher rate than WB at matched
bandwidth, with the benign false-positive rate reported alongside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common.bits import random_bits
from repro.common.rng import derive_rng, ensure_rng
from repro.channels.encoding import BinaryDirtyCodec
from repro.channels.testbench import ChannelTestbench, TestbenchConfig
from repro.cpu.ops import Load, SpinUntil
from repro.cpu.thread import OpGenerator, Program
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ProfileLike, resolve_profile
from repro.experiments.process_models import (
    InstrumentedBenignProcess,
    InstrumentedLRUSender,
    InstrumentedWBSender,
    make_activity,
)
from repro.mem.sets import build_set_conflicting_lines
from repro.telemetry.bus import TelemetryBus
from repro.telemetry.detectors import (
    Baseline,
    MissRateMonitor,
    WritebackBurstDetector,
    detection_rate,
    suggest_threshold,
    threshold_sweep,
)

EXPERIMENT_ID = "online_detection"

SUSPECT_TID = 0
PROBER_TID = 1
#: Same bit period as Table 7 — "matched bandwidth" means matched Ts.
PERIOD = 11000
TARGET_SET = 21
START_TIME = 2_000_000

#: Receiver-like co-runner: lines swept per visit and visits per period.
PROBER_LINES = 10
PROBER_SWEEPS_PER_PERIOD = 10

#: The prober doubles as the monitors' sampling thread: its loads are
#: paced in cycles, so windows measured in prober L1 accesses are
#: windows in wall-clock time (how real counter monitors sample).
#: Monitor window = one bit period's worth of prober accesses; burst
#: window = 1/5 period, so the conflict train samples each bit 5 times.
MONITOR_WINDOW = PROBER_LINES * PROBER_SWEEPS_PER_PERIOD
BURST_WINDOW = PROBER_LINES * 2
#: Windows per autocorrelation segment (6 bit periods) and lags inspected.
SEGMENT = 30
MAX_LAG = 12
#: Detection threshold: this many sigmas above the calibration scores.
THRESHOLD_SIGMAS = 3.0

#: Seed offset separating the calibration run from the measured runs.
_CALIBRATION_SEED_OFFSET = 7919


@dataclass
class _PeriodicProber(Program):
    """Sweeps the target set at a fixed cycle cadence, start to finish.

    The cadence serves two detector needs at once: it contends the
    monitored set (so channel state changes surface as conflict events
    attributed to the suspect's victim lines) and, because it is paced
    in *cycles*, it anchors the logical-access clock to wall time.
    """

    lines: Sequence[int]
    interval: int
    end_time: int

    def run(self) -> OpGenerator:
        t = 0
        while t < self.end_time:
            for line in self.lines:
                yield Load(line)
            t = yield SpinUntil(t + self.interval)


def _run_scenario(
    channel: str,
    num_symbols: int,
    seed: int,
    subscribers: Sequence[object],
) -> None:
    """One co-run: suspect (wb/lru/benign) + prober, events to subscribers."""
    bench = ChannelTestbench(TestbenchConfig(seed=seed))
    hierarchy = bench.hierarchy
    bus = hierarchy.telemetry
    owned_bus = bus is None or not bus.enabled
    if owned_bus:
        bus = hierarchy.attach_telemetry(TelemetryBus())
    for subscriber in subscribers:
        bus.subscribe(subscriber)
    try:
        rng = ensure_rng(seed)
        message = random_bits(num_symbols, derive_rng(rng, "msg"))
        space = bench.new_space(pid=SUSPECT_TID)
        activity = make_activity(space, seed=seed)
        lines = build_set_conflicting_lines(
            space, bench.l1_layout, TARGET_SET, 1
        )
        if channel == "wb":
            suspect: Program = InstrumentedWBSender(
                activity=activity,
                lines=lines,
                schedule=BinaryDirtyCodec(d_on=1).encode_message(message),
                period=PERIOD,
                start_time=START_TIME,
            )
        elif channel == "lru":
            suspect = InstrumentedLRUSender(
                activity=activity,
                line=lines[0],
                message=message,
                period=PERIOD,
                start_time=START_TIME,
            )
        elif channel == "benign":
            suspect = InstrumentedBenignProcess(
                activity=activity,
                periods=num_symbols,
                period=PERIOD,
                start_time=START_TIME,
            )
        else:
            raise ValueError(f"unknown channel {channel!r}")
        prober_space = bench.new_space(pid=PROBER_TID)
        prober_lines = build_set_conflicting_lines(
            prober_space, bench.l1_layout, TARGET_SET, PROBER_LINES
        )
        prober = _PeriodicProber(
            lines=prober_lines,
            interval=PERIOD // PROBER_SWEEPS_PER_PERIOD,
            end_time=START_TIME + num_symbols * PERIOD,
        )
        bench.add_thread(SUSPECT_TID, space, suspect, name=f"{channel}-suspect")
        bench.add_thread(PROBER_TID, prober_space, prober, name="prober")
        bench.run()
    finally:
        for subscriber in subscribers:
            finish = getattr(subscriber, "finish", None)
            if finish is not None:
                finish()
            bus.unsubscribe(subscriber)
        if owned_bus:
            hierarchy.detach_telemetry()


def _make_detectors(
    monitor_baseline: Optional[Baseline] = None,
    burst_baseline: Optional[Baseline] = None,
) -> Dict[str, object]:
    return {
        "monitor": MissRateMonitor(
            window=MONITOR_WINDOW,
            owner=SUSPECT_TID,
            clock_owner=PROBER_TID,
            baseline=monitor_baseline,
        ),
        "burst": WritebackBurstDetector(
            window=BURST_WINDOW,
            segment=SEGMENT,
            max_lag=MAX_LAG,
            owner=SUSPECT_TID,
            clock_owner=PROBER_TID,
            baseline=burst_baseline,
        ),
    }


def _sweep_thresholds(all_scores: List[float], points: int = 13) -> List[float]:
    top = max(all_scores) if all_scores else 1.0
    if top <= 0.0:
        top = 1.0
    return [top * index / (points - 1) for index in range(points)]


def run(
    profile: ProfileLike = None, seed: int = 0
) -> ExperimentResult:
    """Run the online-detection comparison."""
    profile = resolve_profile(profile)
    num_symbols = profile.count(quick=48, full=192)

    # Phase 1 — calibrate both detectors on a benign run (disjoint seed).
    calibration = _make_detectors()
    _run_scenario(
        "benign", num_symbols, seed + _CALIBRATION_SEED_OFFSET,
        list(calibration.values()),
    )
    baselines = {
        name: Baseline.fit(detector.features)
        for name, detector in calibration.items()
    }
    thresholds = {
        name: suggest_threshold(
            baselines[name].score_all(detector.features), THRESHOLD_SIGMAS
        )
        for name, detector in calibration.items()
    }

    # Phase 2 — score benign (fresh seed), WB and LRU at matched bandwidth.
    scores: Dict[str, Dict[str, List[float]]] = {"monitor": {}, "burst": {}}
    for scenario in ("benign", "wb", "lru"):
        detectors = _make_detectors(
            monitor_baseline=baselines["monitor"],
            burst_baseline=baselines["burst"],
        )
        _run_scenario(scenario, num_symbols, seed, list(detectors.values()))
        for name, detector in detectors.items():
            scores[name][scenario] = detector.scores

    rows: List[List[object]] = []
    rates: Dict[str, Dict[str, float]] = {}
    series: Dict[str, List[float]] = {}
    for name in ("monitor", "burst"):
        threshold = thresholds[name]
        rates[name] = {
            scenario: detection_rate(scores[name][scenario], threshold)
            for scenario in ("benign", "wb", "lru")
        }
        rows.append(
            [
                name,
                f"{threshold:.2f}",
                f"{rates[name]['benign']:.1%}",
                f"{rates[name]['wb']:.1%}",
                f"{rates[name]['lru']:.1%}",
                "yes" if rates[name]["lru"] > rates[name]["wb"] else "NO",
            ]
        )
        sweep = threshold_sweep(
            _sweep_thresholds(
                [s for scenario in scores[name].values() for s in scenario]
            ),
            scores[name]["benign"],
            {"wb": scores[name]["wb"], "lru": scores[name]["lru"]},
        )
        series[f"{name}_roc_threshold"] = [r["threshold"] for r in sweep]
        series[f"{name}_roc_benign_fpr"] = [r["benign_fpr"] for r in sweep]
        series[f"{name}_roc_wb"] = [r["wb"] for r in sweep]
        series[f"{name}_roc_lru"] = [r["lru"] for r in sweep]
        series[f"{name}_scores_benign"] = list(scores[name]["benign"])
        series[f"{name}_scores_wb"] = list(scores[name]["wb"])
        series[f"{name}_scores_lru"] = list(scores[name]["lru"])

    stealth_holds = all(
        rates[name]["lru"] > rates[name]["wb"] for name in ("monitor", "burst")
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Online detection: WB vs LRU sender vs benign (Ts = 11000)",
        paper_reference="Section 7 (stealthiness), extended online",
        columns=[
            "detector", "threshold", "benign FPR", "WB flagged",
            "LRU flagged", "LRU > WB",
        ],
        rows=rows,
        params={
            "num_symbols": num_symbols,
            "period": PERIOD,
            "monitor_window": MONITOR_WINDOW,
            "burst_window": BURST_WINDOW,
            "segment": SEGMENT,
            "max_lag": MAX_LAG,
            "prober_lines": PROBER_LINES,
            "prober_sweeps_per_period": PROBER_SWEEPS_PER_PERIOD,
            "threshold_sigmas": THRESHOLD_SIGMAS,
            "seed": seed,
            "detection_rates": rates,
            "stealth_holds": stealth_holds,
        },
        series=series,
        notes=(
            "Both online detectors are calibrated on the benign co-runner "
            "and applied at matched bit period. The LRU sender's "
            "continuous modulation is flagged at a higher rate than the "
            "WB sender's one-store-per-bit pattern on both the windowed "
            "counter monitor and the conflict-train autocorrelation view "
            "— the paper's stealth claim, held online."
            if stealth_holds
            else "STEALTH CLAIM NOT REPRODUCED at these settings: see "
            "detection_rates in params."
        ),
    )
