"""Online detection — the Section 7 stealth claim against live monitors.

Table 7 compares end-of-run counter totals; real monitors watch the
channel *while it runs*.  This experiment puts the WB sender, the
LRU-channel sender (the paper's stealth baseline, Xiong & Szefer) and a
benign co-runner — all carrying the identical whole-process activity of
:mod:`repro.experiments.process_models`, all at the same bit period —
under the two online detectors of :mod:`repro.telemetry.detectors`:

* :class:`~repro.telemetry.detectors.MissRateMonitor` — CloudRadar-style
  windowed counter signatures;
* :class:`~repro.telemetry.detectors.WritebackBurstDetector` —
  CC-Hunter-style autocorrelation of the suspect's L1 conflict train.

Each scenario shares the machine with a periodic *prober* sweeping the
target set (a receiver-like co-runner: it supplies the cyclic
interference CC-Hunter listens for and keeps the suspect's channel lines
contended).  Detectors are calibrated on a benign run (disjoint seed),
thresholds sit ``THRESHOLD_SIGMAS`` above the calibration scores, and
the measured runs report per-window / per-segment flag rates plus a
ROC-style threshold sweep.

Expected qualitative result, matching the paper: the LRU sender's
continuous modulation loads deviate hard from the benign envelope on
both views, while the WB sender's single posted store per bit hides
inside it — LRU flagged at a strictly higher rate than WB at matched
bandwidth, with the benign false-positive rate reported alongside.

The co-runs, calibration and scoring are compiled from
:func:`repro.scenario.library.online_detection_spec` and executed by
:mod:`repro.scenario.detection`; this module keeps only the result
shaping.  The historic module constants below mirror that spec's
defaults.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ProfileLike, resolve_profile
from repro.scenario.compile import compile_scenario
from repro.scenario.library import online_detection_spec

EXPERIMENT_ID = "online_detection"

SUSPECT_TID = 0
PROBER_TID = 1
#: Same bit period as Table 7 — "matched bandwidth" means matched Ts.
PERIOD = 11000
TARGET_SET = 21
START_TIME = 2_000_000

#: Receiver-like co-runner: lines swept per visit and visits per period.
PROBER_LINES = 10
PROBER_SWEEPS_PER_PERIOD = 10

#: The prober doubles as the monitors' sampling thread: its loads are
#: paced in cycles, so windows measured in prober L1 accesses are
#: windows in wall-clock time (how real counter monitors sample).
#: Monitor window = one bit period's worth of prober accesses; burst
#: window = 1/5 period, so the conflict train samples each bit 5 times.
MONITOR_WINDOW = PROBER_LINES * PROBER_SWEEPS_PER_PERIOD
BURST_WINDOW = PROBER_LINES * 2
#: Windows per autocorrelation segment (6 bit periods) and lags inspected.
SEGMENT = 30
MAX_LAG = 12
#: Detection threshold: this many sigmas above the calibration scores.
THRESHOLD_SIGMAS = 3.0


def run(
    *, profile: ProfileLike = None, seed: int = 0
) -> ExperimentResult:
    """Run the online-detection comparison."""
    profile = resolve_profile(profile)
    measurement = compile_scenario(online_detection_spec(), profile, seed).measure()

    rows: List[List[object]] = []
    rates: Dict[str, Dict[str, float]] = measurement.rates
    for name in measurement.detector_names:
        rows.append(
            [
                name,
                f"{measurement.thresholds[name]:.2f}",
                f"{rates[name]['benign']:.1%}",
                f"{rates[name]['wb']:.1%}",
                f"{rates[name]['lru']:.1%}",
                "yes" if rates[name]["lru"] > rates[name]["wb"] else "NO",
            ]
        )

    stealth_holds = bool(measurement.stealth_holds)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Online detection: WB vs LRU sender vs benign (Ts = 11000)",
        paper_reference="Section 7 (stealthiness), extended online",
        columns=[
            "detector", "threshold", "benign FPR", "WB flagged",
            "LRU flagged", "LRU > WB",
        ],
        rows=rows,
        params={
            "num_symbols": measurement.num_symbols,
            "period": PERIOD,
            "monitor_window": MONITOR_WINDOW,
            "burst_window": BURST_WINDOW,
            "segment": SEGMENT,
            "max_lag": MAX_LAG,
            "prober_lines": PROBER_LINES,
            "prober_sweeps_per_period": PROBER_SWEEPS_PER_PERIOD,
            "threshold_sigmas": THRESHOLD_SIGMAS,
            "seed": seed,
            "detection_rates": rates,
            "stealth_holds": stealth_holds,
        },
        series=measurement.series,
        notes=(
            "Both online detectors are calibrated on the benign co-runner "
            "and applied at matched bit period. The LRU sender's "
            "continuous modulation is flagged at a higher rate than the "
            "WB sender's one-store-per-bit pattern on both the windowed "
            "counter monitor and the conflict-train autocorrelation view "
            "— the paper's stealth claim, held online."
            if stealth_holds
            else "STEALTH CLAIM NOT REPRODUCED at these settings: see "
            "detection_rates in params."
        ),
    )
