"""Figure 6 — bit error rate vs transmission rate, binary encoding.

The paper sweeps ``Ts = Tr ∈ {800, 1000, 1600, 2200, 5500, 11000}`` for
``d = 1..8``, sending 128-bit random messages at least 90 times each and
scoring with the Wagner-Fischer edit distance.  Headline claims the
reproduction preserves:

* BER grows with the transmission rate;
* at 1375 Kbps (Ts = 1600) every ``d`` stays below 5%;
* ``d = 1`` is consistently the worst curve (smallest latency margin);
* ``d = 8`` remains usable at 2750 Kbps (paper: 4.5% at 2700 Kbps).

The measurement is compiled from the declarative
:func:`repro.scenario.library.fig6_spec`; this module keeps only the
figure's result shaping.
"""

from __future__ import annotations

from typing import List

from repro.common.units import cycles_to_kbps
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ProfileLike, resolve_profile
from repro.scenario.compile import compile_scenario
from repro.scenario.library import fig6_spec

EXPERIMENT_ID = "fig6"

PERIODS = (800, 1000, 1600, 2200, 5500, 11000)
D_VALUES = (1, 2, 3, 4, 5, 6, 7, 8)


def run(
    *, profile: ProfileLike = None, seed: int = 0
) -> ExperimentResult:
    """Reproduce Figure 6."""
    profile = resolve_profile(profile)
    measurement = compile_scenario(fig6_spec(), profile, seed).measure()
    d_values = measurement.d_values
    curves = {entry.d: entry.curve for entry in measurement.curves}
    rows: List[List[object]] = []
    for period in PERIODS:
        rate = cycles_to_kbps(period)
        rows.append(
            [period, f"{rate:.0f}"]
            + [f"{curves[d][period]:.2%}" for d in d_values]
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Bit error rate vs transmission rate (binary symbols)",
        paper_reference="Figure 6",
        columns=["Ts (cycles)", "rate (Kbps)"] + [f"d={d}" for d in d_values],
        rows=rows,
        params={
            "messages_per_point": measurement.messages,
            "message_bits": measurement.message_bits,
            "seed": seed,
        },
        notes=(
            "BER rises with rate; every d stays under 5% at 1375 Kbps and "
            "d=1 is the weakest encoding, as in the paper. Our absolute "
            "high-rate BERs are milder than the paper's because the "
            "simulated ambient noise is cleaner than a live Xeon's."
        ),
        series={f"ber_d{d}": [curves[d][p] for p in PERIODS] for d in d_values},
    )
