"""Figure 6 — bit error rate vs transmission rate, binary encoding.

The paper sweeps ``Ts = Tr ∈ {800, 1000, 1600, 2200, 5500, 11000}`` for
``d = 1..8``, sending 128-bit random messages at least 90 times each and
scoring with the Wagner-Fischer edit distance.  Headline claims the
reproduction preserves:

* BER grows with the transmission rate;
* at 1375 Kbps (Ts = 1600) every ``d`` stays below 5%;
* ``d = 1`` is consistently the worst curve (smallest latency margin);
* ``d = 8`` remains usable at 2750 Kbps (paper: 4.5% at 2700 Kbps).
"""

from __future__ import annotations

import statistics
from typing import Dict, List

from repro.common.units import cycles_to_kbps
from repro.channels.encoding import BinaryDirtyCodec
from repro.channels.wb import WBChannelConfig, calibrate_decoder, run_wb_channel
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ProfileLike, resolve_profile

EXPERIMENT_ID = "fig6"

PERIODS = (800, 1000, 1600, 2200, 5500, 11000)
D_VALUES = (1, 2, 3, 4, 5, 6, 7, 8)


def ber_curve(
    d: int,
    periods=PERIODS,
    messages: int = 90,
    message_bits: int = 128,
    calibration_repetitions: int = 60,
    base_seed: int = 0,
) -> Dict[int, float]:
    """Mean BER per period for one binary encoding ``d``."""
    codec = BinaryDirtyCodec(d_on=d)
    decoder = calibrate_decoder(
        codec.levels, repetitions=calibration_repetitions, seed=base_seed
    )
    curve: Dict[int, float] = {}
    for period in periods:
        bers = [
            run_wb_channel(
                WBChannelConfig(
                    codec=codec,
                    period_cycles=period,
                    message_bits=message_bits,
                    seed=base_seed * 10007 + message,
                    decoder=decoder,
                )
            ).bit_error_rate
            for message in range(messages)
        ]
        curve[period] = statistics.fmean(bers)
    return curve


def run(
    profile: ProfileLike = None, seed: int = 0
) -> ExperimentResult:
    """Reproduce Figure 6."""
    profile = resolve_profile(profile)
    messages = profile.count(quick=6, full=90)
    d_values = (1, 4, 8) if profile.is_reduced else D_VALUES
    message_bits = profile.count(quick=64, full=128)
    curves = {
        d: ber_curve(
            d,
            messages=messages,
            message_bits=message_bits,
            calibration_repetitions=profile.count(quick=20, full=60),
            base_seed=seed,
        )
        for d in d_values
    }
    rows: List[List[object]] = []
    for period in PERIODS:
        rate = cycles_to_kbps(period)
        rows.append(
            [period, f"{rate:.0f}"]
            + [f"{curves[d][period]:.2%}" for d in d_values]
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Bit error rate vs transmission rate (binary symbols)",
        paper_reference="Figure 6",
        columns=["Ts (cycles)", "rate (Kbps)"] + [f"d={d}" for d in d_values],
        rows=rows,
        params={
            "messages_per_point": messages,
            "message_bits": message_bits,
            "seed": seed,
        },
        notes=(
            "BER rises with rate; every d stays under 5% at 1375 Kbps and "
            "d=1 is the weakest encoding, as in the paper. Our absolute "
            "high-rate BERs are milder than the paper's because the "
            "simulated ambient noise is cleaner than a live Xeon's."
        ),
        series={f"ber_d{d}": [curves[d][p] for p in PERIODS] for d in d_values},
    )
