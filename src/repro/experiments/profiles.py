"""Typed run profiles: how much work an experiment run should do.

Historically every experiment took an untyped ``quick: bool`` knob.  A
:class:`RunProfile` replaces it with a value object that carries the
repetition-count policy explicitly, can be extended (scaled-down smoke
profiles, scaled-up precision profiles) and serialises into run manifests.

Experiments resolve their repetition counts through
:meth:`RunProfile.count`::

    trials = profile.count(quick=400, full=10000)

so the profile — not the experiment — decides which budget applies, and a
custom ``scale`` shrinks or grows every budget uniformly.

The pre-profile ``quick: bool`` alias (deprecated since the profile API
landed) has been removed; passing it raises a :class:`TypeError` naming
:class:`RunProfile` — see :func:`resolve_profile`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class RunProfile:
    """A named repetition-count policy for experiment runs.

    ``reduced`` selects the experiments' CI-speed budgets (what
    ``quick=True`` used to mean); ``scale`` multiplies whichever budget is
    selected, so ``RunProfile("smoke", reduced=True, scale=0.5)`` runs at
    half the quick counts.
    """

    name: str
    #: True → experiments use their reduced (CI-speed) repetition counts.
    reduced: bool = False
    #: Multiplier applied to every resolved repetition count (min 1).
    scale: float = 1.0
    #: Simulation engine ("reference", "fast" or "batch", see
    #: :mod:`repro.engine.selection`); ``None`` keeps the process default.
    #: Results are bit-identical across engines — this knob trades nothing
    #: but wall-clock time.
    engine: Optional[str] = None
    #: Stream cache events through a telemetry session around the run
    #: (see :mod:`repro.telemetry.session`).  Simulated observables are
    #: bit-identical with or without it; it adds wall-clock cost and a
    #: ``telemetry`` summary in the result params / run manifest.
    telemetry: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("profile name must be non-empty")
        if self.scale <= 0:
            raise ConfigurationError(
                f"profile scale must be positive, got {self.scale}"
            )
        if self.engine is not None:
            from repro.engine.selection import resolve_engine

            resolve_engine(self.engine)

    @property
    def is_reduced(self) -> bool:
        """True when the profile selects reduced repetition counts."""
        return self.reduced

    def count(self, quick: int, full: int) -> int:
        """Resolve a repetition count: the quick or full budget, scaled."""
        base = quick if self.reduced else full
        return max(1, round(base * self.scale))

    def with_engine(self, engine: Optional[str]) -> "RunProfile":
        """Copy of this profile pinned to ``engine`` (None = unchanged)."""
        if engine is None:
            return self
        import dataclasses

        return dataclasses.replace(self, engine=engine)

    def with_telemetry(self, telemetry: bool = True) -> "RunProfile":
        """Copy of this profile with telemetry streaming on (or off)."""
        if telemetry == self.telemetry:
            return self
        import dataclasses

        return dataclasses.replace(self, telemetry=telemetry)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (used by run manifests)."""
        return {
            "name": self.name,
            "reduced": self.reduced,
            "scale": self.scale,
            "engine": self.engine,
            "telemetry": self.telemetry,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunProfile":
        """Inverse of :meth:`to_dict`.

        Manifests written before a knob existed load with its default
        (``engine=None``, ``telemetry=False``).
        """
        engine = data.get("engine")
        return cls(
            name=str(data["name"]),
            reduced=bool(data["reduced"]),
            scale=float(data.get("scale", 1.0)),
            engine=None if engine is None else str(engine),
            telemetry=bool(data.get("telemetry", False)),
        )


#: The two canonical profiles (the old ``quick=False`` / ``quick=True``).
FULL = RunProfile("full", reduced=False)
QUICK = RunProfile("quick", reduced=True)

_NAMED_PROFILES: Dict[str, RunProfile] = {"full": FULL, "quick": QUICK}

#: What experiment ``run()`` functions accept for their ``profile`` argument.
ProfileLike = Union[RunProfile, str, None]

#: The tombstone message for the removed ``quick: bool`` alias.
_QUICK_REMOVED = (
    "the quick= flag has been removed; pass profile='quick', "
    "profile='full', or a repro.experiments.profiles.RunProfile instance"
)


def available_profiles() -> list:
    """Names accepted by :func:`resolve_profile` as strings."""
    return sorted(_NAMED_PROFILES)


def resolve_profile(
    profile: ProfileLike = None, quick: Optional[bool] = None
) -> RunProfile:
    """Normalise the ``profile`` argument to a :class:`RunProfile`.

    - ``RunProfile`` instances pass through.
    - Strings look up the named profiles (``"quick"`` / ``"full"``).
    - ``None`` means :data:`FULL`.

    The pre-profile ``quick: bool`` alias — ``quick=True/False``, or a
    bare bool where the profile now goes — was deprecated when profiles
    landed and has been removed; both forms raise a :class:`TypeError`
    pointing at :class:`RunProfile`.  The ``quick`` parameter survives in
    the signature only so old keyword callers get that message instead
    of a generic "unexpected keyword argument".
    """
    if isinstance(profile, bool) or quick is not None:
        raise TypeError(_QUICK_REMOVED)
    if profile is None:
        return FULL
    if isinstance(profile, RunProfile):
        return profile
    if isinstance(profile, str):
        try:
            return _NAMED_PROFILES[profile]
        except KeyError:
            raise ConfigurationError(
                f"unknown profile {profile!r}; available: "
                f"{', '.join(available_profiles())}"
            )
    raise ConfigurationError(
        f"profile must be a RunProfile, profile name or None, "
        f"got {type(profile).__name__}"
    )
