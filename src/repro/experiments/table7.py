"""Table 7 — cache loads of the WB sender vs the LRU-channel sender.

At ``Ts = 11000`` the paper measures the sender process's cache loads per
millisecond with ``perf``: the WB sender generates ~59.8% of the LRU
sender's load traffic, because it modulates each bit *once* (a single
store) while the LRU sender must keep re-touching its line throughout the
window to hold the LRU state against the receiver's sampling.

Both senders here carry the same whole-process background activity
(:mod:`repro.experiments.process_models`), so the measured difference is
exactly the channel-protocol traffic.
"""

from __future__ import annotations

from typing import List

from repro.common.bits import random_bits
from repro.common.rng import derive_rng, ensure_rng
from repro.channels.encoding import BinaryDirtyCodec
from repro.channels.testbench import ChannelTestbench, TestbenchConfig
from repro.cpu.perf_counters import PerfReport
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ProfileLike, resolve_profile
from repro.experiments.process_models import (
    InstrumentedLRUSender,
    InstrumentedWBSender,
    make_activity,
)
from repro.mem.sets import build_set_conflicting_lines

EXPERIMENT_ID = "table7"

SENDER_TID = 0
PERIOD = 11000
TARGET_SET = 21
START_TIME = 2_000_000


def _sender_loads(channel: str, num_symbols: int, seed: int) -> PerfReport:
    """Run one sender alone on the core and report its load counters."""
    bench = ChannelTestbench(TestbenchConfig(seed=seed))
    layout = bench.l1_layout
    space = bench.new_space(pid=SENDER_TID)
    rng = ensure_rng(seed)
    message = random_bits(num_symbols, derive_rng(rng, "msg"))
    activity = make_activity(space, seed=seed)
    lines = build_set_conflicting_lines(space, layout, TARGET_SET, 1)
    if channel == "wb":
        codec = BinaryDirtyCodec(d_on=1)
        sender: object = InstrumentedWBSender(
            activity=activity,
            lines=lines,
            schedule=codec.encode_message(message),
            period=PERIOD,
            start_time=START_TIME,
        )
    elif channel == "lru":
        sender = InstrumentedLRUSender(
            activity=activity,
            line=lines[0],
            message=message,
            period=PERIOD,
            start_time=START_TIME,
        )
    else:
        raise ValueError(f"unknown channel {channel!r}")
    bench.add_thread(SENDER_TID, space, sender, name=f"{channel}-sender")  # type: ignore[arg-type]
    core = bench.run()
    measured_cycles = max(1.0, core.elapsed_cycles() - START_TIME)
    return PerfReport.from_stats(bench.hierarchy.stats, SENDER_TID, measured_cycles)


def run(
    *, profile: ProfileLike = None, seed: int = 0
) -> ExperimentResult:
    """Reproduce Table 7."""
    profile = resolve_profile(profile)
    num_symbols = profile.count(quick=32, full=256)
    wb = _sender_loads("wb", num_symbols, seed)
    lru = _sender_loads("lru", num_symbols, seed)
    rows: List[List[object]] = [
        ["L1", f"{wb.l1_loads_per_ms:.3e}", f"{lru.l1_loads_per_ms:.3e}"],
        ["L2", f"{wb.l2_loads_per_ms:.3e}", f"{lru.l2_loads_per_ms:.3e}"],
        ["LLC", f"{wb.llc_loads_per_ms:.3e}", f"{lru.llc_loads_per_ms:.3e}"],
        ["Total", f"{wb.total_loads_per_ms:.3e}", f"{lru.total_loads_per_ms:.3e}"],
    ]
    ratio = wb.total_loads_per_ms / lru.total_loads_per_ms
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Sender cache loads per millisecond (Ts = 11000)",
        paper_reference="Table 7",
        columns=["level", "WB", "LRU"],
        rows=rows,
        params={
            "num_symbols": num_symbols,
            "period": PERIOD,
            "seed": seed,
            "wb_to_lru_ratio": ratio,
        },
        notes=(
            f"WB/LRU total-load ratio {ratio:.1%} (paper: 59.8%): the WB "
            "sender issues one store per bit while the LRU sender must "
            "keep re-accessing its line across the window, so the WB "
            "channel is the quieter of the two under load-count monitoring."
        ),
    )
