"""Registry of all reproduced tables and figures."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common.errors import ConfigurationError
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ProfileLike, resolve_profile
from repro.experiments import (
    ablation_errors,
    ablation_replacement_set,
    closed_loop,
    cross_core,
    defenses_exp,
    extension_3bit,
    extension_l2,
    fault_tolerance,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    online_detection,
    random_policy,
    sidechannel_exp,
    stability,
    table2,
    table4,
    table5,
    table6,
    table7,
    trace_sweep,
)

#: ``run(profile, seed)`` callables keyed by experiment id.
_EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table2": table2.run,
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "table7": table7.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "random_policy": random_policy.run,
    "stability": stability.run,
    "defenses": defenses_exp.run,
    "sidechannel": sidechannel_exp.run,
    "online_detection": online_detection.run,
    # Extensions and ablations beyond the paper's own evaluation.
    "extension_3bit": extension_3bit.run,
    "extension_l2": extension_l2.run,
    "cross_core_wb": cross_core.run,
    "closed_loop_defense": closed_loop.run,
    "fault_tolerance": fault_tolerance.run,
    "ablation_errors": ablation_errors.run,
    "ablation_replacement_set": ablation_replacement_set.run,
    "trace_sweep": trace_sweep.run,
}


def available_experiments() -> List[str]:
    """Ids accepted by :func:`run_experiment`, in canonical order."""
    return list(_EXPERIMENTS)


def run_experiment(
    experiment_id: str,
    profile: ProfileLike = None,
    seed: int = 0,
    *,
    quick: Optional[bool] = None,
) -> ExperimentResult:
    """Run one experiment by id.

    ``profile`` selects repetition counts (see
    :mod:`repro.experiments.profiles`).  The removed legacy ``quick=``
    flag raises a :class:`TypeError` pointing at ``RunProfile``.
    """
    resolved = resolve_profile(profile, quick=quick)
    try:
        runner = _EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{', '.join(available_experiments())}"
        )
    # The profile's engine choice is applied process-wide around the run,
    # so every hierarchy the experiment builds — directly or through the
    # channel testbench — picks it up without plumbing.  Results are
    # bit-identical across engines.  The telemetry session works the same
    # way: every hierarchy constructed inside the block attaches to the
    # session bus, and the observed summary rides back in the params
    # (hence into run manifests).
    from repro.engine.selection import engine_context
    from repro.telemetry.session import telemetry_session

    with engine_context(resolved.engine):
        with telemetry_session(enabled=resolved.telemetry) as session:
            result = runner(profile=resolved, seed=seed)
    if session is not None:
        summary = session.summary()
        trace_dir = session.config.trace_out
        if trace_dir:
            import os

            os.makedirs(trace_dir, exist_ok=True)
            trace_path = os.path.join(
                trace_dir, f"{experiment_id}-seed{seed}.jsonl"
            )
            summary["trace_path"] = trace_path
            summary["trace_events"] = session.export_trace(trace_path)
        result.params["telemetry"] = summary
    return result


def run_all(
    profile: ProfileLike = None, seed: int = 0, *, quick: Optional[bool] = None
) -> List[ExperimentResult]:
    """Run every registered experiment in order, in this process.

    For multi-core execution with persisted manifests use
    :func:`repro.runner.run_experiments` instead.
    """
    resolved = resolve_profile(profile, quick=quick)
    return [
        run_experiment(experiment_id, profile=resolved, seed=seed)
        for experiment_id in available_experiments()
    ]
