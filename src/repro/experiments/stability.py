"""Section 6 / Figure 9 — stability of WB vs LRU vs Prime+Probe under noise.

A third process loads "noise lines" into the channels' target set.  For
identity-based channels (LRU, Prime+Probe) every noise load evicts a
primed line and decodes as a false bit; the WB channel keys on the dirty
*state*, which clean noise loads do not change.  Noise *stores* do perturb
the WB channel — the paper concedes this and argues conflicting stores
are rare; the experiment includes that column too.
"""

from __future__ import annotations

import statistics
from typing import List

from repro.channels.encoding import BinaryDirtyCodec
from repro.channels.lru_channel import LRUChannelConfig, run_lru_channel
from repro.channels.prime_probe import PrimeProbeConfig, run_prime_probe_channel
from repro.channels.testbench import ChannelTestbench, TestbenchConfig
from repro.channels.wb import calibrate_decoder
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ProfileLike, resolve_profile

EXPERIMENT_ID = "stability"

PERIOD = 5500
TARGET_SET = 21
NOISE_TID = 7

#: Mean cycles between noise touches; one per ~2 symbol windows.
NOISE_INTERVAL = 2 * PERIOD


def run(
    *, profile: ProfileLike = None, seed: int = 0
) -> ExperimentResult:
    """Reproduce the Figure 9 stability comparison."""
    profile = resolve_profile(profile)
    messages = profile.count(quick=4, full=24)
    message_bits = profile.count(quick=64, full=128)

    rows: List[List[object]] = []
    scenarios = (
        ("no noise", 0.0, False),
        ("noise loads", 0.0, True),
        ("noise loads+stores (10%)", 0.10, True),
    )
    for label, store_fraction, noisy in scenarios:
        wb = _wb_noise_ber(messages, message_bits, seed, store_fraction, noisy)
        lru = _baseline_noise_ber(
            "lru", messages, message_bits, seed, store_fraction, noisy
        )
        pp = _baseline_noise_ber(
            "pp", messages, message_bits, seed, store_fraction, noisy
        )
        rows.append([label, f"{wb:.2%}", f"{lru:.2%}", f"{pp:.2%}"])

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Channel BER with a noise process touching the target set",
        paper_reference="Section 6 / Figure 9",
        columns=["scenario", "WB (d=3)", "LRU", "Prime+Probe"],
        rows=rows,
        params={
            "messages_per_point": messages,
            "message_bits": message_bits,
            "period": PERIOD,
            "noise_interval_cycles": NOISE_INTERVAL,
            "seed": seed,
        },
        notes=(
            "Clean noise loads devastate the LRU and Prime+Probe channels "
            "(every load is a false eviction) while the WB channel's BER "
            "barely moves; only noise *stores* — which create dirty lines — "
            "reach it, matching Figure 9's analysis."
        ),
    )


# ----------------------------------------------------------------------
# Channel-specific noisy runners.  Each clones the standard run but adds
# a TargetSetNoiseProgram as a third hardware thread.
# ----------------------------------------------------------------------

def _noise_program(bench: ChannelTestbench, duration: int, store_fraction: float,
                   seed: int):
    from repro.mem.sets import build_set_conflicting_lines
    from repro.noise.models import NoiseConfig, TargetSetNoiseProgram

    noise_space = bench.new_space(pid=NOISE_TID)
    lines = build_set_conflicting_lines(
        noise_space, bench.l1_layout, TARGET_SET, 2
    )
    program = TargetSetNoiseProgram(
        lines=lines,
        config=NoiseConfig(
            mean_interval_cycles=NOISE_INTERVAL,
            store_fraction=store_fraction,
            duration_cycles=duration,
        ),
        seed=seed,
    )
    return noise_space, program


def _wb_noise_ber(messages: int, message_bits: int, seed: int,
                  store_fraction: float, noisy: bool) -> float:
    """WB channel BER with an optional noise thread."""
    from repro.analysis.ber import evaluate_transmission
    from repro.channels.wb.receiver import WBReceiverProgram
    from repro.channels.wb.sender import WBSenderProgram
    from repro.common.bits import random_bits
    from repro.common.rng import derive_rng, ensure_rng
    from repro.mem.pointer_chase import PointerChaseList
    from repro.mem.sets import build_replacement_set, build_set_conflicting_lines

    codec = BinaryDirtyCodec(d_on=3)
    decoder = calibrate_decoder(codec.levels, repetitions=40, seed=seed)
    preamble = [1, 0] * 8
    bers: List[float] = []
    for index in range(messages):
        run_seed = seed * 977 + index
        bench = ChannelTestbench(TestbenchConfig(seed=run_seed))
        layout = bench.l1_layout
        rng = ensure_rng(run_seed)
        message = preamble + random_bits(message_bits - len(preamble),
                                         derive_rng(rng, "msg"))
        schedule = codec.encode_message(message)
        sender_space = bench.new_space(pid=0)
        receiver_space = bench.new_space(pid=1)
        sender_lines = build_set_conflicting_lines(
            sender_space, layout, TARGET_SET, codec.max_dirty_lines
        )
        set_rng = derive_rng(bench.rng, "sets")
        chase_a = PointerChaseList.from_lines(
            build_replacement_set(receiver_space, layout, TARGET_SET, 10, set_rng),
            rng=set_rng,
        )
        chase_b = PointerChaseList.from_lines(
            build_replacement_set(receiver_space, layout, TARGET_SET, 10, set_rng),
            rng=set_rng,
        )
        start = 30000
        sender = WBSenderProgram(
            lines=sender_lines, schedule=schedule, period=PERIOD, start_time=start
        )
        receiver = WBReceiverProgram(
            chase_a=chase_a,
            chase_b=chase_b,
            period=PERIOD,
            start_time=start,
            num_samples=len(schedule) + 4,
            phase=derive_rng(bench.rng, "phase").random(),
        )
        bench.add_thread(0, sender_space, sender, name="wb-sender")
        bench.add_thread(1, receiver_space, receiver, name="wb-receiver")
        if noisy:
            duration = start + (len(schedule) + 6) * PERIOD
            noise_space, noise = _noise_program(
                bench, duration, store_fraction, run_seed
            )
            bench.add_thread(NOISE_TID, noise_space, noise, name="noise")
        bench.run()
        levels = decoder.classify_many(receiver.latencies())
        received = codec.decode_message(levels)
        report = evaluate_transmission(message, received, len(preamble), 4)
        bers.append(report.ber)
    return statistics.fmean(bers)


def _baseline_noise_ber(which: str, messages: int, message_bits: int, seed: int,
                        store_fraction: float, noisy: bool) -> float:
    """LRU / Prime+Probe BER with an optional noise thread.

    The baseline runners own their benches, so the noisy variant re-creates
    their programs here (mirroring their module code) to add the third
    thread.
    """
    from repro.analysis.ber import evaluate_transmission
    from repro.channels.lru_channel import LRUReceiverProgram, LRUSenderProgram
    from repro.channels.prime_probe import (
        PrimeProbeReceiverProgram,
        PrimeProbeSenderProgram,
    )
    from repro.common.bits import random_bits
    from repro.common.rng import derive_rng, ensure_rng
    from repro.mem.sets import build_set_conflicting_lines

    preamble = [1, 0] * 8
    bers: List[float] = []
    for index in range(messages):
        run_seed = seed * 971 + index
        if not noisy:
            if which == "lru":
                result = run_lru_channel(
                    LRUChannelConfig(
                        period_cycles=PERIOD,
                        message_bits=message_bits,
                        seed=run_seed,
                        target_set=TARGET_SET,
                    )
                )
            else:
                result = run_prime_probe_channel(
                    PrimeProbeConfig(
                        period_cycles=PERIOD,
                        message_bits=message_bits,
                        seed=run_seed,
                        target_set=TARGET_SET,
                    )
                )
            bers.append(result.bit_error_rate)
            continue

        bench = ChannelTestbench(TestbenchConfig(seed=run_seed))
        layout = bench.l1_layout
        ways = bench.hierarchy.l1.associativity
        rng = ensure_rng(run_seed)
        message = preamble + random_bits(message_bits - len(preamble),
                                         derive_rng(rng, "msg"))
        sender_space = bench.new_space(pid=0)
        receiver_space = bench.new_space(pid=1)
        start = 30000
        if which == "lru":
            sender_line = build_set_conflicting_lines(
                sender_space, layout, TARGET_SET, 1
            )[0]
            receiver_lines = build_set_conflicting_lines(
                receiver_space, layout, TARGET_SET, ways
            )
            sender: object = LRUSenderProgram(
                line=sender_line, message=message, period=PERIOD, start_time=start
            )
            receiver: object = LRUReceiverProgram(
                lines=receiver_lines,
                period=PERIOD,
                start_time=start,
                num_samples=len(message) + 4,
            )
        else:
            sender_lines = build_set_conflicting_lines(
                sender_space, layout, TARGET_SET, 2
            )
            receiver_lines = build_set_conflicting_lines(
                receiver_space, layout, TARGET_SET, ways
            )
            sender = PrimeProbeSenderProgram(
                lines=sender_lines, message=message, period=PERIOD,
                start_time=start, evict_lines=2,
            )
            receiver = PrimeProbeReceiverProgram(
                lines=receiver_lines,
                period=PERIOD,
                start_time=start,
                num_samples=len(message) + 4,
            )
        bench.add_thread(0, sender_space, sender, name=f"{which}-sender")  # type: ignore[arg-type]
        bench.add_thread(1, receiver_space, receiver, name=f"{which}-receiver")  # type: ignore[arg-type]
        duration = start + (len(message) + 6) * PERIOD
        noise_space, noise = _noise_program(bench, duration, store_fraction, run_seed)
        bench.add_thread(NOISE_TID, noise_space, noise, name="noise")
        bench.run()
        if which == "lru":
            received = [1 if lat > 8.0 else 0 for lat in receiver.latencies()]  # type: ignore[attr-defined]
        else:
            received = [1 if m > 0 else 0 for m in receiver.miss_counts()]  # type: ignore[attr-defined]
        report = evaluate_transmission(message, received, len(preamble), 4)
        bers.append(report.ber)
    return statistics.fmean(bers)
