"""Robustness extension — the WB channel under injected faults.

The paper evaluates the channel on a quiet, cooperatively scheduled
machine.  This experiment asks what a *practical* deployment faces: OS
descheduling windows that slip symbols, bursty co-runner traffic in the
target set, slow calibration drift, and lost or duplicated probe windows
(:mod:`repro.faults`).  It sweeps a fault-intensity multiplier and, at
each point, runs the same faulted channel twice:

* **raw** — Algorithm 3 exactly as the paper describes it: one preamble
  alignment, frozen calibrated thresholds, chained pacing.  Its BER
  collapses quickly (drift alone crosses the binary decision threshold).
* **hardened** — the self-healing stack of
  :func:`repro.channels.wb.robust.run_robust_wb_channel`: sync-framed
  payload with per-frame CRC over FEC, a resynchronising scanner, online
  EWMA threshold recalibration, and ACK/retransmission.

The headline claim (checked by the robustness CI job): at an intensity
where the raw protocol's BER exceeds 10 %, the hardened stack still
delivers the payload bit-exact — at an honestly reported fraction of the
raw bit rate (``goodput``).  The ``demonstration`` entry in the params
records that point.

The sweep is compiled from
:func:`repro.scenario.library.fault_tolerance_spec`; this module keeps
only the result shaping.
"""

from __future__ import annotations

from typing import List

from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ProfileLike, resolve_profile
from repro.faults import DEFAULT_FAULT_SPEC
from repro.scenario.compile import compile_scenario
from repro.scenario.library import fault_tolerance_spec

EXPERIMENT_ID = "fault_tolerance"

PERIOD = 5500

#: Raw-protocol message length (16-bit preamble + 64 payload bits), kept
#: equal to the hardened payload so the comparison is bit-for-bit fair.
RAW_MESSAGE_BITS = 80
PAYLOAD_BITS = 64

FULL_INTENSITIES = (0.0, 0.5, 1.0, 2.0, 3.0)
#: The quick sweep keeps the fault-free baseline and the demonstration
#: point (raw BER well above 10 %, hardened recovery intact).
QUICK_INTENSITIES = (0.0, 1.0)

#: Threshold the demonstration point must push the raw protocol past.
RAW_BER_COLLAPSE = 0.10


def run(
    *, profile: ProfileLike = None, seed: int = 0
) -> ExperimentResult:
    """Sweep fault intensity; compare the raw and hardened WB protocols."""
    profile = resolve_profile(profile)
    measurement = compile_scenario(fault_tolerance_spec(), profile, seed).measure()
    rows: List[List[object]] = [
        [
            f"{point.intensity:.1f}",
            f"{point.raw_ber:.2%}",
            f"{point.intact_count}/{point.runs}",
            f"{point.mean_rounds:.1f}",
            f"{point.mean_retransmissions:.1f}",
            f"{point.mean_goodput_kbps:.0f}",
        ]
        for point in measurement.points
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="WB channel fault tolerance: raw vs self-healing protocol",
        paper_reference="robustness extension (beyond the paper)",
        columns=[
            "intensity",
            "raw BER",
            "hardened intact",
            "rounds",
            "retransmissions",
            "goodput (Kbps)",
        ],
        rows=rows,
        params={
            "runs_per_point": measurement.runs_per_point,
            "raw_message_bits": RAW_MESSAGE_BITS,
            "payload_bits": PAYLOAD_BITS,
            "period": PERIOD,
            "fault_spec": DEFAULT_FAULT_SPEC.to_dict(),
            "intensities": list(measurement.intensities),
            "raw_ber_collapse_threshold": RAW_BER_COLLAPSE,
            "demonstration": measurement.demonstration,
            "seed": seed,
        },
        notes=(
            "Faults (descheduling slips, co-runner bursts, threshold "
            "drift, dropped/duplicated probe windows) collapse the raw "
            "protocol's BER, while the framed + CRC + resync + adaptive "
            "stack keeps delivering the payload bit-exact and degrades to "
            "lower goodput instead; `demonstration` in the params records "
            "the first intensity past 10 % raw BER with full recovery."
        ),
    )
