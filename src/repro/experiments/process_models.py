"""Whole-process models for the stealthiness experiments (Tables 6-7).

The paper reads *process-wide* hardware counters with ``perf``: the
numbers include not just the channel accesses but the process's ordinary
traffic — stack, code, protocol bookkeeping.  To reproduce the relative
patterns of Tables 6 and 7 the sender therefore needs a whole-process
model:

* a small *hot working set* (stack/locals) touched continuously — these
  are the L1 hits that dominate the access count;
* occasional *cold* accesses (fresh heap/library pages) — the compulsory
  misses that give even an idle process a visible L2/LLC miss rate;
* the channel traffic itself (WB stores once per symbol, or the LRU
  channel's continuous modulation loads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng
from repro.cpu.ops import Load, ResetStats, SpinUntil, Store
from repro.cpu.thread import OpGenerator, Program
from repro.mem.address_space import AddressSpace


@dataclass
class _ProcessActivity:
    """Shared background-traffic machinery for instrumented senders.

    Three tiers, mirroring a real process's reference stream:

    * a *hot* set (stack, loop locals) — the overwhelming majority of
      accesses, L1 hits in steady state;
    * a *warm* region (in-memory state larger than the L2) touched a few
      times per period — its random reuses split between L2 hits and
      LLC hits, producing the mid-range L2/LLC miss rates of Table 6;
    * *cold* first-touch lines (code/library pages faulting in over the
      run) — the compulsory misses that reach DRAM.
    """

    space: AddressSpace
    seed: int = 0
    hot_lines: int = 48
    hot_accesses_per_period: int = 400
    warm_lines: int = 6144  # 384 KB: 1.5x the modelled L2
    warm_accesses_per_period: int = 6
    cold_per_period: float = 0.3
    line_size: int = 64

    def __post_init__(self) -> None:
        for name in ("hot_accesses_per_period", "warm_accesses_per_period"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        if self.cold_per_period < 0:
            raise ConfigurationError("cold_per_period must be >= 0")
        self.rng = ensure_rng(self.seed)
        self.hot_base = self.space.allocate_buffer(self.hot_lines * self.line_size)
        self.warm_base = self.space.allocate_buffer(self.warm_lines * self.line_size)
        self.cold_base = self.space.allocate_buffer(16 << 20)
        self._cold_cursor = 0

    def warmup(self) -> OpGenerator:
        """Touch the hot and warm tiers once (pre-measurement state)."""
        for index in range(self.hot_lines):
            yield Load(self.hot_base + index * self.line_size)
        for index in range(self.warm_lines):
            yield Load(self.warm_base + index * self.line_size)

    def housekeeping(self) -> OpGenerator:
        """One period's worth of background accesses."""
        accesses: list = []
        for _ in range(self.hot_accesses_per_period):
            address = (
                self.hot_base + self.rng.randrange(self.hot_lines) * self.line_size
            )
            accesses.append((address, self.rng.random() < 0.3))
        for _ in range(self.warm_accesses_per_period):
            address = (
                self.warm_base + self.rng.randrange(self.warm_lines) * self.line_size
            )
            accesses.append((address, self.rng.random() < 0.15))
        if self.rng.random() < self.cold_per_period:
            address = self.cold_base + self._cold_cursor * self.line_size
            self._cold_cursor += 1
            accesses.append((address, False))
        self.rng.shuffle(accesses)
        for address, write in accesses:
            if write:
                yield Store(address)
            else:
                yield Load(address)


@dataclass
class InstrumentedWBSender(Program):
    """WB sender (Algorithm 1) embedded in a whole-process model."""

    activity: _ProcessActivity
    lines: Sequence[int]
    schedule: Sequence[int]
    period: int
    start_time: int

    def __post_init__(self) -> None:
        needed = max(self.schedule, default=0)
        if needed > len(self.lines):
            raise ConfigurationError(
                f"schedule needs {needed} lines, got {len(self.lines)}"
            )

    def run(self) -> OpGenerator:
        for line in self.lines:
            yield Load(line)
        yield from self.activity.warmup()
        t_last = yield SpinUntil(self.start_time)
        # Counters start here, like attaching perf to a running process.
        yield ResetStats()
        for dirty_count in self.schedule:
            for line in self.lines[:dirty_count]:
                yield Store(line)
            yield from self.activity.housekeeping()
            t_last = yield SpinUntil(t_last + self.period)


@dataclass
class InstrumentedLRUSender(Program):
    """LRU-channel sender with the continuous modulation the paper cites.

    "The LRU channel requires the sender to constantly modulate the
    transmitted bit (accessing the cache line) within the encoding time
    Ts" — modelled as one load of the conflict line every
    ``modulation_interval`` cycles of every 1-window.
    """

    activity: _ProcessActivity
    line: int
    message: Sequence[int]
    period: int
    start_time: int
    modulation_interval: int = 30

    def __post_init__(self) -> None:
        if self.modulation_interval <= 0:
            raise ConfigurationError("modulation_interval must be positive")

    def run(self) -> OpGenerator:
        yield Load(self.line)
        yield from self.activity.warmup()
        t_last = yield SpinUntil(self.start_time)
        yield ResetStats()
        steps = max(1, self.period // self.modulation_interval)
        for bit in self.message:
            if bit:
                for step in range(steps):
                    yield Load(self.line)
                    yield SpinUntil(t_last + (step + 1) * self.modulation_interval)
            yield from self.activity.housekeeping()
            t_last = yield SpinUntil(t_last + self.period)


@dataclass
class InstrumentedBenignProcess(Program):
    """The senders' whole-process model with the channel traffic removed.

    Structurally identical to :class:`InstrumentedWBSender` — warm-up,
    stats reset at ``start_time``, one housekeeping batch per period —
    so any counter difference a monitor sees between this and a sender
    is exactly the channel protocol's own traffic.  The online-detection
    experiment calibrates its detectors on this process and reports its
    false-positive rate.
    """

    activity: _ProcessActivity
    periods: int
    period: int
    start_time: int

    def __post_init__(self) -> None:
        if self.periods < 0:
            raise ConfigurationError("periods must be >= 0")

    def run(self) -> OpGenerator:
        yield from self.activity.warmup()
        t_last = yield SpinUntil(self.start_time)
        yield ResetStats()
        for _ in range(self.periods):
            yield from self.activity.housekeeping()
            t_last = yield SpinUntil(t_last + self.period)


def make_activity(
    space: AddressSpace,
    seed: int = 0,
    hot_accesses_per_period: int = 400,
) -> _ProcessActivity:
    """Build the shared background-activity model for a process."""
    return _ProcessActivity(
        space=space, seed=seed, hot_accesses_per_period=hot_accesses_per_period
    )


def idle_spin_program(duration: int) -> Program:
    """A process that merely exists for ``duration`` cycles (placeholders)."""

    class _Idle(Program):
        def run(self) -> OpGenerator:
            yield SpinUntil(duration)

    return _Idle()


__all__: List[str] = [
    "InstrumentedBenignProcess",
    "InstrumentedLRUSender",
    "InstrumentedWBSender",
    "idle_spin_program",
    "make_activity",
]
