"""Extension — the WB channel deployed on the L2 cache.

Section 3: "The WB time channel can be deployed not only on the L1 cache
but also on other levels of caches.  However, that requires more
operations from the sender."  The paper does not build it; this
experiment does (see :mod:`repro.channels.wb.l2`) and compares the two
deployments head to head: achievable rate, BER, and the sender's
per-symbol operation count (the paper's predicted cost).

The comparison is compiled from
:func:`repro.scenario.library.extension_l2_spec`; this module keeps only
the result shaping (the per-level sender-operation labels).
"""

from __future__ import annotations

from typing import List

from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ProfileLike, resolve_profile
from repro.scenario.compile import compile_scenario
from repro.scenario.library import extension_l2_spec

EXPERIMENT_ID = "extension_l2"

#: The sender's per-symbol operation count, per deployment level — the
#: paper's predicted extra cost for deeper cache levels.
SENDER_OPS = {"L1": "1 store", "L2": "1 store + 10-load L1 sweep"}


def run(
    *, profile: ProfileLike = None, seed: int = 0
) -> ExperimentResult:
    """Compare the L1 and L2 deployments of the WB channel."""
    profile = resolve_profile(profile)
    measurement = compile_scenario(extension_l2_spec(), profile, seed).measure()
    rows: List[List[object]] = [
        [
            point.level,
            point.period_cycles,
            f"{point.rate_kbps:.0f}",
            f"{point.ber:.2%}",
            SENDER_OPS[point.level],
        ]
        for point in measurement.points
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="WB channel deployed on L1 vs L2 (d=4, binary)",
        paper_reference="Section 3 (deployability on deeper cache levels)",
        columns=[
            "level",
            "Ts (cycles)",
            "rate (Kbps)",
            "BER",
            "sender ops per 1-symbol",
        ],
        rows=rows,
        params={
            "messages_per_point": measurement.messages,
            "message_bits": measurement.message_bits,
            "seed": seed,
        },
        notes=(
            "The L2 deployment works but is an order of magnitude slower: "
            "the sender must sweep its L1 set to push each dirty line down "
            "(the paper's 'more operations'), the per-load measurement "
            "cost is LLC-bound, and physical indexing forces an eviction-"
            "set profiling step the L1 channel avoids."
        ),
    )
