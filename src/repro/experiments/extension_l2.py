"""Extension — the WB channel deployed on the L2 cache.

Section 3: "The WB time channel can be deployed not only on the L1 cache
but also on other levels of caches.  However, that requires more
operations from the sender."  The paper does not build it; this
experiment does (see :mod:`repro.channels.wb.l2`) and compares the two
deployments head to head: achievable rate, BER, and the sender's
per-symbol operation count (the paper's predicted cost).
"""

from __future__ import annotations

import statistics
from typing import List

from repro.channels.encoding import BinaryDirtyCodec
from repro.channels.wb import WBChannelConfig, calibrate_decoder, run_wb_channel
from repro.channels.wb.l2 import L2WBChannelConfig, run_l2_wb_channel
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ProfileLike, resolve_profile

EXPERIMENT_ID = "extension_l2"


def run(
    profile: ProfileLike = None, seed: int = 0
) -> ExperimentResult:
    """Compare the L1 and L2 deployments of the WB channel."""
    profile = resolve_profile(profile)
    messages = profile.count(quick=4, full=20)
    message_bits = profile.count(quick=48, full=128)
    codec = BinaryDirtyCodec(d_on=4)

    l1_decoder = calibrate_decoder(codec.levels, repetitions=40, seed=seed)
    rows: List[List[object]] = []

    # L1 deployment at two rates.
    for period in (5500, 11000):
        bers = [
            run_wb_channel(
                WBChannelConfig(
                    codec=codec,
                    period_cycles=period,
                    message_bits=message_bits,
                    seed=seed * 41 + m,
                    decoder=l1_decoder,
                )
            ).bit_error_rate
            for m in range(messages)
        ]
        result = run_wb_channel(
            WBChannelConfig(codec=codec, period_cycles=period,
                            message_bits=message_bits, seed=seed,
                            decoder=l1_decoder)
        )
        rows.append(
            [
                "L1",
                period,
                f"{result.rate_kbps:.0f}",
                f"{statistics.fmean(bers):.2%}",
                "1 store",
            ]
        )

    # L2 deployment at two (slower) rates.
    l2_decoder = None
    for period in (22000, 44000):
        config = L2WBChannelConfig(
            codec=codec,
            period_cycles=period,
            message_bits=message_bits,
            seed=seed,
            decoder=l2_decoder,
        )
        first = run_l2_wb_channel(config)
        l2_decoder = first.decoder  # reuse calibration across messages
        bers = [first.bit_error_rate] + [
            run_l2_wb_channel(
                L2WBChannelConfig(
                    codec=codec,
                    period_cycles=period,
                    message_bits=message_bits,
                    seed=seed * 41 + m,
                    decoder=l2_decoder,
                )
            ).bit_error_rate
            for m in range(1, messages)
        ]
        rows.append(
            [
                "L2",
                period,
                f"{first.rate_kbps:.0f}",
                f"{statistics.fmean(bers):.2%}",
                "1 store + 10-load L1 sweep",
            ]
        )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="WB channel deployed on L1 vs L2 (d=4, binary)",
        paper_reference="Section 3 (deployability on deeper cache levels)",
        columns=[
            "level",
            "Ts (cycles)",
            "rate (Kbps)",
            "BER",
            "sender ops per 1-symbol",
        ],
        rows=rows,
        params={
            "messages_per_point": messages,
            "message_bits": message_bits,
            "seed": seed,
        },
        notes=(
            "The L2 deployment works but is an order of magnitude slower: "
            "the sender must sweep its L1 set to push each dirty line down "
            "(the paper's 'more operations'), the per-load measurement "
            "cost is LLC-bound, and physical indexing forces an eviction-"
            "set profiling step the L1 channel avoids."
        ),
    )
