"""Figure 8 — bit error rate vs transmission rate, two-bit symbols.

The paper's headline: with ``d ∈ {0, 3, 5, 8}`` encoding two bits per
symbol, the channel reaches **4400 Kbps at 3.5% BER** (Ts = 1000),
far above the 1375-2700 Kbps practical range of binary encoding.
256-bit messages, ≥45 repetitions per point.

The sweep is compiled from :func:`repro.scenario.library.fig8_spec`;
this module keeps only the figure's result shaping.
"""

from __future__ import annotations

from typing import List

from repro.common.units import cycles_to_kbps
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ProfileLike, resolve_profile
from repro.scenario.compile import compile_scenario
from repro.scenario.library import fig8_spec

EXPERIMENT_ID = "fig8"

PERIODS = (800, 1000, 1600, 2200, 5500, 11000)


def run(
    *, profile: ProfileLike = None, seed: int = 0
) -> ExperimentResult:
    """Reproduce Figure 8."""
    profile = resolve_profile(profile)
    measurement = compile_scenario(fig8_spec(), profile, seed).measure()
    curve = measurement.curves[0].curve
    rows: List[List[object]] = [
        [period, f"{cycles_to_kbps(period, bits_per_symbol=2):.0f}", f"{curve[period]:.2%}"]
        for period in PERIODS
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Bit error rate vs transmission rate (2-bit symbols, d=0/3/5/8)",
        paper_reference="Figure 8",
        columns=["Ts (cycles)", "rate (Kbps)", "BER"],
        rows=rows,
        params={
            "messages_per_point": measurement.messages,
            "message_bits": measurement.message_bits,
            "seed": seed,
        },
        notes=(
            "Two-bit symbols double the rate at every period; at Ts=1000 "
            "(4400 Kbps) the BER stays in single digits (paper: 3.5%), "
            "confirming multi-bit encoding as the bandwidth multiplier."
        ),
        series={"ber": [curve[p] for p in PERIODS]},
    )
