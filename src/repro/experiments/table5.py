"""Table 5 — surviving a random replacement policy (Section 6.1).

The paper measures, on a gem5 pseudo-random 8-way cache, the probability
that *at least one* of ``d`` dirty lines is evicted by a replacement set
of ``L`` lines:

====  =====  =====  =====  =====  =====  =====
      L=8    L=9    L=10   L=11   L=12   L=13
====  =====  =====  =====  =====  =====  =====
d=2   63.6%  75.9%  84.6%  89.0%  92.9%  95.0%
d=3   89.5%  94.4%  96.8%  98.3%  99.4%  99.5%
====  =====  =====  =====  =====  =====  =====

alongside the analytic bound ``p = 1 - ((W - d) / W)^L`` (99.1% at d=3,
L=10).  We reproduce three variants: the analytic formula, a uniform
random policy (which matches the formula closely), and an LFSR
pseudo-random policy (whose short-term victim pattern differs, like
gem5's generator).
"""

from __future__ import annotations

import random
from typing import List

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_rng, ensure_rng
from repro.cache.cache_set import CacheSet
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ProfileLike, resolve_profile
from repro.replacement.registry import make_policy_factory

EXPERIMENT_ID = "table5"

DIRTY_COUNTS = (2, 3)
REPLACEMENT_SET_SIZES = (8, 9, 10, 11, 12, 13)


def analytic_probability(ways: int, dirty: int, replacement_size: int) -> float:
    """The paper's closed form: ``1 - ((W - d) / W)^L``."""
    if not 0 <= dirty <= ways:
        raise ConfigurationError(f"dirty must be in [0, {ways}], got {dirty}")
    return 1.0 - ((ways - dirty) / ways) ** replacement_size


def simulated_probability(
    policy_name: str,
    dirty: int,
    replacement_size: int,
    trials: int,
    rng: random.Random,
    ways: int = 8,
) -> float:
    """Monte-Carlo estimate of P(at least one dirty line evicted).

    Mirrors the paper's access sequence: the dirty lines are looped first
    (ensuring residency), then the replacement set is traversed once.
    """
    factory = make_policy_factory(policy_name)
    address_of = lambda tag, set_index: tag  # noqa: E731
    hits = 0
    for trial in range(trials):
        policy = factory(ways, derive_rng(rng, f"{policy_name}/{trial}"))
        cache_set = CacheSet(ways, policy)
        # Fill with unrelated lines, then install the dirty lines.
        for prior in range(ways):
            cache_set.fill(1000 + prior, dirty=False, owner=None,
                           set_index=0, address_of=address_of)
        dirty_tags = list(range(1, dirty + 1))
        for tag in dirty_tags:
            if cache_set.find(tag) is None:
                cache_set.fill(tag, dirty=True, owner=None,
                               set_index=0, address_of=address_of)
        # One loop over the dirty lines (the paper's x -> y -> (z)).
        for tag in dirty_tags:
            way = cache_set.find(tag)
            if way is None:
                cache_set.fill(tag, dirty=True, owner=None,
                               set_index=0, address_of=address_of)
            else:
                cache_set.touch(way)
        # Traverse the replacement set.
        for fresh in range(100, 100 + replacement_size):
            if cache_set.find(fresh) is None:
                cache_set.fill(fresh, dirty=False, owner=None,
                               set_index=0, address_of=address_of)
        if any(cache_set.find(tag) is None for tag in dirty_tags):
            hits += 1
    return hits / trials


def run(
    *, profile: ProfileLike = None, seed: int = 0
) -> ExperimentResult:
    """Reproduce Table 5 (plus the analytic row the paper derives)."""
    profile = resolve_profile(profile)
    trials = profile.count(quick=300, full=10000)
    rng = ensure_rng(seed)
    rows: List[List[object]] = []
    for dirty in DIRTY_COUNTS:
        for label, prob_fn in (
            (
                "uniform random",
                lambda size, d=dirty: simulated_probability(
                    "random", d, size, trials, derive_rng(rng, f"uni/{d}")
                ),
            ),
            (
                "LFSR pseudo-random",
                lambda size, d=dirty: simulated_probability(
                    "lfsr-random", d, size, trials, derive_rng(rng, f"lfsr/{d}")
                ),
            ),
            ("analytic", lambda size, d=dirty: analytic_probability(8, d, size)),
        ):
            rows.append(
                [f"d={dirty}", label]
                + [f"{prob_fn(size):.1%}" for size in REPLACEMENT_SET_SIZES]
            )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="P(at least one dirty line replaced) under random replacement",
        paper_reference="Table 5 + Section 6.1 formula",
        columns=["d", "variant"] + [f"L={size}" for size in REPLACEMENT_SET_SIZES],
        rows=rows,
        params={"trials": trials, "seed": seed},
        notes=(
            "Monotone in both d and L, matching the paper's shape; at d=3, "
            "L=12 the probability exceeds 99% (paper: 99.4%), supporting "
            "the conclusion that random replacement does not defeat the WB "
            "channel. The paper's gem5 PRNG sits below the uniform formula "
            "at small L; our LFSR variant shows the same qualitative "
            "depression without matching gem5's generator exactly."
        ),
    )
