"""Command-line entry point: ``python -m repro.experiments`` / ``wb-experiments``.

Examples::

    wb-experiments --list
    wb-experiments table2 fig6
    wb-experiments --all --profile quick
    wb-experiments --all --profile quick --jobs 4 --out results/
    wb-experiments fig6 --seeds 5 --jobs 4 --out sweep/
    wb-experiments online_detection --telemetry
    wb-experiments fig7 --profile quick --trace-out traces/
    wb-experiments --taxonomy

``--jobs N`` fans experiments out across worker processes (results are
bit-identical to a serial run; see :mod:`repro.runner`); ``--out DIR``
persists a schema-versioned JSON run manifest that
``examples/render_figures.py --results DIR`` can re-render without
recomputation.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.run_summary import summarize_manifest
from repro.channels.taxonomy import render_table
from repro.engine.selection import available_engines
from repro.experiments.profiles import available_profiles, resolve_profile
from repro.experiments.registry import available_experiments
from repro.runner import ProgressPrinter, RunInterrupted, run_experiments


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="wb-experiments",
        description=(
            "Reproduce the tables and figures of 'Abusing Cache Line Dirty "
            "States to Leak Information in Commercial Processors' (HPCA'22)"
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids to run (see --list)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--profile",
        choices=available_profiles(),
        default=None,
        help="repetition-count profile: quick (CI-speed) or full (paper-scale)",
    )
    parser.add_argument(
        "--engine",
        choices=available_engines(),
        default=None,
        help=(
            "simulation engine: reference (object-per-line oracle), fast "
            "(struct-of-arrays core) or batch (vectorized replica sweeps); "
            "results are bit-identical"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (1 = in-process serial; results are identical)",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="write a JSON run manifest (results + provenance) to DIR",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=1,
        metavar="K",
        help="seeds per experiment (shard 0 uses --seed; others are derived)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-experiment wall-clock budget (parallel runs only)",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help=(
            "stream cache events through a telemetry session per run "
            "(windowed counters + trace ring + profiler); the summary "
            "lands in the result params and run manifest"
        ),
    )
    parser.add_argument(
        "--trace-out",
        metavar="DIR",
        default=None,
        help=(
            "export each run's retained event trace as DIR/<id>-seed<N>"
            ".jsonl (implies --telemetry; requires --jobs 1)"
        ),
    )
    parser.add_argument(
        "--resume",
        metavar="MANIFEST",
        default=None,
        help=(
            "resume from a prior (partial) run manifest: tasks already "
            "completed there are reused verbatim, everything else runs; "
            "the merged manifest is canonically identical to an "
            "uninterrupted run"
        ),
    )
    parser.add_argument(
        "--taxonomy",
        action="store_true",
        help="print the paper's Table 1 channel classification",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in available_experiments():
            print(experiment_id)
        return 0
    if args.taxonomy:
        print(render_table())
        return 0

    profile = args.profile
    if profile is None:
        profile = "full"
    profile = resolve_profile(profile).with_engine(args.engine)
    if args.telemetry or args.trace_out is not None:
        profile = profile.with_telemetry(True)
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.trace_out is not None:
        if args.jobs != 1:
            # Trace export rides the in-process session default config;
            # worker processes would not see it.
            print("--trace-out requires --jobs 1", file=sys.stderr)
            return 2
        from repro.telemetry.session import TelemetryConfig, configure

        configure(TelemetryConfig(trace_out=args.trace_out))
    if args.seeds < 1:
        print(f"--seeds must be >= 1, got {args.seeds}", file=sys.stderr)
        return 2

    requested = list(args.experiments)
    if args.all:
        requested = available_experiments()
    if not requested:
        parser.print_help()
        return 2

    unknown = [e for e in requested if e not in available_experiments()]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(available_experiments())}", file=sys.stderr)
        return 2

    total_tasks = len(requested) * args.seeds
    progress = ProgressPrinter() if (args.jobs > 1 or total_tasks > 1) else None
    try:
        manifest = run_experiments(
            requested,
            profile=profile,
            seed=args.seed,
            jobs=args.jobs,
            out_dir=args.out,
            timeout=args.timeout,
            seeds_per_experiment=args.seeds,
            progress=progress,
            resume_from=args.resume,
        )
    except RunInterrupted as exc:
        print("\ninterrupted", file=sys.stderr)
        if exc.manifest is not None and args.out is not None:
            done = sum(1 for entry in exc.manifest.entries if entry.ok)
            print(
                f"partial manifest ({done}/{len(exc.manifest.entries)} task(s) "
                f"done) written to {args.out}; resume with --resume "
                f"{args.out}",
                file=sys.stderr,
            )
        return 130

    for entry in manifest.entries:
        if entry.ok:
            print(entry.result.render())
            print(f"[{entry.task_id} finished in {entry.wall_seconds:.1f}s]")
        else:
            print(
                f"[{entry.task_id} {entry.status} after "
                f"{entry.wall_seconds:.1f}s: {_last_line(entry.error)}]",
                file=sys.stderr,
            )
        print()
    if len(manifest.entries) > 1:
        print(summarize_manifest(manifest))
        print()
    if args.out is not None:
        print(f"manifest written to {manifest.save(args.out)}")
    return 0 if manifest.ok else 1


def _last_line(text: Optional[str]) -> str:
    if not text:
        return "unknown error"
    lines = [line for line in text.strip().splitlines() if line.strip()]
    return lines[-1] if lines else "unknown error"


if __name__ == "__main__":
    sys.exit(main())
