"""Command-line entry point: ``python -m repro.experiments`` / ``wb-experiments``.

Examples::

    wb-experiments --list
    wb-experiments table2 fig6
    wb-experiments --all --quick
    wb-experiments --taxonomy
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.channels.taxonomy import render_table
from repro.experiments.registry import available_experiments, run_experiment


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="wb-experiments",
        description=(
            "Reproduce the tables and figures of 'Abusing Cache Line Dirty "
            "States to Leak Information in Commercial Processors' (HPCA'22)"
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids to run (see --list)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced repetition counts (CI-speed, noisier estimates)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    parser.add_argument(
        "--taxonomy",
        action="store_true",
        help="print the paper's Table 1 channel classification",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in available_experiments():
            print(experiment_id)
        return 0
    if args.taxonomy:
        print(render_table())
        return 0

    requested = list(args.experiments)
    if args.all:
        requested = available_experiments()
    if not requested:
        parser.print_help()
        return 2

    unknown = [e for e in requested if e not in available_experiments()]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(available_experiments())}", file=sys.stderr)
        return 2

    for experiment_id in requested:
        started = time.time()
        result = run_experiment(experiment_id, quick=args.quick, seed=args.seed)
        elapsed = time.time() - started
        print(result.render())
        print(f"[{experiment_id} finished in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
