"""Figure 4 — CDF of replacement-set latency vs dirty-line count.

The paper performs 1000 measurements per ``d in {0..8}`` with a
replacement set of ten lines on the Xeon and shows narrow, separated CDF
bands roughly ten cycles apart.  The experiment regenerates the same
data: per-level latency samples, their empirical CDFs, and the
median/step summary the channel's codecs rely on.
"""

from __future__ import annotations

import statistics
from typing import Dict, List

from repro.analysis.cdf import empirical_cdf, summarize_latencies
from repro.channels.wb.calibration import measure_latency_distributions
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ProfileLike, resolve_profile

EXPERIMENT_ID = "fig4"

DIRTY_LEVELS = tuple(range(9))


def run(
    *, profile: ProfileLike = None, seed: int = 0
) -> ExperimentResult:
    """Reproduce Figure 4."""
    profile = resolve_profile(profile)
    repetitions = profile.count(quick=60, full=1000)
    samples: Dict[int, List[int]] = measure_latency_distributions(
        levels=list(DIRTY_LEVELS),
        repetitions=repetitions,
        replacement_set_size=10,
        seed=seed,
    )
    medians = {level: statistics.median(samples[level]) for level in DIRTY_LEVELS}
    rows: List[List[object]] = []
    for level in DIRTY_LEVELS:
        series = samples[level]
        summary = summarize_latencies(series)
        step = medians[level] - medians[level - 1] if level > 0 else 0.0
        rows.append(
            [
                level,
                summary.minimum,
                summary.median,
                summary.p90,
                summary.maximum,
                f"{step:+.1f}" if level else "-",
            ]
        )
    cdfs = {f"cdf_d{level}": empirical_cdf(samples[level]) for level in DIRTY_LEVELS}
    per_line = statistics.fmean(
        medians[level] - medians[level - 1] for level in DIRTY_LEVELS[1:]
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Replacement-set access latency vs dirty lines in the target set",
        paper_reference="Figure 4",
        columns=["d", "min", "median", "p90", "max", "median step"],
        rows=rows,
        params={"repetitions": repetitions, "seed": seed},
        notes=(
            f"Bands are narrow and separated by ~{per_line:.1f} cycles per "
            "dirty line (paper: ~10 cycles per dirty line), making all nine "
            "states distinguishable — the basis for multi-bit encoding."
        ),
        series={
            **{f"latencies_d{level}": samples[level] for level in DIRTY_LEVELS},
            **cdfs,
        },
    )
