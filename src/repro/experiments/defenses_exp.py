"""Section 8 — defense evaluation summary.

Wraps :func:`repro.defenses.evaluate_all` into the experiment framework so
the defenses table renders next to the paper's qualitative verdicts:

=====================  =========================  ==================
Defense                Paper verdict              Expected here
=====================  =========================  ==================
PLcache                effective                  mitigated
DAWG/Nomo partitions   effective                  mitigated
Random-fill cache      **not** effective          channel alive
Randomized mapping     fixed key still leaks      naive blocked
Write-through L1       effective (no dirty bit)   no signal
=====================  =========================  ==================

The evaluation is compiled from
:func:`repro.scenario.library.defenses_spec`; this module keeps only the
verdict-table shaping.
"""

from __future__ import annotations

from typing import List

from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ProfileLike, resolve_profile
from repro.scenario.compile import compile_scenario
from repro.scenario.library import defenses_spec

EXPERIMENT_ID = "defenses"

PAPER_VERDICTS = {
    "baseline": "channel works (sanity anchor)",
    "plcache": "effective (locked lines unreplaceable)",
    "partitioned": "effective (eviction isolation)",
    "random-fill": "NOT effective (store-hits still set dirty)",
    "randomized-mapping": "blocks naive; fixed key profileable",
    "write-through": "effective (dirty state does not exist)",
}


def run(
    *, profile: ProfileLike = None, seed: int = 0
) -> ExperimentResult:
    """Reproduce the Section 8 defense comparison."""
    profile = resolve_profile(profile)
    measurement = compile_scenario(defenses_spec(), profile, seed).measure()
    rows: List[List[object]] = []
    for report in measurement.reports:
        naive = "no signal" if report.naive_ber is None else f"{report.naive_ber:.1%}"
        adaptive = "-" if report.adaptive_ber is None else f"{report.adaptive_ber:.1%}"
        rows.append(
            [
                report.name,
                naive,
                adaptive,
                "ALIVE" if report.channel_alive else "mitigated",
                f"x{report.overhead_ratio:.3f}",
                PAPER_VERDICTS.get(report.name, "-"),
            ]
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="WB-channel mitigation strength and benign overhead per defense",
        paper_reference="Section 8",
        columns=[
            "defense",
            "naive BER",
            "adaptive BER",
            "verdict",
            "benign overhead",
            "paper verdict",
        ],
        rows=rows,
        params={"seeds": list(measurement.seeds)},
        notes=(
            "Matches Section 8 defense-by-defense: locking and partitioning "
            "kill the channel, write-through removes the signal entirely, "
            "and random fill falls to the adaptive sender/receiver. "
            "Overhead is the benign-workload elapsed-cycle ratio; the "
            "random-fill/randomized-mapping ratios below 1.0 are a quirk of "
            "the synthetic workload's reuse pattern, not a claim that those "
            "defenses are free."
        ),
    )
