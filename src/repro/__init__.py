"""Reproduction of *Abusing Cache Line Dirty States to Leak Information in
Commercial Processors* (Cui & Cheng, HPCA 2022).

The package provides, on top of a cycle-level SMT + write-back cache
simulator:

* the paper's **WB covert channel** (binary and multi-bit symbol encoding),
* the baseline channels it compares against (LRU, Prime+Probe,
  Flush+Reload, Flush+Flush),
* the defenses of Section 8 (PLcache, way partitioning, random fill,
  randomized mapping, write-through),
* the side-channel scenarios of Section 9, and
* one experiment module per table/figure of the evaluation
  (:mod:`repro.experiments`).

Quick start::

    from repro import quick_channel_run

    result = quick_channel_run(message_bits=64, period_cycles=5500, d=1)
    print(result.bit_error_rate, result.rate_kbps)

See ``examples/quickstart.py`` for the full tour.
"""

from repro.common import CPU_FREQUENCY_HZ, cycles_to_kbps, kbps_to_period_cycles
from repro.cache import (
    CacheHierarchy,
    LatencyModel,
    XeonE5_2650Config,
    make_tiny_hierarchy,
    make_xeon_hierarchy,
)
from repro.channels.wb import (
    ChannelRunResult,
    WBChannelConfig,
    quick_channel_run,
    run_wb_channel,
)
from repro.experiments import ExperimentResult, RunProfile
from repro.runner import RunManifest, run_experiments

__version__ = "1.0.0"

__all__ = [
    "CPU_FREQUENCY_HZ",
    "CacheHierarchy",
    "ChannelRunResult",
    "ExperimentResult",
    "LatencyModel",
    "RunManifest",
    "RunProfile",
    "WBChannelConfig",
    "XeonE5_2650Config",
    "__version__",
    "cycles_to_kbps",
    "kbps_to_period_cycles",
    "make_tiny_hierarchy",
    "make_xeon_hierarchy",
    "quick_channel_run",
    "run_experiments",
    "run_wb_channel",
]
