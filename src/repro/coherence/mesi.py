"""MESI protocol state and the coherence directory.

The directory is the serialisation point of the modelled interconnect:
every L1 miss consults it (and every store upgrade goes through it)
before any cache state changes, one request at a time — the SMT core's
global-clock interleaving already delivers requests in a total order, so
the directory never sees concurrent transactions.

State split between directory and caches
----------------------------------------
The caches themselves only know a line's *dirty bit*; the M/E/S
distinction lives here.  The invariants tying the two views together
(checked by :meth:`~repro.coherence.hierarchy.CoherentHierarchy.check_invariants`
and fuzzed in ``tests/test_coherence.py``):

* at most one core holds a line in M or E, and then no other core holds
  it at all;
* a dirty L1 line is always in state M, and an M line is always dirty;
* every line resident in any L1 is also resident in the shared L2
  (inclusion).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.errors import SimulationError


class MESIState(enum.Enum):
    """Per-line coherence state of one core's L1 copy.

    Invalid is represented by *absence* from the directory, so the enum
    only carries the three resident states.
    """

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"


@dataclass
class CoherenceStats:
    """Counters over the protocol events (experiment introspection)."""

    #: Remote read found the line Modified: write-back + demote to S.
    downgrades_m_to_s: int = 0
    #: Remote write (RFO) found the line Modified: write-back + invalidate.
    downgrades_m_to_i: int = 0
    #: Remote read found the line Exclusive: silent demote to S.
    downgrades_e_to_s: int = 0
    #: Store hit on a Shared line: invalidate the other sharers, go M.
    upgrades_s_to_m: int = 0
    #: Remote L1 copies invalidated by RFOs and upgrades.
    invalidations: int = 0
    #: L1 copies dropped because their line left the inclusive L2.
    back_invalidations: int = 0
    #: Coherence-induced write-backs (the cross-core timing signal).
    coherence_writebacks: int = 0

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict view for experiment params and tests."""
        return {
            "downgrades_m_to_s": self.downgrades_m_to_s,
            "downgrades_m_to_i": self.downgrades_m_to_i,
            "downgrades_e_to_s": self.downgrades_e_to_s,
            "upgrades_s_to_m": self.upgrades_s_to_m,
            "invalidations": self.invalidations,
            "back_invalidations": self.back_invalidations,
            "coherence_writebacks": self.coherence_writebacks,
        }


class Directory:
    """Who holds which line, in which MESI state.

    Keyed on line-aligned *physical* addresses (the same addresses the
    caches index with), mapping to a per-core state dict.  Absence means
    Invalid everywhere.
    """

    def __init__(self, line_size: int) -> None:
        if line_size <= 0 or line_size & (line_size - 1):
            raise SimulationError(
                f"line_size must be a positive power of two, got {line_size}"
            )
        self._line_mask = ~(line_size - 1)
        self._entries: Dict[int, Dict[int, MESIState]] = {}

    def line_address(self, address: int) -> int:
        """Align ``address`` down to its cache line."""
        return address & self._line_mask

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def state(self, core: int, address: int) -> Optional[MESIState]:
        """``core``'s state for the line, or None (Invalid)."""
        entry = self._entries.get(self.line_address(address))
        if entry is None:
            return None
        return entry.get(core)

    def holders(
        self, address: int, exclude: Optional[int] = None
    ) -> List[int]:
        """Cores holding the line (sorted; ``exclude`` filtered out)."""
        entry = self._entries.get(self.line_address(address))
        if not entry:
            return []
        return sorted(core for core in entry if core != exclude)

    def exclusive_holder(self, address: int) -> Optional[int]:
        """The single M/E holder of the line, if any."""
        entry = self._entries.get(self.line_address(address))
        if not entry:
            return None
        for core, state in entry.items():
            if state is not MESIState.SHARED:
                return core
        return None

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def set_state(self, core: int, address: int, state: MESIState) -> None:
        """Record ``core`` holding the line in ``state``."""
        line = self.line_address(address)
        entry = self._entries.setdefault(line, {})
        if state is not MESIState.SHARED:
            others = [c for c in entry if c != core]
            if others:
                raise SimulationError(
                    f"line {line:#x}: core {core} cannot take "
                    f"{state.value} while cores {others} hold copies"
                )
        entry[core] = state

    def clear(self, core: int, address: int) -> None:
        """Drop ``core``'s copy of the line (→ Invalid); idempotent."""
        line = self.line_address(address)
        entry = self._entries.get(line)
        if entry is None:
            return
        entry.pop(core, None)
        if not entry:
            del self._entries[line]

    def drop_line(self, address: int) -> None:
        """Forget the line entirely (flush / back-invalidation)."""
        self._entries.pop(self.line_address(address), None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Tuple[int, Dict[int, MESIState]]]:
        """Iterate ``(line_address, {core: state})`` pairs (sorted)."""
        for line in sorted(self._entries):
            yield line, dict(self._entries[line])

    def __len__(self) -> int:
        return len(self._entries)

    def snapshot(self) -> Dict[int, Dict[int, str]]:
        """JSON-friendly copy (state values as their letters)."""
        return {
            line: {core: state.value for core, state in sorted(entry.items())}
            for line, entry in sorted(self._entries.items())
        }

    def check(self) -> None:
        """Raise :class:`SimulationError` on a broken ownership invariant."""
        for line, entry in self._entries.items():
            exclusive = [
                core
                for core, state in entry.items()
                if state is not MESIState.SHARED
            ]
            if exclusive and len(entry) > 1:
                raise SimulationError(
                    f"line {line:#x}: exclusive holder(s) {exclusive} "
                    f"coexist with other copies: {entry}"
                )
            if len(exclusive) > 1:
                raise SimulationError(
                    f"line {line:#x}: multiple M/E holders: {exclusive}"
                )
