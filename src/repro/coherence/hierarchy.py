"""N private L1Ds over shared levels, kept coherent by a MESI directory.

:class:`CoherentHierarchy` presents the same surface as
:class:`~repro.cache.hierarchy.CacheHierarchy` — ``access``/``load``/
``store``/``flush``, latency accounting, :class:`~repro.cache.stats.CacheStats`,
telemetry attachment — so programs, the SMT core and the channel testbench
drive it unchanged.  Requests are routed to a core by the accessing
*owner* (hardware thread id): ``core = owner % num_cores``.  The SMT
core's global-clock interleaving hands the hierarchy one access at a
time, which is the snoop/directory interconnect's serialisation.

Timing model (the paper's Table 4 numbers, extended across cores):

* private L1 hit — ``l1_hit``, exactly as in the single-core model;
* L1 miss served by the shared L2 — ``l2_hit``;
* if the miss found the line **Modified in another core's L1**, that
  copy must first drain into the L2 (the M→S / M→I downgrade
  write-back), adding ``l1_writeback_penalty`` to the requester — the
  same dirty-victim stall the single-core channel measures, now visible
  *across* cores.  This is the cross-core channel's signal
  (:mod:`repro.channels.wb.cross_core`).

The shared L2 is **inclusive** of the private L1s: an L2 eviction
back-invalidates every L1 copy of the victim line (merging dirty data
into the write-back).  Deeper shared levels follow the single-core
model's non-inclusive behaviour.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.rng import derive_rng, ensure_rng
from repro.cache.cache import AllocationPolicy, Cache, WritePolicy
from repro.cache.hierarchy import MEMORY_LEVEL, AccessTrace
from repro.cache.latency import LatencyModel
from repro.cache.line import EvictedLine
from repro.cache.stats import CacheStats
from repro.coherence.mesi import CoherenceStats, Directory, MESIState
from repro.telemetry.bus import TelemetryBus
from repro.telemetry.events import CacheEvent, EventKind
from repro.telemetry.session import session_bus

_HIT = EventKind.HIT
_MISS = EventKind.MISS
_EVICT = EventKind.EVICT
_WRITEBACK = EventKind.WRITEBACK
_FLUSH = EventKind.FLUSH


class CoherentHierarchy:
    """Per-core private L1s over shared levels with MESI coherence."""

    def __init__(
        self,
        l1s: List[Cache],
        shared: List[Cache],
        latency: Optional[LatencyModel] = None,
        rng: Optional[random.Random] = None,
        telemetry: Optional[TelemetryBus] = None,
    ) -> None:
        if not l1s:
            raise ConfigurationError("coherent hierarchy needs at least one L1")
        if not shared:
            raise ConfigurationError(
                "coherent hierarchy needs a shared level below the L1s "
                "(the inclusive L2)"
            )
        line_size = l1s[0].layout.line_size
        for cache in l1s + shared:
            if cache.layout.line_size != line_size:
                raise ConfigurationError(
                    f"{cache.name}: line size {cache.layout.line_size} != "
                    f"{line_size}; all levels must agree"
                )
        for l1 in l1s:
            if l1.write_policy is not WritePolicy.WRITE_BACK:
                raise ConfigurationError(
                    f"{l1.name}: MESI coherence models write-back L1s only "
                    "(a write-through L1 has no Modified state)"
                )
            if l1.allocation_policy is not AllocationPolicy.WRITE_ALLOCATE:
                raise ConfigurationError(
                    f"{l1.name}: MESI coherence models write-allocate L1s "
                    "only"
                )
            if l1.size_bytes > shared[0].size_bytes:
                raise ConfigurationError(
                    f"inclusive {shared[0].name} is smaller than {l1.name}"
                )
        self.l1s = l1s
        self.shared = shared
        self.num_cores = len(l1s)
        self.latency = latency or LatencyModel()
        self.rng = ensure_rng(rng)
        # Coherence write-backs are charged where they stall the requester
        # (the downgrade path); the flag exists for surface compatibility
        # with CacheHierarchy and deep capacity write-backs.
        self.charge_deep_writebacks = False
        self.stats = CacheStats()
        self.directory = Directory(line_size)
        self.coherence = CoherenceStats()
        self.telemetry = telemetry if telemetry is not None else session_bus()

    # ------------------------------------------------------------------
    # CacheHierarchy-compatible surface
    # ------------------------------------------------------------------
    @property
    def levels(self) -> List[Cache]:
        """Core 0's view of the stack (introspection compatibility)."""
        return [self.l1s[0]] + list(self.shared)

    @property
    def l1(self) -> Cache:
        """Core 0's private L1 (what set builders take layouts from)."""
        return self.l1s[0]

    def l1_of(self, core: int) -> Cache:
        """The private L1 of ``core``."""
        return self.l1s[core]

    def core_of(self, owner: Optional[int]) -> int:
        """Core an access by hardware thread ``owner`` executes on."""
        if owner is None:
            return 0
        return owner % self.num_cores

    @property
    def telemetry_enabled(self) -> bool:
        """Whether cache events are being emitted right now."""
        bus = self.telemetry
        return bus is not None and bus.enabled

    def attach_telemetry(self, bus: TelemetryBus) -> TelemetryBus:
        """Attach ``bus`` (replacing any current one); returns it."""
        self.telemetry = bus
        return bus

    def detach_telemetry(self) -> Optional[TelemetryBus]:
        """Remove and return the current bus, if any."""
        bus = self.telemetry
        self.telemetry = None
        return bus

    def load(self, address: int, owner: Optional[int] = None) -> AccessTrace:
        """Demand load of ``address`` by hardware thread ``owner``."""
        return self.access(address, write=False, owner=owner)

    def store(self, address: int, owner: Optional[int] = None) -> AccessTrace:
        """Demand store to ``address`` by hardware thread ``owner``."""
        return self.access(address, write=True, owner=owner)

    def access(
        self, address: int, write: bool, owner: Optional[int] = None
    ) -> AccessTrace:
        """One demand access on the owner's core, coherence included."""
        core = self.core_of(owner)
        l1 = self.l1s[core]
        evictions: List[Tuple[int, EvictedLine]] = []
        latency = self.latency.sample_jitter(self.rng)
        bus = self.telemetry
        if bus is not None and bus.enabled:
            emit = bus.emit
            now = bus.tick()
        else:
            emit = None
            now = 0

        hit = l1.lookup(address, owner)
        self.stats.record_access(1, owner, hit, write=write)
        if emit is not None:
            emit(
                CacheEvent(
                    now, _HIT if hit else _MISS, 1, l1.set_index(address),
                    owner, address, write,
                    l1.is_dirty(address) if hit else False,
                )
            )
        if hit:
            latency += self.latency.hit_latency(1)
            if write:
                self._store_upgrade(core, address, owner, emit, now)
            return AccessTrace(
                address=address,
                write=write,
                hit_level=1,
                latency=latency,
                l1_victim_dirty=False,
                evictions=(),
            )

        # L1 miss: the request goes over the interconnect.  The directory
        # serialises it against every other core's copies first.
        downgrade_wb = self._snoop(core, address, write, emit, now)

        hit_level = MEMORY_LEVEL
        for index, cache in enumerate(self.shared):
            level_no = index + 2
            shared_hit = cache.lookup(address, owner)
            self.stats.record_access(level_no, owner, shared_hit, write=write)
            if emit is not None:
                emit(
                    CacheEvent(
                        now, _HIT if shared_hit else _MISS, level_no,
                        cache.set_index(address), owner, address, write,
                        cache.is_dirty(address) if shared_hit else False,
                    )
                )
            if shared_hit:
                hit_level = level_no
                break
        if hit_level == MEMORY_LEVEL:
            latency += self.latency.dram
            self.stats.memory_reads += 1
        else:
            latency += self.latency.hit_latency(hit_level)
        if downgrade_wb:
            # The downgraded copy drains into the L2 before the requester's
            # fill completes — the cross-core dirty-state timing signal.
            latency += self.latency.writeback_penalty(1)

        latency += self._fill_shared(
            address, hit_level, owner, evictions, emit, now
        )
        l1_victim_dirty, extra = self._fill_l1(
            core, address, owner, evictions, emit, now
        )
        latency += extra

        line = self.directory.line_address(address)
        if write:
            l1.mark_dirty(address)
            self.directory.set_state(core, line, MESIState.MODIFIED)
        elif self.directory.holders(line, exclude=core):
            self.directory.set_state(core, line, MESIState.SHARED)
        else:
            self.directory.set_state(core, line, MESIState.EXCLUSIVE)

        return AccessTrace(
            address=address,
            write=write,
            hit_level=hit_level,
            latency=latency,
            l1_victim_dirty=l1_victim_dirty,
            evictions=tuple(evictions),
        )

    def flush(self, address: int, owner: Optional[int] = None) -> int:
        """clflush semantics across every core and shared level."""
        cost = self.latency.flush_base + self.latency.sample_jitter(self.rng)
        bus = self.telemetry
        if bus is not None and bus.enabled:
            emit = bus.emit
            now = bus.tick()
        else:
            emit = None
            now = 0
        was_present = False
        for core, l1 in enumerate(self.l1s):
            snapshot = l1.invalidate(address)
            if snapshot is None:
                continue
            was_present = True
            self.directory.clear(core, address)
            if emit is not None:
                emit(
                    CacheEvent(
                        now, _FLUSH, 1, l1.set_index(address), owner,
                        address, False, snapshot.dirty,
                    )
                )
            if snapshot.dirty:
                self.stats.record_writeback(1, owner)
                self.stats.memory_writes += 1
                cost += self.latency.writeback_penalty(1)
                if emit is not None:
                    emit(
                        CacheEvent(
                            now, _WRITEBACK, 1, l1.set_index(address),
                            owner, address, False, True,
                        )
                    )
        for index, cache in enumerate(self.shared):
            level_no = index + 2
            snapshot = cache.invalidate(address)
            if snapshot is None:
                continue
            was_present = True
            if emit is not None:
                emit(
                    CacheEvent(
                        now, _FLUSH, level_no, cache.set_index(address),
                        owner, address, False, snapshot.dirty,
                    )
                )
            if snapshot.dirty:
                self.stats.record_writeback(level_no, owner)
                self.stats.memory_writes += 1
                cost += self.latency.writeback_penalty(level_no)
                if emit is not None:
                    emit(
                        CacheEvent(
                            now, _WRITEBACK, level_no,
                            cache.set_index(address), owner, address,
                            False, True,
                        )
                    )
        if was_present:
            cost += self.latency.flush_present_extra
        return cost

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def probe_level(self, address: int) -> int:
        """Shallowest level holding ``address`` on any core."""
        if any(l1.probe(address) for l1 in self.l1s):
            return 1
        for index, cache in enumerate(self.shared):
            if cache.probe(address):
                return index + 2
        return MEMORY_LEVEL

    def dirty_in_l1_set(self, set_index: int, core: int = 0) -> int:
        """Dirty-line count of one core's L1 set (default core 0)."""
        return self.l1s[core].dirty_lines_in_set(set_index)

    def check_invariants(self) -> None:
        """Raise :class:`SimulationError` on any broken MESI invariant.

        Checked: single M/E ownership (directory-side), directory/cache
        agreement (resident ⟺ tracked, dirty ⟺ M), and L2 inclusion of
        every L1-resident line.  O(total lines); meant for tests, not the
        access hot path.
        """
        self.directory.check()
        l2 = self.shared[0]
        tracked = {
            (line, core)
            for line, entry in self.directory
            for core in entry
        }
        resident = set()
        for core, l1 in enumerate(self.l1s):
            layout = l1.layout
            for set_index, cache_set in enumerate(l1.sets):
                for valid, tag, dirty, _locked, _owner in cache_set.way_states():
                    if not valid:
                        continue
                    line = layout.compose(tag, set_index)
                    resident.add((line, core))
                    state = self.directory.state(core, line)
                    if state is None:
                        raise SimulationError(
                            f"core {core} holds line {line:#x} unknown to "
                            "the directory"
                        )
                    if dirty and state is not MESIState.MODIFIED:
                        raise SimulationError(
                            f"core {core} line {line:#x} dirty in state "
                            f"{state.value} (dirty ⇒ M violated)"
                        )
                    if state is MESIState.MODIFIED and not dirty:
                        raise SimulationError(
                            f"core {core} line {line:#x} clean in state M"
                        )
                    if not l2.probe(line):
                        raise SimulationError(
                            f"inclusion violated: core {core} holds line "
                            f"{line:#x} absent from {l2.name}"
                        )
        stale = tracked - resident
        if stale:
            line, core = sorted(stale)[0]
            raise SimulationError(
                f"directory tracks core {core} on line {line:#x} but the "
                "L1 does not hold it"
            )

    # ------------------------------------------------------------------
    # Protocol internals
    # ------------------------------------------------------------------
    def _snoop(
        self, core: int, address: int, write: bool, emit, now: int
    ) -> bool:
        """Resolve remote copies before ``core``'s miss fill.

        Returns True when a Modified copy had to drain into the shared
        L2 (the downgrade write-back whose latency the requester pays).
        """
        line = self.directory.line_address(address)
        downgrade_wb = False
        for other in self.directory.holders(line, exclude=core):
            state = self.directory.state(other, line)
            other_l1 = self.l1s[other]
            if state is MESIState.MODIFIED:
                self.stats.record_writeback(1, other)
                self.coherence.coherence_writebacks += 1
                self._writeback_shared(0, line, other, emit, now)
                if emit is not None:
                    emit(
                        CacheEvent(
                            now, _WRITEBACK, 1, other_l1.set_index(line),
                            other, line, False, True,
                        )
                    )
                downgrade_wb = True
            if write:
                # RFO: every remote copy is invalidated (its dirty data,
                # if any, was written back just above).
                other_l1.invalidate(address)
                self.directory.clear(other, line)
                self.coherence.invalidations += 1
                if state is MESIState.MODIFIED:
                    self.coherence.downgrades_m_to_i += 1
                if emit is not None:
                    emit(
                        CacheEvent(
                            now, _EVICT, 1, other_l1.set_index(line),
                            other, line, False, False,
                        )
                    )
            elif state is MESIState.MODIFIED:
                # M→S: the copy stays resident but clean.  The caches
                # have no clear-dirty primitive, so reinstall the line
                # clean into the way the invalidation just freed.
                other_l1.invalidate(address)
                other_l1.fill(address, dirty=False, owner=other)
                self.directory.set_state(other, line, MESIState.SHARED)
                self.coherence.downgrades_m_to_s += 1
            elif state is MESIState.EXCLUSIVE:
                self.directory.set_state(other, line, MESIState.SHARED)
                self.coherence.downgrades_e_to_s += 1
        return downgrade_wb

    def _store_upgrade(
        self, core: int, address: int, owner: Optional[int], emit, now: int
    ) -> None:
        """Store hit in ``core``'s L1: S→M (invalidating sharers) or E/M→M."""
        line = self.directory.line_address(address)
        state = self.directory.state(core, line)
        if state is None:
            raise SimulationError(
                f"core {core} store-hit on line {line:#x} unknown to the "
                "directory"
            )
        if state is MESIState.SHARED:
            self.coherence.upgrades_s_to_m += 1
            for other in self.directory.holders(line, exclude=core):
                # Shared copies are clean: invalidate, no write-back.
                self.l1s[other].invalidate(address)
                self.directory.clear(other, line)
                self.coherence.invalidations += 1
                if emit is not None:
                    emit(
                        CacheEvent(
                            now, _EVICT, 1,
                            self.l1s[other].set_index(line), other, line,
                            False, False,
                        )
                    )
        self.l1s[core].mark_dirty(address)
        self.directory.set_state(core, line, MESIState.MODIFIED)

    def _fill_shared(
        self,
        address: int,
        hit_level: int,
        owner: Optional[int],
        evictions: List[Tuple[int, EvictedLine]],
        emit,
        now: int,
    ) -> int:
        """Install ``address`` into the shared levels above ``hit_level``."""
        deepest_fill = (
            len(self.shared) if hit_level == MEMORY_LEVEL else hit_level - 2
        )
        extra = 0
        for index in range(deepest_fill - 1, -1, -1):
            cache = self.shared[index]
            evicted = cache.fill(address, dirty=False, owner=owner)
            if evicted is None:
                continue
            level_no = index + 2
            evictions.append((level_no, evicted))
            if emit is not None:
                emit(
                    CacheEvent(
                        now, _WRITEBACK if evicted.dirty else _EVICT,
                        level_no, cache.set_index(address), evicted.owner,
                        evicted.address, False, evicted.dirty,
                    )
                )
            dirty = evicted.dirty
            if index == 0:
                dirty = self._back_invalidate(evicted.address, emit, now) or dirty
            if dirty:
                self.stats.record_writeback(level_no, evicted.owner)
                self._writeback_shared(
                    index + 1, evicted.address, evicted.owner, emit, now
                )
                if self.charge_deep_writebacks:
                    extra += self.latency.writeback_penalty(level_no)
        return extra

    def _fill_l1(
        self,
        core: int,
        address: int,
        owner: Optional[int],
        evictions: List[Tuple[int, EvictedLine]],
        emit,
        now: int,
    ) -> Tuple[bool, int]:
        """Install ``address`` into ``core``'s L1; handle the victim."""
        l1 = self.l1s[core]
        evicted = l1.fill(address, dirty=False, owner=owner)
        if evicted is None:
            return False, 0
        evictions.append((1, evicted))
        self.directory.clear(core, evicted.address)
        if emit is not None:
            emit(
                CacheEvent(
                    now, _WRITEBACK if evicted.dirty else _EVICT, 1,
                    l1.set_index(address), evicted.owner, evicted.address,
                    False, evicted.dirty,
                )
            )
        if not evicted.dirty:
            return False, 0
        self.stats.record_writeback(1, evicted.owner)
        self._writeback_shared(0, evicted.address, evicted.owner, emit, now)
        return True, self.latency.writeback_penalty(1)

    def _back_invalidate(self, address: int, emit, now: int) -> bool:
        """Inclusion: a line leaving the L2 leaves every L1 with it.

        Returns True when a dirty (Modified) L1 copy was merged into the
        departing line, making the final write-back dirty.
        """
        merged_dirty = False
        for core in self.directory.holders(address):
            l1 = self.l1s[core]
            snapshot = l1.invalidate(address)
            self.directory.clear(core, address)
            self.coherence.back_invalidations += 1
            if emit is not None:
                emit(
                    CacheEvent(
                        now, _EVICT, 1, l1.set_index(address), core,
                        address, False,
                        bool(snapshot is not None and snapshot.dirty),
                    )
                )
            if snapshot is not None and snapshot.dirty:
                self.stats.record_writeback(1, core)
                merged_dirty = True
        return merged_dirty

    def _writeback_shared(
        self, index: int, address: int, owner: Optional[int], emit, now: int
    ) -> None:
        """Land a dirty line in ``shared[index]`` (or memory past the end)."""
        if index >= len(self.shared):
            self.stats.memory_writes += 1
            return
        cache = self.shared[index]
        if cache.probe(address):
            cache.mark_dirty(address)
            return
        evicted = cache.fill(address, dirty=True, owner=owner)
        if evicted is None:
            return
        level_no = index + 2
        if emit is not None:
            emit(
                CacheEvent(
                    now, _WRITEBACK if evicted.dirty else _EVICT, level_no,
                    cache.set_index(address), evicted.owner,
                    evicted.address, False, evicted.dirty,
                )
            )
        dirty = evicted.dirty
        if index == 0:
            dirty = self._back_invalidate(evicted.address, emit, now) or dirty
        if dirty:
            self.stats.record_writeback(level_no, evicted.owner)
            self._writeback_shared(
                index + 1, evicted.address, evicted.owner, emit, now
            )


def make_coherent_hierarchy(
    *,
    cores: int,
    levels,
    line_size: int,
    rng: Optional[random.Random] = None,
    engine: Optional[str] = None,
    latency: Optional[LatencyModel] = None,
) -> CoherentHierarchy:
    """Build a coherent hierarchy from :class:`LevelParams`-style levels.

    ``levels[0]`` is replicated into one private L1 per core (RNG labels
    ``l1/core0`` … so replicas draw independent policy streams);
    ``levels[1:]`` become the shared L2/LLC with the historic ``l2`` /
    ``llc`` labels.  Called by
    :meth:`repro.cache.configs.HierarchyParams.build` when ``cores > 1``.
    """
    from repro.cache.configs import _LEVEL_RNG_KEYS, _cache_class
    from repro.replacement.registry import make_policy_factory

    if cores < 2:
        raise ConfigurationError(
            f"make_coherent_hierarchy needs cores >= 2, got {cores}"
        )
    if len(levels) < 2:
        raise ConfigurationError(
            "a coherent hierarchy needs a shared level below the L1s"
        )
    cache_cls = _cache_class(engine)
    master = ensure_rng(rng)
    l1_level = levels[0]
    l1s = [
        cache_cls(
            name=f"{l1_level.name}-c{core}",
            size_bytes=l1_level.size_bytes,
            associativity=l1_level.ways,
            line_size=line_size,
            policy_factory=make_policy_factory(l1_level.policy),
            write_policy=WritePolicy(l1_level.write_policy),
            allocation_policy=AllocationPolicy(l1_level.allocation_policy),
            rng=derive_rng(master, f"l1/core{core}"),
        )
        for core in range(cores)
    ]
    shared = [
        cache_cls(
            name=level.name,
            size_bytes=level.size_bytes,
            associativity=level.ways,
            line_size=line_size,
            policy_factory=make_policy_factory(level.policy),
            write_policy=WritePolicy(level.write_policy),
            allocation_policy=AllocationPolicy(level.allocation_policy),
            rng=derive_rng(master, _LEVEL_RNG_KEYS[index + 1]),
        )
        for index, level in enumerate(levels[1:])
    ]
    return CoherentHierarchy(
        l1s=l1s,
        shared=shared,
        latency=latency,
        rng=derive_rng(master, "hierarchy"),
    )
