"""Multi-core cache coherence: MESI states, directory, coherent hierarchy.

The paper measures its dirty-state channel inside one SMT core, where the
sender and receiver share an L1D.  This package models the *cross-core*
variant: N cores with private L1Ds over a shared inclusive L2, kept
coherent by a MESI-style directory protocol.  Coherence-induced
write-backs — a Modified line downgraded by another core's read (M→S) or
write (M→I) — drain through the same write-back timing machinery the
single-core channel measures, so the dirty state stays timing-visible
across cores (see :mod:`repro.channels.wb.cross_core`).

Public surface:

=====================================  ====================================
:class:`~repro.coherence.mesi.MESIState`        per-line M/E/S/I states
:class:`~repro.coherence.mesi.Directory`        who holds which line, in
                                                which state
:class:`~repro.coherence.mesi.CoherenceStats`   protocol event counters
:class:`~repro.coherence.hierarchy.CoherentHierarchy`  N private L1s over
                                                shared levels
:func:`~repro.coherence.hierarchy.make_coherent_hierarchy`  builder used
                                                by ``HierarchyParams.build``
=====================================  ====================================
"""

from repro.coherence.mesi import CoherenceStats, Directory, MESIState
from repro.coherence.hierarchy import CoherentHierarchy, make_coherent_hierarchy

__all__ = [
    "CoherenceStats",
    "CoherentHierarchy",
    "Directory",
    "MESIState",
    "make_coherent_hierarchy",
]
