"""NumPy array-of-simulations kernel: B replicas of one geometry per op.

The fast engine (:mod:`repro.engine.trace`) replays one simulation at a
time in pure Python.  Most real load — sweeps, ablations, detector
calibration — is thousands of *independent* (seed, trace) replicas of the
same hierarchy geometry, so :class:`BatchReplay` stacks B replicas into
shared arrays (tags/dirty shaped ``(B, sets, ways)``, policy metadata in
:mod:`repro.replacement.batch_state`) and advances all of them one access
per vectorized operation.

Parity contract
---------------
The kernel is a staged transcription of the fast engine's specialised
loop (:func:`repro.engine.trace._run_trace_soa`) plus the generic
write-through store path of :meth:`CacheHierarchy.access`: the same
policy updates, the same RNG streams, the same counter semantics, in the
same per-access order.  Every replica's observables are bit-identical to
an independent fast-engine ``run_trace`` over the same seed and trace —
``tests/test_engine_parity.py`` enforces this for every lifted policy and
both L1 write policies.

Replica independence is what makes the staging safe: no array cell is
shared between replicas, and within one vectorized call each replica
touches at most one set of one level, so scatter updates never collide.

RNG replication
---------------
A scalar run builds its hierarchy with ``params.build(rng=Random(seed))``,
which derives one child generator per level (labels ``l1``/``l2``/``llc``),
one per set inside each level, and finally the ``hierarchy`` jitter
generator.  The batch constructor replays exactly that derivation
per replica — but only materialises what the replay can observe: lifted
policy constructors never draw, so per-set generators are only built for
``random``-policy levels, and the jitter stream is reproduced wholesale
by transplanting ``random.Random``'s Mersenne Twister state into
``numpy.random.MT19937`` and vectorizing CPython's ``randint`` rejection
sampling over raw 32-bit words.

Policies without a batched state (and non-write-allocate or deep
write-through geometries) fall back to per-replica fast-engine replay in
:func:`run_batch_traces`; results are identical either way.
"""

from __future__ import annotations

import dataclasses
import random
import zlib
from dataclasses import dataclass
from itertools import chain
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.canonical import canonical_json
from repro.common.errors import ConfigurationError
from repro.common.rng import derive_seed
from repro.cache.cache import AllocationPolicy, WritePolicy
from repro.cache.configs import HierarchyParams, _LEVEL_RNG_KEYS
from repro.cache.hierarchy import MEMORY_LEVEL
from repro.cache.latency import LatencyModel
from repro.cache.stats import ALL_OWNERS, CacheStats
from repro.engine.trace import Access, TraceResult, run_trace
from repro.replacement.batch_state import is_lifted, make_batch_state

__all__ = [
    "BatchPoint",
    "BatchReplay",
    "batch_eligibility",
    "geometry_key",
    "run_batch_points",
    "run_batch_traces",
]


def batch_eligibility(params: HierarchyParams) -> Optional[str]:
    """Why ``params`` cannot take the batched kernel (None = it can).

    Mirrors ``_soa_eligible`` plus the batched world's own constraints:
    write-allocate everywhere, write-back below L1 (the L1 itself may be
    write-through — the Section 8 defense), and a lifted policy at every
    level.
    """
    for index, level in enumerate(params.levels):
        if (
            AllocationPolicy(level.allocation_policy)
            is not AllocationPolicy.WRITE_ALLOCATE
        ):
            return f"{level.name}: not write-allocate"
        if index > 0 and WritePolicy(level.write_policy) is not WritePolicy.WRITE_BACK:
            return f"{level.name}: deep levels must be write-back"
        if level.size_bytes % (level.ways * params.line_size) != 0:
            return f"{level.name}: geometry is not sets*ways*line_size"
        if not is_lifted(level.policy, level.ways):
            return f"{level.name}: policy {level.policy!r} is not lifted"
    return None


def _jitter_row(seed: int, count: int, jitter: int) -> np.ndarray:
    """The first ``count`` values of ``Random(seed).randint(0, jitter)``.

    CPython's ``randint`` draws ``k = (jitter+1).bit_length()`` top bits
    of successive 32-bit Twister words and rejects values > jitter; the
    same words come out of ``numpy.random.MT19937`` once the state is
    transplanted, so the rejection loop vectorizes over raw words.
    Overshooting the scalar stream is harmless — the jitter generator is
    private to the replica.
    """
    state = random.Random(seed).getstate()
    twister = np.random.MT19937()
    twister.state = {
        "bit_generator": "MT19937",
        "state": {
            "key": np.array(state[1][:-1], dtype=np.uint32),
            "pos": state[1][-1],
        },
    }
    bound = jitter + 1
    shift = 32 - bound.bit_length()
    out = np.empty(count, dtype=np.int64)
    filled = 0
    while filled < count:
        # Acceptance is always > 1/2, so one doubled draw nearly always
        # finishes the row.
        draws = max(64, 2 * (count - filled) + 16)
        candidates = (twister.random_raw(draws) >> shift).astype(np.int64)
        accepted = candidates[candidates < bound]
        take = min(accepted.size, count - filled)
        out[filled : filled + take] = accepted[:take]
        filled += take
    return out


@dataclass
class _LevelArrays:
    """Geometry constants and replica-stacked state of one cache level."""

    name: str
    sets: int
    ways: int
    offset_bits: int
    index_mask: int
    tag_shift: int
    tags: np.ndarray  # (B, sets, ways) int64; -1 = invalid way
    dirty: np.ndarray  # (B, sets, ways) bool
    pol: object  # BatchPolicyState


class BatchReplay:
    """B independent replicas of one hierarchy, stepped in lockstep.

    Parameters
    ----------
    params:
        The shared geometry; must satisfy :func:`batch_eligibility`.
    seeds:
        One master seed per replica — replica ``b`` is bit-identical to
        ``params.build(rng=random.Random(seeds[b]), engine="fast")``
        replaying ``traces[b]`` through :func:`run_trace`.
    traces:
        One ``(address, is_write)`` sequence per replica; lengths may
        differ (rows are padded and masked out as they finish).
    """

    def __init__(
        self,
        params: HierarchyParams,
        seeds: Sequence[int],
        traces: Sequence[Sequence[Access]],
        *,
        latency: Optional[LatencyModel] = None,
        owner: Optional[int] = None,
    ) -> None:
        reason = batch_eligibility(params)
        if reason is not None:
            raise ConfigurationError(f"geometry not batchable: {reason}")
        if len(seeds) != len(traces):
            raise ConfigurationError(
                f"{len(seeds)} seeds but {len(traces)} traces"
            )
        self.params = params
        self.latency = latency or LatencyModel()
        self.owner = owner
        self.replicas = len(seeds)
        self.l1_write_through = (
            WritePolicy(params.levels[0].write_policy)
            is WritePolicy.WRITE_THROUGH
        )
        self._ran = False

        # --- trace matrix, padded ------------------------------------
        # One fromiter over the flattened access stream beats a per-row
        # ``np.array(list_of_tuples)`` by ~2x at sweep sizes; rows are
        # then sliced back out of the flat block.
        rows = [list(trace) for trace in traces]
        self.lengths = np.array([len(row) for row in rows], dtype=np.int64)
        steps = int(self.lengths.max()) if rows else 0
        self.steps = steps
        self.addr = np.zeros((self.replicas, steps), dtype=np.int64)
        self.write = np.zeros((self.replicas, steps), dtype=bool)
        if steps:
            total = int(self.lengths.sum())
            packed = np.fromiter(
                chain.from_iterable(chain.from_iterable(rows)),
                dtype=np.int64,
                count=2 * total,
            ).reshape(total, 2)
            bounds = np.concatenate(([0], np.cumsum(self.lengths)))
            for b in range(self.replicas):
                start, end = int(bounds[b]), int(bounds[b + 1])
                self.addr[b, : end - start] = packed[start:end, 0]
                self.write[b, : end - start] = packed[start:end, 1] != 0

        # --- per-replica RNG derivation chain ------------------------
        line_size = params.line_size
        level_geometry = []
        for level in params.levels:
            sets = level.size_bytes // (level.ways * line_size)
            offset_bits = line_size.bit_length() - 1
            index_bits = sets.bit_length() - 1
            level_geometry.append((sets, offset_bits, index_bits))
        random_levels = [
            index
            for index, level in enumerate(params.levels)
            if level.policy == "random"
        ]
        seed_grids: Dict[int, List[List[int]]] = {
            index: [] for index in random_levels
        }
        set_label_crcs: Dict[int, List[int]] = {}
        for index in random_levels:
            name = params.levels[index].name
            set_label_crcs[index] = [
                zlib.crc32(f"{name}/set{i}".encode("utf-8"))
                for i in range(level_geometry[index][0])
            ]
        hierarchy_seeds: List[int] = []
        for seed in seeds:
            master = random.Random(seed)
            for index in range(len(params.levels)):
                level_seed = derive_seed(master, _LEVEL_RNG_KEYS[index])
                if index in seed_grids:
                    level_rng = random.Random(level_seed)
                    crcs = set_label_crcs[index]
                    seed_grids[index].append(
                        [level_rng.getrandbits(32) ^ crc for crc in crcs]
                    )
            hierarchy_seeds.append(derive_seed(master, "hierarchy"))

        # --- jitter matrix -------------------------------------------
        jitter = self.latency.jitter
        self.jitter = np.zeros((self.replicas, steps), dtype=np.int64)
        if jitter:
            for b, hier_seed in enumerate(hierarchy_seeds):
                count = int(self.lengths[b])
                if count:
                    self.jitter[b, :count] = _jitter_row(hier_seed, count, jitter)

        # --- level state ---------------------------------------------
        self.levels: List[_LevelArrays] = []
        for index, level in enumerate(params.levels):
            sets, offset_bits, index_bits = level_geometry[index]
            self.levels.append(
                _LevelArrays(
                    name=level.name,
                    sets=sets,
                    ways=level.ways,
                    offset_bits=offset_bits,
                    index_mask=sets - 1,
                    tag_shift=offset_bits + index_bits,
                    tags=np.full(
                        (self.replicas, sets, level.ways), -1, dtype=np.int64
                    ),
                    dirty=np.zeros(
                        (self.replicas, sets, level.ways), dtype=bool
                    ),
                    pol=make_batch_state(
                        level.policy,
                        self.replicas,
                        sets,
                        level.ways,
                        seed_grid=seed_grids.get(index),
                    ),
                )
            )

        # --- observables ---------------------------------------------
        num_levels = len(self.levels)
        self.hit_levels = np.zeros((self.replicas, steps), dtype=np.int16)
        self.latencies = np.zeros((self.replicas, steps), dtype=np.int64)
        self.dirty_ev = np.zeros((self.replicas, steps), dtype=bool)
        self.level_writebacks = np.zeros((num_levels, self.replicas), dtype=np.int64)
        self.memory_writes = np.zeros(self.replicas, dtype=np.int64)

    # ------------------------------------------------------------------
    # Kernel
    # ------------------------------------------------------------------
    def run(self) -> "BatchReplay":
        """Advance every replica through its whole trace; idempotent."""
        if self._ran:
            return self
        self._ran = True
        if self.steps == 0 or self.replicas == 0:
            return self

        latency_model = self.latency
        num_levels = len(self.levels)
        hit_lat = [
            latency_model.hit_latency(i + 1) for i in range(num_levels)
        ]
        # served-at-level cost by hit_level value (MEMORY_LEVEL -> dram).
        cost_lut = np.full(MEMORY_LEVEL + 1, latency_model.dram, dtype=np.int64)
        for i in range(num_levels):
            cost_lut[i + 1] = hit_lat[i]
        l1_wb_penalty = latency_model.writeback_penalty(1)
        wt_penalty = latency_model.write_through_store_penalty
        write_through = self.l1_write_through

        # Rows sorted by descending trace length: the alive set at step t
        # is a prefix of `order`.
        order = np.argsort(-self.lengths, kind="stable")
        sorted_lengths = self.lengths[order]

        l1 = self.levels[0]
        for t in range(self.steps):
            alive = int(
                np.searchsorted(-sorted_lengths, -t, side="left")
            )
            rows = order[:alive]
            addresses = self.addr[rows, t]
            writes = self.write[rows, t]
            lat = self.jitter[rows, t]  # fancy index -> private copy

            # --- walk ------------------------------------------------
            # `missing` after the level-`index` hit check is exactly the
            # set of rows needing a fill at level `index` (those with
            # hit_level > index + 1), so the walk saves each stage in
            # `miss_after` and the fill loop below reuses it instead of
            # re-deriving the masks from hit_level.
            hit_level = np.full(alive, MEMORY_LEVEL, dtype=np.int64)
            l1_sets = (addresses >> l1.offset_bits) & l1.index_mask
            l1_way = np.zeros(alive, dtype=np.int64)
            block = l1.tags[rows, l1_sets]
            hit_mask = block == (addresses >> l1.tag_shift)[:, None]
            l1_hit = hit_mask.any(axis=1)
            hit_pos = np.flatnonzero(l1_hit)
            if hit_pos.size:
                ways = hit_mask[hit_pos].argmax(axis=1)
                l1_way[hit_pos] = ways
                l1.pol.on_hit(rows[hit_pos], l1_sets[hit_pos], ways)
                hit_level[hit_pos] = 1
            missing = np.flatnonzero(~l1_hit)
            miss_after = [missing] * num_levels
            for index in range(1, num_levels):
                if missing.size:
                    level = self.levels[index]
                    sub_addr = addresses[missing]
                    sub_sets = (
                        sub_addr >> level.offset_bits
                    ) & level.index_mask
                    block = level.tags[rows[missing], sub_sets]
                    hit_mask = block == (sub_addr >> level.tag_shift)[:, None]
                    deep_hit = hit_mask.any(axis=1)
                    deep_pos = np.flatnonzero(deep_hit)
                    if deep_pos.size:
                        hit_pos = missing[deep_pos]
                        ways = hit_mask[deep_pos].argmax(axis=1)
                        level.pol.on_hit(
                            rows[hit_pos], sub_sets[deep_pos], ways
                        )
                        hit_level[hit_pos] = index + 1
                        missing = missing[~deep_hit]
                miss_after[index] = missing

            lat += cost_lut[hit_level]

            # --- fill path (deepest first) ---------------------------
            if miss_after[0].size:
                for index in range(num_levels - 1, -1, -1):
                    fill_pos = miss_after[index]
                    if fill_pos.size == 0:
                        continue
                    fill_addr = addresses[fill_pos]
                    level = self.levels[index]
                    sets = (fill_addr >> level.offset_bits) & level.index_mask
                    ways, dirty_victims = self._fill_level(
                        index,
                        rows[fill_pos],
                        sets,
                        fill_addr >> level.tag_shift,
                        fill_dirty=False,
                    )
                    if index == 0:
                        l1_way[fill_pos] = ways
                        dirty_idx = np.flatnonzero(dirty_victims)
                        if dirty_idx.size:
                            dirty_pos = fill_pos[dirty_idx]
                            lat[dirty_pos] += l1_wb_penalty
                            self.dirty_ev[rows[dirty_pos], t] = True

            # --- store finalisation ----------------------------------
            store_pos = np.flatnonzero(writes)
            if store_pos.size:
                if write_through:
                    lat[store_pos] += wt_penalty
                    self._propagate_store(
                        rows[store_pos], addresses[store_pos]
                    )
                else:
                    l1.dirty[
                        rows[store_pos], l1_sets[store_pos], l1_way[store_pos]
                    ] = True

            # --- observables -----------------------------------------
            self.hit_levels[rows, t] = hit_level
            self.latencies[rows, t] = lat
        return self

    def _fill_level(
        self,
        index: int,
        rows: np.ndarray,
        sets: np.ndarray,
        tags: np.ndarray,
        fill_dirty: bool,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Install one line per (replica, set); returns (ways, dirty-victim).

        Transcribes ``FastSet.fill``: lowest invalid way wins, otherwise
        the policy chooses; a valid victim is invalidated (policy notified)
        before the install, and dirty victims are recorded and cascaded
        one level deeper, exactly like ``CacheHierarchy._writeback``.
        """
        level = self.levels[index]
        count = len(rows)
        block = level.tags[rows, sets]
        invalid = block == -1
        has_invalid = invalid.any(axis=1)
        full_pos = np.flatnonzero(~has_invalid)
        dirty_victims = np.zeros(count, dtype=bool)
        cascade = None
        if full_pos.size == 0:
            ways = invalid.argmax(axis=1)
        else:
            ways = np.zeros(count, dtype=np.int64)
            inv_pos = np.flatnonzero(has_invalid)
            if inv_pos.size:
                ways[inv_pos] = invalid[inv_pos].argmax(axis=1)
            full_rows = rows[full_pos]
            full_sets = sets[full_pos]
            victim_ways = level.pol.victim(full_rows, full_sets)
            ways[full_pos] = victim_ways
            victim_tags = level.tags[full_rows, full_sets, victim_ways]
            victim_dirty = level.dirty[full_rows, full_sets, victim_ways]
            level.pol.on_invalidate(full_rows, full_sets, victim_ways)
            dirty_idx = np.flatnonzero(victim_dirty)
            if dirty_idx.size:
                dirty_pos = full_pos[dirty_idx]
                dirty_victims[dirty_pos] = True
                wb_rows = rows[dirty_pos]
                wb_sets = sets[dirty_pos]
                self.level_writebacks[index][wb_rows] += 1
                victim_addr = (
                    victim_tags[dirty_idx] << level.tag_shift
                ) | (wb_sets << level.offset_bits)
                cascade = (index + 1, wb_rows, victim_addr)
        # Install, then let the dirty victims land one level deeper —
        # matching the scalar order: fill returns the evicted line and the
        # caller cascades it afterwards.
        level.tags[rows, sets, ways] = tags
        level.dirty[rows, sets, ways] = fill_dirty
        level.pol.on_fill(rows, sets, ways)
        if cascade is not None:
            self._writeback(*cascade)
        return ways, dirty_victims

    def _writeback(
        self, index: int, rows: np.ndarray, addresses: np.ndarray
    ) -> None:
        """Land dirty victims evicted from level ``index-1`` at ``index``."""
        if rows.size == 0:
            return
        if index >= len(self.levels):
            self.memory_writes[rows] += 1
            return
        level = self.levels[index]
        sets = (addresses >> level.offset_bits) & level.index_mask
        tags = addresses >> level.tag_shift
        block = level.tags[rows, sets]
        present_mask = block == tags[:, None]
        present = present_mask.any(axis=1)
        pos = np.flatnonzero(present)
        if pos.size:
            ways = present_mask[pos].argmax(axis=1)
            # mark_dirty on a resident copy: no policy touch, no counters.
            level.dirty[rows[pos], sets[pos], ways] = True
        absent = np.flatnonzero(~present)
        if absent.size:
            self._fill_level(
                index,
                rows[absent],
                sets[absent],
                tags[absent],
                fill_dirty=True,
            )

    def _propagate_store(self, rows: np.ndarray, addresses: np.ndarray) -> None:
        """Write-through store routing: settle at the first deeper
        write-back level holding the line, else count a memory write."""
        remaining_rows = rows
        remaining_addr = addresses
        for index in range(1, len(self.levels)):
            if remaining_rows.size == 0:
                return
            level = self.levels[index]
            sets = (remaining_addr >> level.offset_bits) & level.index_mask
            tags = remaining_addr >> level.tag_shift
            block = level.tags[remaining_rows, sets]
            present_mask = block == tags[:, None]
            present = present_mask.any(axis=1)
            pos = np.flatnonzero(present)
            if pos.size:
                ways = present_mask[pos].argmax(axis=1)
                level.dirty[remaining_rows[pos], sets[pos], ways] = True
            keep = np.flatnonzero(~present)
            remaining_rows = remaining_rows[keep]
            remaining_addr = remaining_addr[keep]
        if remaining_rows.size:
            self.memory_writes[remaining_rows] += 1

    # ------------------------------------------------------------------
    # Per-replica views
    # ------------------------------------------------------------------
    def result(self, replica: int) -> TraceResult:
        """The :class:`TraceResult` of one replica (plain Python lists)."""
        length = int(self.lengths[replica])
        return TraceResult(
            hit_levels=[int(v) for v in self.hit_levels[replica, :length]],
            latencies=[int(v) for v in self.latencies[replica, :length]],
            dirty_evictions=self.dirty_ev[replica, :length].tolist(),
        )

    def results(self) -> List[TraceResult]:
        """All replica results, replica order."""
        return [self.result(b) for b in range(self.replicas)]

    def fingerprints(self) -> List[Tuple[int, int, int, int]]:
        """Per-replica fingerprint tuples without list materialisation."""
        out = []
        for b in range(self.replicas):
            length = int(self.lengths[b])
            hl = self.hit_levels[b, :length]
            out.append(
                (
                    length,
                    int(hl.sum()),
                    int(self.latencies[b, :length].sum()),
                    int(self.dirty_ev[b, :length].sum()),
                )
            )
        return out

    def stats(self, replica: int) -> CacheStats:
        """A :class:`CacheStats` equal to the scalar engine's accumulator.

        Walk counters are derived from the hit-level matrix (a level was
        visited iff the walk reached it); writeback and memory counters
        were accumulated during the fill stages.  Levels never visited
        stay absent, matching the generic path's lazy counter creation.
        """
        stats = CacheStats()
        length = int(self.lengths[replica])
        hit_levels = self.hit_levels[replica, :length]
        writes = self.write[replica, :length]
        keys = (
            (ALL_OWNERS,)
            if self.owner is None
            else (self.owner, ALL_OWNERS)
        )
        for index in range(len(self.levels)):
            level_number = index + 1
            visited = hit_levels >= level_number
            accesses = int(visited.sum())
            if accesses == 0:
                continue
            hits = int((hit_levels == level_number).sum())
            stores = int((writes & visited).sum())
            writebacks = int(self.level_writebacks[index][replica])
            for key in keys:
                counter = stats._counters[level_number][key]
                counter.accesses = accesses
                counter.hits = hits
                counter.stores = stores
                counter.writebacks = writebacks
        stats.memory_reads = int((hit_levels == MEMORY_LEVEL).sum())
        stats.memory_writes = int(self.memory_writes[replica])
        return stats

    def way_states(
        self, replica: int, level_index: int, set_index: int
    ) -> Tuple[Tuple[bool, Optional[int], bool, bool, Optional[int]], ...]:
        """One set's normalised way states (``FastSet.way_states`` shape)."""
        level = self.levels[level_index]
        tags = level.tags[replica, set_index]
        dirty = level.dirty[replica, set_index]
        states = []
        for way in range(level.ways):
            if tags[way] == -1:
                states.append((False, None, False, False, None))
            else:
                states.append(
                    (True, int(tags[way]), bool(dirty[way]), False, self.owner)
                )
        return tuple(states)

    def index_snapshot(
        self, replica: int, level_index: int, set_index: int
    ) -> Dict[int, int]:
        """tag -> way mapping of one set (``FastSet.index_snapshot``)."""
        level = self.levels[level_index]
        tags = level.tags[replica, set_index]
        return {
            int(tags[way]): way
            for way in range(level.ways)
            if tags[way] != -1
        }


def run_batch_traces(
    params: HierarchyParams,
    seeds: Sequence[int],
    traces: Sequence[Sequence[Access]],
    *,
    latency: Optional[LatencyModel] = None,
    owner: Optional[int] = None,
) -> List[TraceResult]:
    """Replay one trace per seed over a shared geometry, batched if possible.

    Eligible geometries run through :class:`BatchReplay`; anything else
    (unlifted policy, exotic write/allocation pairing) falls back to
    per-replica fast-engine replay.  Either way the results are
    bit-identical to building ``params`` per seed and calling
    :func:`run_trace`.
    """
    if batch_eligibility(params) is None:
        replay = BatchReplay(
            params, seeds, traces, latency=latency, owner=owner
        )
        return replay.run().results()
    return [
        run_trace(
            params.build(
                rng=random.Random(seed), engine="fast", latency=latency
            ),
            trace,
            owner=owner,
        )
        for seed, trace in zip(seeds, traces)
    ]


@dataclass(frozen=True)
class BatchPoint:
    """One sweep point: a seeded trace over some geometry.

    The driver below groups points by :func:`geometry_key` so that
    same-geometry points — e.g. the seed axis of a sweep ``Axis`` —
    share one :class:`BatchReplay` regardless of submission order.
    """

    params: HierarchyParams
    seed: int
    trace: Tuple[Access, ...]
    latency: Optional[LatencyModel] = None
    owner: Optional[int] = None


def geometry_key(
    params: HierarchyParams,
    latency: Optional[LatencyModel] = None,
    owner: Optional[int] = None,
) -> str:
    """Canonical digest of everything replicas must share to batch."""
    payload = {
        "hierarchy": params.to_dict(),
        "latency": None if latency is None else dataclasses.asdict(latency),
        "owner": owner,
    }
    return f"{zlib.crc32(canonical_json(payload).encode('utf-8')):08x}"


def run_batch_points(
    points: Sequence[BatchPoint], max_group: int = 256
) -> List[TraceResult]:
    """Run arbitrary sweep points, coalescing same-geometry ones.

    Results come back in input order; ``max_group`` bounds replica count
    per kernel so memory stays proportional to one group.
    """
    groups: Dict[str, List[int]] = {}
    for position, point in enumerate(points):
        key = geometry_key(point.params, point.latency, point.owner)
        groups.setdefault(key, []).append(position)
    results: List[Optional[TraceResult]] = [None] * len(points)
    for positions in groups.values():
        for start in range(0, len(positions), max_group):
            chunk = positions[start : start + max_group]
            first = points[chunk[0]]
            chunk_results = run_batch_traces(
                first.params,
                [points[i].seed for i in chunk],
                [points[i].trace for i in chunk],
                latency=first.latency,
                owner=first.owner,
            )
            for position, trace_result in zip(chunk, chunk_results):
                results[position] = trace_result
    return results  # type: ignore[return-value]
