"""Batched trace replay — the fast engine's bulk entry point.

Experiments and benchmarks that do not need the SMT co-simulation (no
timing interleave between threads, just a fixed access sequence) can hand
a whole trace to :func:`run_trace` instead of calling
``hierarchy.access`` per element from Python.

On a hierarchy built entirely from :class:`~repro.engine.fast_cache
.FastCache` levels with the paper's write-back / write-allocate policies,
:func:`run_trace` switches to a specialised inner loop that inlines the
level walk, the fill path and the statistics updates into one frame —
no per-access :class:`~repro.cache.hierarchy.AccessTrace` objects, no
method dispatch per level.  The loop is a line-for-line transcription of
:meth:`CacheHierarchy.access` (same RNG draws, same policy calls, same
counter updates, in the same order), so its observables are bit-identical
to the generic path; ``tests/test_engine_parity.py`` holds it to that.

Any other configuration — reference engine, write-through levels,
defense cache subclasses — replays through the generic per-access loop.
Both paths accept the same traces, which is what the differential parity
harness exploits: one trace, two engines, event streams compared
element-wise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.cache.cache import AllocationPolicy, WritePolicy
from repro.cache.hierarchy import MEMORY_LEVEL, CacheHierarchy
from repro.cache.stats import ALL_OWNERS

#: One trace element: (line address, is_write).
Access = Tuple[int, bool]


@dataclass
class TraceResult:
    """Flat, index-aligned observables of one replayed trace."""

    #: Level that served each access (1 = L1, ..., 99 = DRAM).
    hit_levels: List[int] = field(default_factory=list)
    #: Cycles charged to each access.
    latencies: List[int] = field(default_factory=list)
    #: Whether each access's L1 fill replaced a dirty victim — the
    #: paper's observable bit.
    dirty_evictions: List[bool] = field(default_factory=list)

    @property
    def accesses(self) -> int:
        """Number of accesses replayed."""
        return len(self.hit_levels)

    @property
    def total_latency(self) -> int:
        """Sum of all per-access latencies."""
        return sum(self.latencies)

    @property
    def l1_hits(self) -> int:
        """Number of accesses served by L1."""
        return sum(1 for level in self.hit_levels if level == 1)

    @property
    def dirty_eviction_count(self) -> int:
        """Number of accesses whose L1 victim was dirty."""
        return sum(1 for flag in self.dirty_evictions if flag)

    def fingerprint(self) -> Tuple[int, int, int, int]:
        """Order-insensitive digest used by parity tests and benchmarks."""
        return (
            self.accesses,
            sum(self.hit_levels),
            self.total_latency,
            self.dirty_eviction_count,
        )


def _soa_eligible(hierarchy: CacheHierarchy) -> bool:
    """Whether the specialised struct-of-arrays loop applies.

    Exact FastCache levels only (defense subclasses carry extra hooks the
    inline loop would bypass) with the write-back + write-allocate pairing
    the inline store path assumes — and telemetry off: with an enabled
    bus the replay routes through the generic per-access path, which
    carries the emission sites.  That split is what keeps observability
    pay-for-what-you-use: the SoA loop never checks a bus per access,
    and ``scripts/bench_engine.py`` gates the telemetry-off speedup.
    """
    from repro.engine.fast_cache import FastCache

    if hierarchy.telemetry_enabled:
        return False
    return all(
        type(level) is FastCache
        and level.write_policy is WritePolicy.WRITE_BACK
        and level.allocation_policy is AllocationPolicy.WRITE_ALLOCATE
        for level in hierarchy.levels
    )


def _run_trace_soa(
    hierarchy: CacheHierarchy,
    accesses: Iterable[Access],
    owner: Optional[int],
) -> TraceResult:
    """Specialised replay over all-FastCache levels.

    Transcribes ``CacheHierarchy.access`` (walk, fill path, store hit,
    jitter, statistics) with every per-level quantity pre-bound.  Counter
    objects are fetched lazily on each level's first visit so the stats
    dictionaries end up with exactly the keys the generic path would
    create.
    """
    latency_model = hierarchy.latency
    jitter = latency_model.jitter
    rng_randint = hierarchy.rng.randint
    stats = hierarchy.stats
    keys = (ALL_OWNERS,) if owner is None else (owner, ALL_OWNERS)
    levels = hierarchy.levels
    num_levels = len(levels)
    # Per level: [sets, offset_bits, index_mask, tag_shift, address_of,
    #             counters-or-None].
    data = [
        [
            level.sets,
            level._offset_bits,
            level._index_mask,
            level._tag_shift,
            level._address_of,
            None,
        ]
        for level in levels
    ]
    hit_lat = [latency_model.hit_latency(i + 1) for i in range(num_levels)]
    dram = latency_model.dram
    l1_wb_penalty = latency_model.writeback_penalty(1)
    charge_deep = hierarchy.charge_deep_writebacks
    wb_penalty = [latency_model.writeback_penalty(i + 1) for i in range(num_levels)]
    record_writeback = stats.record_writeback
    writeback = hierarchy._writeback

    result = TraceResult()
    out_level = result.hit_levels.append
    out_latency = result.latencies.append
    out_dirty = result.dirty_evictions.append

    l1 = data[0]
    l1_sets, l1_offset, l1_mask, l1_shift = l1[0], l1[1], l1[2], l1[3]
    l1_hit_latency = hit_lat[0]
    memory_reads = 0

    for address, write in accesses:
        latency = rng_randint(0, jitter) if jitter else 0

        # --- walk, L1 step unrolled -----------------------------------
        cache_set = l1_sets[(address >> l1_offset) & l1_mask]
        way = cache_set._index.get(address >> l1_shift)
        counters = l1[5]
        if counters is None:
            counters = l1[5] = tuple(stats._counters[1][key] for key in keys)
        if way is not None:
            cache_set.pol.on_hit(way)
            if owner is not None:
                cache_set.owners[way] = owner
            for counter in counters:
                counter.accesses += 1
                counter.hits += 1
                if write:
                    counter.stores += 1
            latency += l1_hit_latency
            if write:
                cache_set.mark_dirty(way)
            out_level(1)
            out_latency(latency)
            out_dirty(False)
            continue
        for counter in counters:
            counter.accesses += 1
            if write:
                counter.stores += 1

        hit_level = MEMORY_LEVEL
        for index in range(1, num_levels):
            entry = data[index]
            deep_set = entry[0][(address >> entry[1]) & entry[2]]
            deep_way = deep_set._index.get(address >> entry[3])
            hit = deep_way is not None
            counters = entry[5]
            if counters is None:
                counters = entry[5] = tuple(
                    stats._counters[index + 1][key] for key in keys
                )
            for counter in counters:
                counter.accesses += 1
                if hit:
                    counter.hits += 1
                if write:
                    counter.stores += 1
            if hit:
                deep_set.pol.on_hit(deep_way)
                if owner is not None:
                    deep_set.owners[deep_way] = owner
                hit_level = index + 1
                break

        # --- fill path -------------------------------------------------
        if hit_level == MEMORY_LEVEL:
            latency += dram
            memory_reads += 1
            deepest_fill = num_levels
        else:
            latency += hit_lat[hit_level - 1]
            deepest_fill = hit_level - 1
        l1_victim_dirty = False
        for index in range(deepest_fill - 1, -1, -1):
            entry = data[index]
            set_index = (address >> entry[1]) & entry[2]
            evicted = entry[0][set_index].fill(
                address >> entry[3], False, owner, set_index, entry[4], None
            )
            if evicted is None:
                continue
            if evicted.dirty:
                record_writeback(index + 1, evicted.owner)
                writeback(index + 1, evicted.address, evicted.owner)
                if index == 0:
                    l1_victim_dirty = True
                    latency += l1_wb_penalty
                elif charge_deep:
                    latency += wb_penalty[index]
        if write:
            # The line was just installed at L1 (write-allocate), so the
            # store hit path reduces to marking it dirty.
            cache_set = l1_sets[(address >> l1_offset) & l1_mask]
            cache_set.mark_dirty(cache_set._index[address >> l1_shift])
        out_level(hit_level)
        out_latency(latency)
        out_dirty(l1_victim_dirty)

    stats.memory_reads += memory_reads
    return result


def run_trace(
    hierarchy: CacheHierarchy,
    accesses: Iterable[Access],
    owner: Optional[int] = None,
) -> TraceResult:
    """Replay ``accesses`` through ``hierarchy``, collecting observables.

    ``accesses`` is any iterable of ``(address, is_write)`` pairs;
    ``owner`` is attributed to every access (the batched path models a
    single-threaded replay — interleaved multi-thread runs belong to the
    SMT co-simulation).  All-FastCache hierarchies take the specialised
    struct-of-arrays loop; everything else replays through the public
    per-access API.  Results are bit-identical either way.
    """
    if _soa_eligible(hierarchy):
        return _run_trace_soa(hierarchy, accesses, owner)
    result = TraceResult()
    access = hierarchy.access
    out_level = result.hit_levels.append
    out_latency = result.latencies.append
    out_dirty = result.dirty_evictions.append
    for address, write in accesses:
        trace = access(address, write, owner)
        out_level(trace.hit_level)
        out_latency(trace.latency)
        out_dirty(trace.l1_victim_dirty)
    return result


def run_trace_summary(
    hierarchy: CacheHierarchy,
    accesses: Iterable[Access],
    owner: Optional[int] = None,
) -> Tuple[int, int, int, int]:
    """Replay ``accesses`` and return just the fingerprint tuple.

    ``(accesses, hit_level_sum, total_latency, dirty_evictions)`` — the
    benchmark loop's shape.
    """
    return run_trace(hierarchy, accesses, owner).fingerprint()


def event_stream(
    hierarchy: CacheHierarchy,
    accesses: Sequence[Access],
    owner: Optional[int] = None,
) -> List[Tuple[int, int, bool, Tuple[Tuple[int, int, bool], ...]]]:
    """Full per-access event tuples for differential comparisons.

    Each element is ``(hit_level, latency, l1_victim_dirty, evictions)``
    with evictions as ``(level, victim_address, victim_dirty)`` tuples —
    everything two engines must agree on, access by access.  Always uses
    the generic per-access path: this is the oracle view the specialised
    loop is checked against.
    """
    events = []
    access = hierarchy.access
    for address, write in accesses:
        trace = access(address, write, owner)
        events.append(
            (
                trace.hit_level,
                trace.latency,
                trace.l1_victim_dirty,
                tuple(
                    (level, line.address, line.dirty)
                    for level, line in trace.evictions
                ),
            )
        )
    return events
