"""Fast cache level: :class:`~repro.cache.cache.Cache` on SoA sets.

:class:`FastCache` keeps the reference cache's constructor, validation and
public API (the hierarchy drives both engines through the exact same
calls) and swaps in:

* :class:`~repro.engine.fast_set.FastSet` sets via the ``_make_set`` hook —
  the per-set policy RNG derivation in the base constructor is untouched,
  so both engines hand identical ``random.Random`` streams to their
  policies;
* cached address-field integers (``offset_bits``/index mask/tag shift) so
  the hot path avoids the property chain through
  :class:`~repro.mem.address.AddressLayout`;
* mask-based ``is_dirty`` (the reference reads ``lines[way].dirty``, which
  a FastSet does not have).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.cache.cache import AllocationPolicy, Cache, WritePolicy
from repro.cache.line import EvictedLine
from repro.engine.fast_set import FastSet
from repro.replacement.base import PolicyFactory

__all__ = ["FastCache", "AllocationPolicy", "WritePolicy"]


class FastCache(Cache):
    """Drop-in replacement for :class:`Cache` built on struct-of-arrays sets."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        associativity: int,
        line_size: int,
        policy_factory: PolicyFactory,
        write_policy: WritePolicy = WritePolicy.WRITE_BACK,
        allocation_policy: AllocationPolicy = AllocationPolicy.WRITE_ALLOCATE,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(
            name,
            size_bytes,
            associativity,
            line_size,
            policy_factory,
            write_policy=write_policy,
            allocation_policy=allocation_policy,
            rng=rng,
        )
        layout = self.layout
        self._offset_bits = layout.offset_bits
        self._index_mask = layout.num_sets - 1
        self._tag_shift = layout.offset_bits + layout.index_bits

    def _make_set(self, ways: int, policy) -> FastSet:
        return FastSet(ways, policy)

    # ------------------------------------------------------------------
    # Address helpers on cached integers
    # ------------------------------------------------------------------
    def set_index(self, address: int) -> int:
        return (address >> self._offset_bits) & self._index_mask

    def tag_of(self, address: int) -> int:
        return address >> self._tag_shift

    def _address_of(self, tag: int, set_index: int) -> int:
        return (tag << self._tag_shift) | (set_index << self._offset_bits)

    # ------------------------------------------------------------------
    # Hot-path operations
    # ------------------------------------------------------------------
    def probe(self, address: int) -> bool:
        cache_set = self.sets[(address >> self._offset_bits) & self._index_mask]
        return (address >> self._tag_shift) in cache_set._index

    def is_dirty(self, address: int) -> bool:
        cache_set = self.sets[(address >> self._offset_bits) & self._index_mask]
        way = cache_set._index.get(address >> self._tag_shift)
        return way is not None and bool(cache_set.dirty_mask & (1 << way))

    def lookup(self, address: int, owner: Optional[int]) -> bool:
        cache_set = self.sets[(address >> self._offset_bits) & self._index_mask]
        way = cache_set._index.get(address >> self._tag_shift)
        if way is None:
            return False
        cache_set.pol.on_hit(way)
        if owner is not None:
            cache_set.owners[way] = owner
        return True

    def mark_dirty(self, address: int) -> None:
        cache_set = self.sets[(address >> self._offset_bits) & self._index_mask]
        way = cache_set._index.get(address >> self._tag_shift)
        if way is None:
            raise ConfigurationError(
                f"{self.name}: mark_dirty on non-resident {address:#x}"
            )
        cache_set.mark_dirty(way)

    def fill(
        self, address: int, dirty: bool, owner: Optional[int]
    ) -> Optional[EvictedLine]:
        set_index = (address >> self._offset_bits) & self._index_mask
        return self.sets[set_index].fill(
            tag=address >> self._tag_shift,
            dirty=dirty,
            owner=owner,
            set_index=set_index,
            address_of=self._address_of,
            allowed_ways=self.allowed_ways(owner),
        )

    def invalidate(self, address: int) -> Optional[EvictedLine]:
        cache_set = self.sets[(address >> self._offset_bits) & self._index_mask]
        return cache_set.invalidate(address >> self._tag_shift)
