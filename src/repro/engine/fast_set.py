"""Struct-of-arrays cache set — the fast engine's core data structure.

Instead of a list of :class:`~repro.cache.line.CacheLine` objects, a
:class:`FastSet` keeps parallel arrays: a tag list, an owner list, and
three bitmasks (valid/dirty/locked) packed into plain ints, plus the same
``tag -> way`` dict index and incremental valid/dirty counters as the
reference :class:`~repro.cache.cache_set.CacheSet`.  Replacement metadata
lives in an integer-encoded :class:`~repro.replacement.fast_state
.FastPolicyState` instead of the reference policy object.

Parity contract: every public method is bit-identical to the reference
set — same return values, same exceptions, same calls into the policy
layer in the same order (so shared ``random.Random`` streams advance
identically).  ``tests/test_engine_parity.py`` enforces this by replaying
traces through both engines.  The reference implementation stays the
semantic oracle; when in doubt, its behaviour wins.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError, SimulationError
from repro.cache.cache_set import AddressReconstructor
from repro.cache.line import EvictedLine
from repro.replacement.base import ReplacementPolicy
from repro.replacement.fast_state import fast_state_for

#: Normalised per-way state used for cross-engine comparisons:
#: (valid, tag, dirty, locked, owner), with tag/owner None when invalid.
WayState = Tuple[bool, Optional[int], bool, bool, Optional[int]]


class FastSet:
    """One set of a set-associative cache, struct-of-arrays layout."""

    __slots__ = (
        "ways",
        "policy",
        "pol",
        "tags",
        "owners",
        "valid_mask",
        "dirty_mask",
        "locked_mask",
        "_full",
        "_index",
        "_valid_count",
        "_dirty_count",
    )

    def __init__(self, ways: int, policy: ReplacementPolicy) -> None:
        if ways <= 0:
            raise ConfigurationError(f"ways must be positive, got {ways}")
        if policy.ways != ways:
            raise ConfigurationError(
                f"policy manages {policy.ways} ways but the set has {ways}"
            )
        self.ways = ways
        #: The reference policy object, kept for type introspection
        #: (``type(set.policy)``) and constructor parameters.  Its internal
        #: metadata is frozen at conversion time — the live state is
        #: ``self.pol``.
        self.policy = policy
        self.pol = fast_state_for(policy)
        self.tags: List[int] = [0] * ways
        self.owners: List[Optional[int]] = [None] * ways
        self.valid_mask = 0
        self.dirty_mask = 0
        self.locked_mask = 0
        self._full = (1 << ways) - 1
        self._index: Dict[int, int] = {}
        self._valid_count = 0
        self._dirty_count = 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def find(self, tag: int) -> Optional[int]:
        """Way index holding ``tag``, or None."""
        return self._index.get(tag)

    def touch(self, way: int) -> None:
        """Record a hit on ``way`` with the replacement policy."""
        self.pol.on_hit(way)

    # ------------------------------------------------------------------
    # Fill / eviction
    # ------------------------------------------------------------------
    def _dirty_hint(self) -> Tuple[bool, ...]:
        # Dirty implies valid here (eviction/invalidation clears the bit),
        # matching the reference's ``line.valid and line.dirty``.
        dirty = self.dirty_mask
        return tuple(bool((dirty >> way) & 1) for way in range(self.ways))

    def choose_victim(self, allowed_ways: Optional[Sequence[int]] = None) -> int:
        """Pick the way a fill will (re)use, preferring invalid ways.

        Mirrors the reference set exactly, including the bounded
        victim-nudge loop and its fallback, so policy RNG streams stay in
        lock-step between engines.
        """
        valid = self.valid_mask
        full = self._full
        if allowed_ways is None:
            if valid != full:
                invalid = ~valid & full
                return (invalid & -invalid).bit_length() - 1
            evictable_mask = full & ~self.locked_mask
            if not evictable_mask:
                raise SimulationError(
                    "no evictable way: all permitted ways are locked"
                )
            pol = self.pol
            if pol.wants_dirty_hint:
                pol.notify_dirty_ways(self._dirty_hint())
            if evictable_mask == full:
                # Hot path: nothing locked, first policy choice stands.
                return pol.victim()
            for _ in range(4 * self.ways):
                way = pol.victim()
                if (evictable_mask >> way) & 1:
                    return way
                pol.on_hit(way)
            return (evictable_mask & -evictable_mask).bit_length() - 1

        # Restricted-way path (way-partitioning defenses); cold, so mirror
        # the reference shape directly.
        if valid != full:
            for way in allowed_ways:
                if not (valid >> way) & 1:
                    return way
        allowed = set(allowed_ways)
        if not allowed:
            raise ConfigurationError("allowed_ways must not be empty")
        locked = self.locked_mask
        evictable = {way for way in allowed if not (locked >> way) & 1}
        if not evictable:
            raise SimulationError(
                "no evictable way: all permitted ways are locked"
            )
        pol = self.pol
        if pol.wants_dirty_hint:
            pol.notify_dirty_ways(self._dirty_hint())
        for _ in range(4 * self.ways):
            way = pol.victim()
            if way in evictable:
                return way
            pol.on_hit(way)
        return min(evictable)

    def fill(
        self,
        tag: int,
        dirty: bool,
        owner: Optional[int],
        set_index: int,
        address_of: AddressReconstructor,
        allowed_ways: Optional[Sequence[int]] = None,
    ) -> Optional[EvictedLine]:
        """Install ``tag`` into the set, returning the evicted line if any."""
        if tag in self._index:
            raise SimulationError(
                f"fill of tag {tag:#x} that is already present in the set"
            )
        way = self.choose_victim(allowed_ways)
        bit = 1 << way
        evicted: Optional[EvictedLine] = None
        if self.valid_mask & bit:
            victim_dirty = bool(self.dirty_mask & bit)
            evicted = EvictedLine(
                address=address_of(self.tags[way], set_index),
                dirty=victim_dirty,
                owner=self.owners[way],
            )
            del self._index[self.tags[way]]
            self._valid_count -= 1
            if victim_dirty:
                self.dirty_mask &= ~bit
                self._dirty_count -= 1
            self.pol.on_invalidate(way)
        self.tags[way] = tag
        self.owners[way] = owner
        self.valid_mask |= bit
        self.locked_mask &= ~bit
        if dirty:
            self.dirty_mask |= bit
            self._dirty_count += 1
        self._index[tag] = way
        self._valid_count += 1
        self.pol.on_fill(way)
        return evicted

    def invalidate(self, tag: int) -> Optional[EvictedLine]:
        """Drop ``tag`` from the set (clflush), reporting its final state."""
        way = self._index.get(tag)
        if way is None:
            return None
        bit = 1 << way
        was_dirty = bool(self.dirty_mask & bit)
        snapshot = EvictedLine(address=-1, dirty=was_dirty, owner=self.owners[way])
        del self._index[tag]
        self._valid_count -= 1
        if was_dirty:
            self.dirty_mask &= ~bit
            self._dirty_count -= 1
        self.valid_mask &= ~bit
        self.locked_mask &= ~bit
        self.owners[way] = None
        self.pol.on_invalidate(way)
        return snapshot

    def invalidate_all(self) -> None:
        """Drop every line (cache-wide flush, e.g. a defense rekey)."""
        valid = self.valid_mask
        way = 0
        while valid:
            if valid & 1:
                self.owners[way] = None
                self.pol.on_invalidate(way)
            valid >>= 1
            way += 1
        self.valid_mask = 0
        self.dirty_mask = 0
        self.locked_mask = 0
        self._index.clear()
        self._valid_count = 0
        self._dirty_count = 0

    def mark_dirty(self, way: int) -> None:
        """Set the dirty bit of the (valid) line in ``way``."""
        bit = 1 << way
        if not self.valid_mask & bit:
            raise SimulationError(f"mark_dirty on invalid way {way}")
        if not self.dirty_mask & bit:
            self.dirty_mask |= bit
            self._dirty_count += 1

    def set_owner(self, way: int, owner: Optional[int]) -> None:
        """Record the hardware thread that last touched ``way``."""
        self.owners[way] = owner

    # ------------------------------------------------------------------
    # Introspection used by experiments, defenses and tests
    # ------------------------------------------------------------------
    def dirty_count(self) -> int:
        """Number of valid dirty lines currently in the set (O(1))."""
        return self._dirty_count

    def valid_count(self) -> int:
        """Number of valid lines currently in the set (O(1))."""
        return self._valid_count

    def scan_counts(self) -> Tuple[int, int]:
        """(valid, dirty) recomputed from the bitmasks (invariant tests)."""
        valid = bin(self.valid_mask).count("1")
        dirty = bin(self.dirty_mask & self.valid_mask).count("1")
        return valid, dirty

    def index_snapshot(self) -> Dict[int, int]:
        """Copy of the tag -> way index (exposed for the staleness tests)."""
        return dict(self._index)

    def resident_tags(self) -> List[int]:
        """Tags of all valid lines (unordered semantics, way order)."""
        valid = self.valid_mask
        return [self.tags[way] for way in range(self.ways) if (valid >> way) & 1]

    def way_states(self) -> Tuple[WayState, ...]:
        """Normalised per-way snapshot for cross-engine comparisons."""
        states: List[WayState] = []
        for way in range(self.ways):
            bit = 1 << way
            if self.valid_mask & bit:
                states.append(
                    (
                        True,
                        self.tags[way],
                        bool(self.dirty_mask & bit),
                        bool(self.locked_mask & bit),
                        self.owners[way],
                    )
                )
            else:
                states.append((False, None, False, False, None))
        return tuple(states)

    def lock(self, tag: int) -> bool:
        """Lock ``tag`` against eviction (PLcache); False if absent."""
        way = self._index.get(tag)
        if way is None:
            return False
        self.locked_mask |= 1 << way
        return True

    def unlock(self, tag: int) -> bool:
        """Unlock ``tag``; False if absent."""
        way = self._index.get(tag)
        if way is None:
            return False
        self.locked_mask &= ~(1 << way)
        return True

    def randomize_policy_state(self, rng: Optional[random.Random] = None) -> None:
        """Scramble replacement metadata (Table 2 initial conditions)."""
        del rng  # the policy state uses its own generator
        self.pol.randomize()
