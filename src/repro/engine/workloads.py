"""Synthetic access traces for benchmarks and differential tests.

Two generators:

* :func:`fig6_workload` — the Figure 6 channel inner loop flattened into a
  single-threaded trace: the sender's per-symbol stores to the first ``d``
  conflict lines of the target set interleaved with the receiver's
  pointer-chased replacement-set traversals (alternating sets A and B, as
  in Algorithm 2).  This is the hot loop every BER point in Figure 6
  executes thousands of times, so it is the headline benchmark workload.

* :func:`random_workload` — seeded uniform loads/stores over a bounded
  working set; exercises every structural path (hits at all levels, dirty
  and clean evictions, write-backs) and is the parity fuzzer's trace
  source.

Generators yield plain ``(address, is_write)`` pairs, so they feed
:func:`repro.engine.trace.run_trace` on either engine unchanged.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng
from repro.mem.address import AddressLayout

Access = Tuple[int, bool]

#: Default L1 geometry of the paper's Xeon (64 sets x 64 B lines).
_DEFAULT_LAYOUT = AddressLayout(line_size=64, num_sets=64)


def conflict_lines(
    layout: AddressLayout, target_set: int, count: int, base: int
) -> List[int]:
    """``count`` line addresses mapping to ``target_set``, distinct tags."""
    stride = layout.stride_between_conflicts()
    return [
        base + i * stride + target_set * layout.line_size for i in range(count)
    ]


def fig6_workload(
    num_symbols: int = 256,
    d: int = 4,
    replacement_set_size: int = 10,
    target_set: int = 21,
    sender_lines: int = 8,
    layout: Optional[AddressLayout] = None,
    seed: int = 0,
) -> List[Access]:
    """Flattened Figure 6 inner loop: encode ``num_symbols`` symbols.

    Per symbol the sender stores to the first ``d`` of its conflict lines
    (random schedule drawn from ``{0, d}`` like the binary codec) and the
    receiver pointer-chases one replacement set, alternating A and B.
    Warm-up loads precede the loop exactly as in the sender/receiver
    programs.
    """
    if num_symbols <= 0:
        raise ConfigurationError(
            f"num_symbols must be positive, got {num_symbols}"
        )
    if not 0 <= d <= sender_lines:
        raise ConfigurationError(
            f"d must be in [0, {sender_lines}], got {d}"
        )
    layout = layout or _DEFAULT_LAYOUT
    rng = ensure_rng(random.Random(seed))
    span = layout.stride_between_conflicts() * max(
        replacement_set_size, sender_lines
    )
    sender = conflict_lines(layout, target_set, sender_lines, base=0)
    chase_a = conflict_lines(layout, target_set, replacement_set_size, base=span)
    chase_b = conflict_lines(
        layout, target_set, replacement_set_size, base=2 * span
    )
    # The receiver shuffles traversal order so a prefetcher cannot learn
    # the stride (Section 4.2); keep that, it is part of the workload.
    rng.shuffle(chase_a)
    rng.shuffle(chase_b)

    trace: List[Access] = []
    for line in sender:
        trace.append((line, False))
    for line in chase_a:
        trace.append((line, False))
    for line in chase_b:
        trace.append((line, False))
    for symbol in range(num_symbols):
        dirty_count = d if rng.random() < 0.5 else 0
        for line in sender[:dirty_count]:
            trace.append((line, True))
        chase = chase_a if symbol % 2 == 0 else chase_b
        for line in chase:
            trace.append((line, False))
    return trace


def random_workload(
    num_accesses: int = 10_000,
    working_set_lines: int = 512,
    write_ratio: float = 0.3,
    hot_fraction: float = 0.25,
    layout: Optional[AddressLayout] = None,
    seed: int = 0,
) -> Iterator[Access]:
    """Seeded random loads/stores over a bounded working set.

    A ``hot_fraction`` slice of the working set receives half the traffic,
    giving realistic hit rates at every level instead of a pure miss
    storm.  Yields lazily; wrap in ``list`` to replay the same trace
    through several engines.
    """
    if num_accesses <= 0:
        raise ConfigurationError(
            f"num_accesses must be positive, got {num_accesses}"
        )
    if working_set_lines <= 0:
        raise ConfigurationError(
            f"working_set_lines must be positive, got {working_set_lines}"
        )
    if not 0.0 <= write_ratio <= 1.0:
        raise ConfigurationError(
            f"write_ratio must be in [0, 1], got {write_ratio}"
        )
    layout = layout or _DEFAULT_LAYOUT
    rng = random.Random(seed)
    line_size = layout.line_size
    hot_lines = max(1, int(working_set_lines * hot_fraction))
    for _ in range(num_accesses):
        if rng.random() < 0.5:
            line = rng.randrange(hot_lines)
        else:
            line = rng.randrange(working_set_lines)
        yield line * line_size, rng.random() < write_ratio
