"""Engine selection: which cache-core implementation runs the simulation.

Three engines exist:

``reference``
    The original object-per-line :class:`~repro.cache.cache.Cache` /
    :class:`~repro.cache.cache_set.CacheSet` implementation.  Clear,
    defensively validated, and the *semantic oracle*: every behavioural
    question is settled by what this engine does.

``fast``
    :class:`~repro.engine.fast_cache.FastCache` — struct-of-arrays sets,
    O(1) tag lookup, integer-encoded policy state.  Bit-identical to the
    reference engine (enforced by ``tests/test_engine_parity.py``) but
    several times faster on the access hot path.

``batch``
    The :mod:`repro.engine.batch` array-of-simulations kernel.  Individual
    hierarchies built under this engine are plain :class:`FastCache`
    hierarchies — "batch" changes *sweep* execution, not single-run
    semantics: trace drivers and the service scheduler coalesce
    same-geometry replicas into one :class:`~repro.engine.batch.BatchReplay`
    stepping all of them per NumPy op (bit-identical to per-replica fast
    replay, also enforced by the parity suite).

The active engine is process-global state consulted by the hierarchy
builders in :mod:`repro.cache.configs`.  Experiments select it through
:class:`~repro.experiments.profiles.RunProfile.engine` (CLI: ``--engine``),
which the experiment registry applies around each run via
:func:`engine_context`; the parallel runner ships the profile to workers,
so the selection survives the process boundary.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional, Type

from repro.common.errors import ConfigurationError

REFERENCE = "reference"
FAST = "fast"
BATCH = "batch"

_ENGINES = (REFERENCE, FAST, BATCH)

#: Engine used when nobody selected one explicitly.
DEFAULT_ENGINE = REFERENCE

_current: str = DEFAULT_ENGINE


def available_engines() -> List[str]:
    """Engine names accepted by :func:`set_engine` and the CLI."""
    return list(_ENGINES)


def resolve_engine(engine: Optional[str] = None) -> str:
    """Validate ``engine``; ``None`` means the currently active engine."""
    if engine is None:
        return _current
    if engine not in _ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; available: {', '.join(_ENGINES)}"
        )
    return engine


def current_engine() -> str:
    """The currently active engine name."""
    return _current


def set_engine(engine: str) -> str:
    """Set the process-global engine; returns the previous one."""
    global _current
    previous = _current
    _current = resolve_engine(engine)
    return previous


@contextlib.contextmanager
def engine_context(engine: Optional[str]) -> Iterator[str]:
    """Temporarily activate ``engine`` (no-op for ``None``)."""
    if engine is None:
        yield _current
        return
    previous = set_engine(engine)
    try:
        yield _current
    finally:
        set_engine(previous)


def cache_class(engine: Optional[str] = None) -> Type:
    """The :class:`~repro.cache.cache.Cache` subclass for ``engine``."""
    name = resolve_engine(engine)
    if name in (FAST, BATCH):
        from repro.engine.fast_cache import FastCache

        return FastCache
    from repro.cache.cache import Cache

    return Cache
