"""Fast struct-of-arrays simulation engine.

The reference cache core (:mod:`repro.cache`) is the semantic oracle:
object-per-line sets, defensive validation, written to be read next to the
paper.  This package is the performance twin — same behaviour, bit for
bit (``tests/test_engine_parity.py``), several times the throughput:

* :class:`~repro.engine.fast_set.FastSet` — parallel tag/owner arrays,
  valid/dirty/locked bitmask ints, a ``tag -> way`` dict index, and
  incremental counters;
* :class:`~repro.engine.fast_cache.FastCache` — a drop-in
  :class:`~repro.cache.cache.Cache` on FastSet storage with cached
  address-field arithmetic;
* integer-encoded replacement state in
  :mod:`repro.replacement.fast_state`;
* :func:`~repro.engine.trace.run_trace` — batched trace replay;
* :mod:`~repro.engine.batch` — the NumPy array-of-simulations kernel
  stepping B same-geometry replicas per vectorized op;
* :mod:`~repro.engine.selection` — the ``--engine {reference,fast,batch}``
  switch consulted by the hierarchy builders.
"""

from repro.engine.batch import (
    BatchPoint,
    BatchReplay,
    batch_eligibility,
    geometry_key,
    run_batch_points,
    run_batch_traces,
)
from repro.engine.fast_cache import FastCache
from repro.engine.fast_set import FastSet
from repro.engine.selection import (
    BATCH,
    DEFAULT_ENGINE,
    FAST,
    REFERENCE,
    available_engines,
    cache_class,
    current_engine,
    engine_context,
    resolve_engine,
    set_engine,
)
from repro.engine.trace import TraceResult, event_stream, run_trace, run_trace_summary
from repro.engine.workloads import fig6_workload, random_workload

__all__ = [
    "BATCH",
    "BatchPoint",
    "BatchReplay",
    "DEFAULT_ENGINE",
    "FAST",
    "REFERENCE",
    "FastCache",
    "FastSet",
    "TraceResult",
    "available_engines",
    "batch_eligibility",
    "cache_class",
    "current_engine",
    "engine_context",
    "event_stream",
    "fig6_workload",
    "geometry_key",
    "random_workload",
    "resolve_engine",
    "run_batch_points",
    "run_batch_traces",
    "run_trace",
    "run_trace_summary",
    "set_engine",
]
