"""Structured cache events carried by the telemetry bus.

One :class:`CacheEvent` is emitted per observable hierarchy action —
demand hit/miss at each level walked, eviction, write-back, flush — with
the level, set index, issuing owner, dirty state and a logical timestamp
(the demand-access ordinal drawn from :meth:`TelemetryBus.tick
<repro.telemetry.bus.TelemetryBus.tick>`).

Events are plain :class:`typing.NamedTuple` values so that two engines
emitting "the same" stream compare equal element-wise — the parity suite
in ``tests/test_engine_parity.py`` relies on tuple equality.

This module is a leaf: it must not import anything from
:mod:`repro.cache` (the hierarchy imports the telemetry session, so an
import back into the cache package would cycle).  The aggregate-owner
sentinel is therefore re-declared here; a unit test asserts it matches
:data:`repro.cache.stats.ALL_OWNERS`.
"""

from __future__ import annotations

import enum
from typing import Dict, NamedTuple, Optional

#: Owner key used for aggregate (all-threads) views.  Mirrors
#: :data:`repro.cache.stats.ALL_OWNERS` without importing it.
AGGREGATE_OWNER: int = -1


class EventKind(enum.IntEnum):
    """What happened.  Integer-valued so events stay cheap tuples."""

    #: Demand access served at ``level`` (``dirty`` = line was dirty).
    HIT = 0
    #: Demand access missed at ``level`` (the walk continues deeper).
    MISS = 1
    #: A *clean* victim was evicted by a fill at ``level``.
    EVICT = 2
    #: A *dirty* victim left ``level`` and was written back deeper.
    WRITEBACK = 3
    #: ``clflush`` invalidated a resident copy at ``level``.
    FLUSH = 4
    #: An injected fault (``repro.faults``): not a cache action, but a
    #: disturbance of the machine around the caches.  ``address`` carries
    #: the fault class (see :mod:`repro.faults.injector`), ``owner`` the
    #: disturbed thread, ``time`` the nominal protocol-timeline position.
    FAULT = 5


class CacheEvent(NamedTuple):
    """One observable cache action.

    Attributes
    ----------
    time:
        Logical timestamp: ordinal of the demand access (or flush) that
        caused this event.  All events of one access share a timestamp.
    kind:
        An :class:`EventKind` value.
    level:
        Cache level, 1-based (1 = L1D).
    set_index:
        Set the event happened in, under the *incoming* address's
        mapping (victims share the set with the line displacing them).
    owner:
        Hardware thread the event is attributed to.  For evictions and
        write-backs this is the *victim line's* owner, matching how
        :class:`~repro.cache.stats.CacheStats` attributes write-backs;
        ``None`` marks hierarchy-internal traffic.
    address:
        Line address the event concerns (victim address for
        EVICT/WRITEBACK).
    write:
        Whether the triggering demand access was a store.
    dirty:
        Dirty state observable at the event: the resident line's dirty
        bit for HIT/FLUSH, the victim's for EVICT/WRITEBACK, ``False``
        for MISS.
    """

    time: int
    kind: int
    level: int
    set_index: int
    owner: Optional[int]
    address: int
    write: bool
    dirty: bool

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly view (kind rendered by name)."""
        return {
            "time": self.time,
            "kind": EventKind(self.kind).name.lower(),
            "level": self.level,
            "set": self.set_index,
            "owner": self.owner,
            "address": self.address,
            "write": self.write,
            "dirty": self.dirty,
        }
