"""Online covert-channel detectors built on the telemetry bus.

Two detector families from the literature, both recast as *online*
subscribers over the event stream:

``MissRateMonitor`` (CloudRadar-style)
    Windowed performance-counter signatures.  Per logical window it
    extracts a feature vector of the suspect thread's per-level access
    and miss counts (plus L1 write-backs) and scores its deviation from
    a baseline fitted on benign execution.  CloudRadar (Zhang et al.,
    RAID'16) correlates counter signatures against known-attack
    templates; our variant is the anomaly-detection half: flag windows
    whose counter profile no longer looks benign.

``WritebackBurstDetector`` (CC-Hunter-style)
    Cyclic-interference detection.  CC-Hunter (Chen & Venkataramani,
    MICRO'14) autocorrelates conflict-event trains to expose the
    periodic contention pattern a covert channel's modulation imposes.
    Our variant builds the train from the suspect's L1 conflict events
    (misses + write-backs) per window, autocorrelates each segment, and
    scores the deviation of the autocorrelation spectrum from the
    benign spectrum.

Both detectors are *calibrated* on a benign run first (``baseline=None``
collects features; :meth:`Baseline.fit` turns them into a baseline),
then score live windows as the per-dimension z-deviation maximum.  This
is what gives the paper's stealth claim (Section 7) a quantitative
online form: the LRU sender's continuous set-sweeping deviates from
benign on both views, while the WB sender's one-store-per-bit pattern
stays within the benign envelope at matched bandwidth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.telemetry.bus import Subscriber
from repro.telemetry.events import CacheEvent, EventKind

_HIT = EventKind.HIT
_MISS = EventKind.MISS
_WRITEBACK = EventKind.WRITEBACK


def autocorrelation(series: Sequence[float], max_lag: int) -> Tuple[float, ...]:
    """Normalised autocorrelation ``r_1..r_max_lag`` of ``series``.

    Mean-removed, normalised by the zero-lag energy; a constant series
    (zero variance) returns all zeros.  This is the spectrum CC-Hunter
    inspects for the tell-tale peak at the channel's bit period.
    """
    n = len(series)
    if n == 0:
        return tuple(0.0 for _ in range(max_lag))
    mean = sum(series) / n
    centred = [value - mean for value in series]
    energy = sum(value * value for value in centred)
    if energy == 0.0:
        return tuple(0.0 for _ in range(max_lag))
    spectrum = []
    for lag in range(1, max_lag + 1):
        if lag >= n:
            spectrum.append(0.0)
            continue
        acc = 0.0
        for index in range(n - lag):
            acc += centred[index] * centred[index + lag]
        spectrum.append(acc / energy)
    return tuple(spectrum)


@dataclass(frozen=True)
class Baseline:
    """Per-dimension mean/std envelope fitted on benign feature vectors.

    ``std`` is floored at fit time so an all-constant benign dimension
    (e.g. "benign never misses the LLC") still yields finite scores —
    the floor sets the unit: one floored event of deviation scores 1.0.
    """

    mean: Tuple[float, ...]
    std: Tuple[float, ...]

    @classmethod
    def fit(
        cls, samples: Sequence[Sequence[float]], floor: float = 1.0
    ) -> "Baseline":
        """Fit from calibration feature vectors (population std, floored)."""
        if not samples:
            raise ValueError("cannot fit a baseline from zero samples")
        dims = len(samples[0])
        for sample in samples:
            if len(sample) != dims:
                raise ValueError(
                    f"inconsistent feature dimensions: {len(sample)} != {dims}"
                )
        count = len(samples)
        means = []
        stds = []
        for dim in range(dims):
            values = [sample[dim] for sample in samples]
            mean = sum(values) / count
            variance = sum((value - mean) ** 2 for value in values) / count
            means.append(mean)
            stds.append(max(math.sqrt(variance), floor))
        return cls(mean=tuple(means), std=tuple(stds))

    def deviation(self, features: Sequence[float]) -> float:
        """Max per-dimension absolute z-deviation of ``features``."""
        if len(features) != len(self.mean):
            raise ValueError(
                f"feature dimension {len(features)} != baseline "
                f"dimension {len(self.mean)}"
            )
        return max(
            abs(value - mean) / std
            for value, mean, std in zip(features, self.mean, self.std)
        )

    def score_all(self, samples: Sequence[Sequence[float]]) -> List[float]:
        """Deviation of every sample (used to pick thresholds)."""
        return [self.deviation(sample) for sample in samples]


class _WindowedDetector(Subscriber):
    """Shared windowing: per-window (access, miss, writeback) per level.

    Counts only events attributed to ``owner`` (``None`` = everything).
    Two window clocks are available:

    * the default logical clock — a window spans ``window`` consecutive
      demand-access ticks; ranges without events produce zero-windows,
      which matters for autocorrelation periodicity;
    * a *pacing thread* clock (``clock_owner``) — a window spans
      ``window`` L1 demand accesses of that thread.  A thread issuing
      paced loads at a fixed cycle cadence (the online-detection
      experiment's prober, or any sampling thread a real monitor runs)
      thereby anchors windows to wall-clock time, which is how
      counter-sampling monitors actually operate; without it, windows
      denominated in the *suspect's own* accesses would stretch and
      shrink with the suspect's activity and hide rate anomalies.
      Clock-thread events only drive the clock; they are never counted.

    A bus mark (stats reset) restarts the epoch and discards anything
    collected before it, so detection aligns with the measurement phase
    exactly like the simulator's own counters do.
    """

    #: Levels tracked by the shared windower (L1..L3 covers the Xeon).
    MAX_LEVEL = 3

    def __init__(
        self,
        window: int,
        owner: Optional[int],
        clock_owner: Optional[int] = None,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if clock_owner is not None and clock_owner == owner:
            raise ValueError("clock_owner must differ from the watched owner")
        self.window = window
        self.owner = owner
        self.clock_owner = clock_owner
        #: Optional live tap: called as ``score_sink(clock, score)`` the
        #: moment a calibrated detector appends a score.  ``clock`` is
        #: the detector's window clock (pacing-thread L1 events when
        #: ``clock_owner`` is set, logical window offset otherwise), so
        #: detectors sharing one pacing thread report on one timeline —
        #: what the fleet aggregator fuses across sources.
        self.score_sink: Optional[Callable[[int, float], None]] = None
        self._origin: Optional[int] = None
        self._clock = 0
        self._current_id = 0
        self._acc = [0] * (self.MAX_LEVEL + 1)
        self._miss = [0] * (self.MAX_LEVEL + 1)
        self._wb = [0] * (self.MAX_LEVEL + 1)
        self.windows_seen = 0

    # -- Subscriber surface -------------------------------------------
    def on_event(self, event: CacheEvent) -> None:
        kind = event.kind
        clock_owner = self.clock_owner
        if clock_owner is not None and event.owner == clock_owner:
            # Pacing-thread traffic drives the window clock and nothing
            # else (evictions *of* its lines also land here — ignored).
            if event.level == 1 and (kind == _HIT or kind == _MISS):
                self._clock += 1
                self._advance(self._clock // self.window)
            return
        if self.owner is not None and event.owner != self.owner:
            return
        if event.level > self.MAX_LEVEL:
            return
        if clock_owner is None:
            if self._origin is None:
                self._origin = event.time
            self._advance((event.time - self._origin) // self.window)
        if kind == _HIT:
            self._acc[event.level] += 1
        elif kind == _MISS:
            self._acc[event.level] += 1
            self._miss[event.level] += 1
        elif kind == _WRITEBACK:
            self._wb[event.level] += 1

    def on_mark(self, label: str) -> None:
        del label
        self._origin = None
        self._clock = 0
        self._current_id = 0
        self._acc = [0] * (self.MAX_LEVEL + 1)
        self._miss = [0] * (self.MAX_LEVEL + 1)
        self._wb = [0] * (self.MAX_LEVEL + 1)
        self.windows_seen = 0
        self._reset_measurement()

    def finish(self) -> None:
        """End of run: the trailing partial window is discarded.

        A partial window would bias count features low; detectors only
        ever score complete windows.
        """

    # -- Internals -----------------------------------------------------
    def _advance(self, window_id: int) -> None:
        """Close windows up to ``window_id`` (gap windows emit zeros)."""
        if window_id == self._current_id:
            return
        self._close_window()
        for _ in range(self._current_id + 1, window_id):
            self._emit_window()
        self._current_id = window_id

    def _close_window(self) -> None:
        self._emit_window()
        self._acc = [0] * (self.MAX_LEVEL + 1)
        self._miss = [0] * (self.MAX_LEVEL + 1)
        self._wb = [0] * (self.MAX_LEVEL + 1)

    def _emit_window(self) -> None:
        # Gap windows reach here *after* _close_window zeroed the
        # buffers, so they emit all-zero counts as intended.
        self.windows_seen += 1
        self._on_window(tuple(self._acc), tuple(self._miss), tuple(self._wb))

    def _on_window(
        self,
        acc: Tuple[int, ...],
        miss: Tuple[int, ...],
        wb: Tuple[int, ...],
    ) -> None:
        raise NotImplementedError

    def _reset_measurement(self) -> None:
        raise NotImplementedError

    def _score_clock(self) -> int:
        """Current window-clock reading stamped onto emitted scores."""
        if self.clock_owner is not None:
            return self._clock
        return self._current_id * self.window

    def _emit_score(self, score: float) -> None:
        sink = self.score_sink
        if sink is not None:
            sink(self._score_clock(), score)


class MissRateMonitor(_WindowedDetector):
    """CloudRadar-style windowed counter monitor.

    Feature vector per window: ``(accesses_L, misses_L)`` for each
    monitored level plus L1 write-backs.  With ``baseline=None`` the
    monitor calibrates (collects ``features``); with a fitted baseline
    it scores every window into ``scores``.
    """

    def __init__(
        self,
        window: int = 128,
        owner: Optional[int] = None,
        levels: Sequence[int] = (1, 2, 3),
        baseline: Optional[Baseline] = None,
        clock_owner: Optional[int] = None,
    ) -> None:
        super().__init__(window=window, owner=owner, clock_owner=clock_owner)
        self.levels = tuple(levels)
        self.baseline = baseline
        self.features: List[Tuple[float, ...]] = []
        self.scores: List[float] = []

    def _on_window(
        self,
        acc: Tuple[int, ...],
        miss: Tuple[int, ...],
        wb: Tuple[int, ...],
    ) -> None:
        feature = tuple(
            float(value)
            for level in self.levels
            for value in (acc[level], miss[level])
        ) + (float(wb[1]),)
        self.features.append(feature)
        if self.baseline is not None:
            score = self.baseline.deviation(feature)
            self.scores.append(score)
            self._emit_score(score)

    def _reset_measurement(self) -> None:
        self.features = []
        self.scores = []


class WritebackBurstDetector(_WindowedDetector):
    """CC-Hunter-style autocorrelation over the L1 conflict-event train.

    The train is the suspect's per-window L1 conflict count (misses +
    write-backs).  Every ``segment`` windows the detector computes the
    normalised autocorrelation spectrum ``r_1..r_max_lag`` and — when
    calibrated — scores its deviation from the benign spectrum.  A
    channel's periodic modulation puts structure into the spectrum that
    benign (aperiodic beyond its own housekeeping rhythm) traffic lacks.
    """

    def __init__(
        self,
        window: int = 128,
        segment: int = 32,
        max_lag: int = 12,
        owner: Optional[int] = None,
        level: int = 1,
        baseline: Optional[Baseline] = None,
        clock_owner: Optional[int] = None,
    ) -> None:
        super().__init__(window=window, owner=owner, clock_owner=clock_owner)
        if segment <= max_lag:
            raise ValueError(
                f"segment ({segment}) must exceed max_lag ({max_lag})"
            )
        self.segment = segment
        self.max_lag = max_lag
        self.level = level
        self.baseline = baseline
        self._train: List[int] = []
        self.features: List[Tuple[float, ...]] = []
        self.scores: List[float] = []

    def _on_window(
        self,
        acc: Tuple[int, ...],
        miss: Tuple[int, ...],
        wb: Tuple[int, ...],
    ) -> None:
        del acc
        self._train.append(miss[self.level] + wb[self.level])
        if len(self._train) >= self.segment:
            feature = autocorrelation(self._train, self.max_lag)
            self._train = []
            self.features.append(feature)
            if self.baseline is not None:
                score = self.baseline.deviation(feature)
                self.scores.append(score)
                self._emit_score(score)

    def _reset_measurement(self) -> None:
        self._train = []
        self.features = []
        self.scores = []


def detection_rate(scores: Sequence[float], threshold: float) -> float:
    """Fraction of scores strictly above ``threshold`` (0.0 if empty)."""
    if not scores:
        return 0.0
    return sum(1 for score in scores if score > threshold) / len(scores)


def suggest_threshold(
    calibration_scores: Sequence[float], sigmas: float = 3.0
) -> float:
    """Mean + ``sigmas``·std of the calibration run's own scores.

    Scoring the calibration features against their own baseline yields
    the benign score distribution; the threshold sits ``sigmas`` above
    its mean, the usual counter-monitor operating point.
    """
    if not calibration_scores:
        raise ValueError("cannot suggest a threshold from zero scores")
    count = len(calibration_scores)
    mean = sum(calibration_scores) / count
    variance = sum((s - mean) ** 2 for s in calibration_scores) / count
    return mean + sigmas * math.sqrt(variance)


def threshold_sweep(
    thresholds: Sequence[float],
    benign_scores: Sequence[float],
    channel_scores: Dict[str, Sequence[float]],
) -> List[Dict[str, float]]:
    """ROC-style sweep: FPR and per-channel detection rate per threshold."""
    rows = []
    for threshold in thresholds:
        row: Dict[str, float] = {
            "threshold": threshold,
            "benign_fpr": detection_rate(benign_scores, threshold),
        }
        for name, scores in channel_scores.items():
            row[name] = detection_rate(scores, threshold)
        rows.append(row)
    return rows
