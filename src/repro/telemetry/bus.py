"""The telemetry event bus: fan-out of cache events to subscribers.

Design constraints, in order:

1. **Zero cost when absent or disabled.**  A hierarchy holds either no
   bus (``hierarchy.telemetry is None``) or a disabled one; both make
   ``hierarchy.telemetry_enabled`` false, which is the single check the
   hot paths perform.  The specialised struct-of-arrays replay loop in
   :mod:`repro.engine.trace` additionally refuses to run with telemetry
   enabled, so enabling the bus routes ``run_trace`` through the generic
   instrumented path — the SoA loop itself never pays for observability.
2. **Engine-independent streams.**  All emission sites live in
   :class:`~repro.cache.hierarchy.CacheHierarchy`, which both engines
   share, so reference and fast hierarchies produce bit-identical event
   streams (enforced by the parity suite).
3. **Composable subscribers.**  A subscriber is any object with an
   ``on_event(event)`` method; ``on_mark(label)`` and ``finish()`` are
   optional lifecycle hooks (see :class:`Subscriber`).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.telemetry.events import CacheEvent


class Subscriber:
    """Optional base class documenting the subscriber surface.

    Any object with a compatible ``on_event`` is accepted; subclassing
    is a convenience, not a requirement.
    """

    def on_event(self, event: CacheEvent) -> None:
        """Receive one event (called once per emission, in order)."""
        raise NotImplementedError

    def on_mark(self, label: str) -> None:
        """An epoch boundary (e.g. a stats reset) passed on the bus."""

    def finish(self) -> None:
        """The producing run ended; flush any open aggregation state."""


class TelemetryBus:
    """Dispatches :class:`CacheEvent` values to subscribers in order.

    ``time`` is the logical clock: the ordinal of the current demand
    access, advanced by :meth:`tick` once per access (and per flush).
    Emission is a plain loop over pre-bound ``on_event`` callables; the
    handler list is rebuilt on (un)subscribe so the hot loop never
    checks membership.
    """

    __slots__ = ("enabled", "time", "_subscribers", "_handlers")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.time = 0
        self._subscribers: List[object] = []
        self._handlers: List[Callable[[CacheEvent], None]] = []

    # ------------------------------------------------------------------
    # Subscription management
    # ------------------------------------------------------------------
    def subscribe(self, subscriber: object) -> object:
        """Attach ``subscriber``; returns it for chaining."""
        self._subscribers.append(subscriber)
        self._handlers.append(subscriber.on_event)
        return subscriber

    def unsubscribe(self, subscriber: object) -> None:
        """Detach ``subscriber`` (no-op if it was never attached)."""
        try:
            index = self._subscribers.index(subscriber)
        except ValueError:
            return
        del self._subscribers[index]
        del self._handlers[index]

    @property
    def subscribers(self) -> List[object]:
        """Currently attached subscribers (copy)."""
        return list(self._subscribers)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(self) -> None:
        """Turn event emission on."""
        self.enabled = True

    def disable(self) -> None:
        """Turn event emission off (subscribers stay attached)."""
        self.enabled = False

    def tick(self) -> int:
        """Advance and return the logical clock (one demand access)."""
        self.time += 1
        return self.time

    def mark(self, label: str) -> None:
        """Broadcast an epoch boundary to subscribers that care.

        The SMT core calls this when a thread executes ``ResetStats`` —
        the simulated analogue of attaching ``perf`` to an
        already-running process — so windowed subscribers can restart
        their aggregation aligned with the measurement epoch.
        """
        if not self.enabled:
            return
        for subscriber in self._subscribers:
            on_mark = getattr(subscriber, "on_mark", None)
            if on_mark is not None:
                on_mark(label)

    def emit(self, event: CacheEvent) -> None:
        """Deliver ``event`` to every subscriber, in subscription order.

        Callers are expected to have checked ``enabled`` already (the
        hierarchy guards each emission site with one attribute test).
        """
        for handler in self._handlers:
            handler(event)

    def close(self) -> None:
        """Signal end-of-run: calls ``finish()`` on every subscriber."""
        for subscriber in self._subscribers:
            finish = getattr(subscriber, "finish", None)
            if finish is not None:
                finish()
