"""The telemetry event bus: fan-out of cache events to subscribers.

Design constraints, in order:

1. **Zero cost when absent or disabled.**  A hierarchy holds either no
   bus (``hierarchy.telemetry is None``) or a disabled one; both make
   ``hierarchy.telemetry_enabled`` false, which is the single check the
   hot paths perform.  The specialised struct-of-arrays replay loop in
   :mod:`repro.engine.trace` additionally refuses to run with telemetry
   enabled, so enabling the bus routes ``run_trace`` through the generic
   instrumented path — the SoA loop itself never pays for observability.
2. **Engine-independent streams.**  All emission sites live in
   :class:`~repro.cache.hierarchy.CacheHierarchy`, which both engines
   share, so reference and fast hierarchies produce bit-identical event
   streams (enforced by the parity suite).
3. **Composable subscribers.**  A subscriber is any object with an
   ``on_event(event)`` method; ``on_mark(label)`` and ``finish()`` are
   optional lifecycle hooks (see :class:`Subscriber`).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.telemetry.events import CacheEvent

#: Overflow policies accepted by :class:`BufferedSubscriber`.
OVERFLOW_POLICIES = ("drop_oldest", "drop_newest", "block")


class Subscriber:
    """Optional base class documenting the subscriber surface.

    Any object with a compatible ``on_event`` is accepted; subclassing
    is a convenience, not a requirement.
    """

    def on_event(self, event: CacheEvent) -> None:
        """Receive one event (called once per emission, in order)."""
        raise NotImplementedError

    def on_mark(self, label: str) -> None:
        """An epoch boundary (e.g. a stats reset) passed on the bus."""

    def finish(self) -> None:
        """The producing run ended; flush any open aggregation state."""


class TelemetryBus:
    """Dispatches :class:`CacheEvent` values to subscribers in order.

    ``time`` is the logical clock: the ordinal of the current demand
    access, advanced by :meth:`tick` once per access (and per flush).
    Emission is a plain loop over pre-bound ``on_event`` callables; the
    handler list is rebuilt on (un)subscribe so the hot loop never
    checks membership.
    """

    __slots__ = ("enabled", "time", "_subscribers", "_handlers")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.time = 0
        self._subscribers: List[object] = []
        self._handlers: List[Callable[[CacheEvent], None]] = []

    # ------------------------------------------------------------------
    # Subscription management
    # ------------------------------------------------------------------
    def subscribe(self, subscriber: object) -> object:
        """Attach ``subscriber``; returns it for chaining."""
        self._subscribers.append(subscriber)
        self._handlers.append(subscriber.on_event)
        return subscriber

    def unsubscribe(self, subscriber: object) -> None:
        """Detach ``subscriber`` (no-op if it was never attached)."""
        try:
            index = self._subscribers.index(subscriber)
        except ValueError:
            return
        del self._subscribers[index]
        del self._handlers[index]

    @property
    def subscribers(self) -> List[object]:
        """Currently attached subscribers (copy)."""
        return list(self._subscribers)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(self) -> None:
        """Turn event emission on."""
        self.enabled = True

    def disable(self) -> None:
        """Turn event emission off (subscribers stay attached)."""
        self.enabled = False

    def tick(self) -> int:
        """Advance and return the logical clock (one demand access)."""
        self.time += 1
        return self.time

    def mark(self, label: str) -> None:
        """Broadcast an epoch boundary to subscribers that care.

        The SMT core calls this when a thread executes ``ResetStats`` —
        the simulated analogue of attaching ``perf`` to an
        already-running process — so windowed subscribers can restart
        their aggregation aligned with the measurement epoch.
        """
        if not self.enabled:
            return
        for subscriber in self._subscribers:
            on_mark = getattr(subscriber, "on_mark", None)
            if on_mark is not None:
                on_mark(label)

    def emit(self, event: CacheEvent) -> None:
        """Deliver ``event`` to every subscriber, in subscription order.

        Callers are expected to have checked ``enabled`` already (the
        hierarchy guards each emission site with one attribute test).
        """
        for handler in self._handlers:
            handler(event)

    def close(self) -> None:
        """Signal end-of-run: calls ``finish()`` on every subscriber."""
        for subscriber in self._subscribers:
            finish = getattr(subscriber, "finish", None)
            if finish is not None:
                finish()


class BufferedSubscriber(Subscriber):
    """Bounded asynchronous delivery shim around a slow subscriber.

    The bus's ``emit`` loop calls every handler synchronously, so one
    subscriber that blocks (network write, disk flush, a client that
    stopped reading) would stall the simulation hot loop.  Wrapping it
    in a ``BufferedSubscriber`` decouples the two: ``on_event`` only
    appends to a bounded in-memory queue under a lock — O(1), never
    blocking on the inner subscriber — while a daemon worker thread
    drains the queue and performs the actual (possibly slow) delivery.

    ``capacity`` bounds the queue; ``overflow`` picks what happens when
    it is full:

    * ``"drop_oldest"`` (default) — evict the oldest queued item to make
      room; keeps the stream current at the cost of a gap.
    * ``"drop_newest"`` — discard the incoming event; keeps history.
    * ``"block"`` — make the producer wait for space (only for tools
      that must not lose events and accept the stall).

    Every dropped event increments :attr:`dropped_events` and, when a
    ``profiler`` is attached, mirrors into
    :attr:`BusProfiler.dropped_events
    <repro.telemetry.subscribers.BusProfiler.dropped_events>` so run
    summaries surface the loss.  ``finish()`` flushes the queue (waits
    for the worker to drain what was not dropped), forwards ``finish``
    to the inner subscriber, and retires the worker — the wrapper is
    one-shot, matching the bus lifecycle.
    """

    def __init__(
        self,
        inner: object,
        capacity: int = 4096,
        overflow: str = "drop_oldest",
        profiler: Optional[object] = None,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"capacity must be positive, got {capacity}"
            )
        if overflow not in OVERFLOW_POLICIES:
            raise ConfigurationError(
                f"overflow must be one of {OVERFLOW_POLICIES}, got {overflow!r}"
            )
        self.inner = inner
        self.capacity = capacity
        self.overflow = overflow
        self.profiler = profiler
        self.dropped_events = 0
        self.error: Optional[BaseException] = None
        self._queue: Deque[Tuple[str, object]] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._worker = threading.Thread(
            target=self._drain, name="telemetry-buffered-subscriber", daemon=True
        )
        self._worker.start()

    # -- producer side (the bus emit loop) -----------------------------
    def on_event(self, event: CacheEvent) -> None:
        self._put(("event", event))

    def on_mark(self, label: str) -> None:
        self._put(("mark", label))

    def finish(self) -> None:
        """Flush queued items, forward ``finish``, stop the worker."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._worker.join()
        finish = getattr(self.inner, "finish", None)
        if finish is not None:
            finish()

    # -- internals -----------------------------------------------------
    def _put(self, item: Tuple[str, object]) -> None:
        with self._cond:
            if self._closed:
                return
            if len(self._queue) >= self.capacity:
                if self.overflow == "drop_oldest":
                    self._queue.popleft()
                    self._record_drop()
                elif self.overflow == "drop_newest":
                    self._record_drop()
                    return
                else:  # block
                    while len(self._queue) >= self.capacity and not self._closed:
                        self._cond.wait()
                    if self._closed:
                        return
            self._queue.append(item)
            self._cond.notify_all()

    def _record_drop(self) -> None:
        self.dropped_events += 1
        record = getattr(self.profiler, "record_dropped", None)
        if record is not None:
            record(1)

    def _drain(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue:
                    return  # closed and drained
                kind, payload = self._queue.popleft()
                self._cond.notify_all()
            try:
                if kind == "event":
                    self.inner.on_event(payload)
                else:
                    on_mark = getattr(self.inner, "on_mark", None)
                    if on_mark is not None:
                        on_mark(payload)
            except BaseException as exc:  # keep the producer unharmed
                self.error = exc
                return
